//! Applying the paper's measurement methodology to recorded spans.
//!
//! Transmit (Table 2): spans are summed from the entry into write()
//! to the instant "the ATM adapter is signaled to send the last byte
//! of data" — everything later overlaps network transmission.
//!
//! Receive (Table 3): "We only measure the portion of the receive
//! processing that actually contributes to the overall latency. This
//! is the time from the arrival of the last group of ATM cells
//! comprising the last TCP segment of a data transfer to the time
//! when the read system call returns." Accordingly every receive
//! span is clipped to the window `[last segment arrival, read
//! return]`; work that overlapped the sender's transmission (e.g.
//! the driver processing of the first of two back-to-back segments)
//! is excluded exactly as the paper excluded it.

use simkit::SimTime;
use tcpip::{Mark, SpanKind, SpanRecorder};

/// Average transmit-side breakdown (µs), one field per Table 2 row.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TxBreakdown {
    /// User: write() to TCP entry.
    pub user: f64,
    /// TCP: checksum.
    pub cksum: f64,
    /// TCP: mcopy.
    pub mcopy: f64,
    /// TCP: remaining segment processing.
    pub segment: f64,
    /// IP output.
    pub ip: f64,
    /// Driver (the paper's ATM row).
    pub driver: f64,
}

impl TxBreakdown {
    /// Sum of the rows (the paper's Total).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.user + self.cksum + self.mcopy + self.segment + self.ip + self.driver
    }

    /// The TCP sub-total (checksum + mcopy + segment).
    #[must_use]
    pub fn tcp_total(&self) -> f64 {
        self.cksum + self.mcopy + self.segment
    }
}

/// Average receive-side breakdown (µs), one field per Table 3 row.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RxBreakdown {
    /// Driver + adapter (the paper's ATM row).
    pub driver: f64,
    /// IP queue + software-interrupt scheduling.
    pub ipq: f64,
    /// IP input.
    pub ip: f64,
    /// TCP checksum verification.
    pub cksum: f64,
    /// TCP remaining input processing.
    pub segment: f64,
    /// Run-queue wait.
    pub wakeup: f64,
    /// soreceive + copyout + return.
    pub user: f64,
}

impl RxBreakdown {
    /// Sum of the rows (the paper's Total).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.driver + self.ipq + self.ip + self.cksum + self.segment + self.wakeup + self.user
    }

    /// The TCP sub-total (checksum + segment).
    #[must_use]
    pub fn tcp_total(&self) -> f64 {
        self.cksum + self.segment
    }
}

/// Per-iteration breakdowns from a client-side recorder, without the
/// averaging [`compute_breakdowns`] applies on top.
///
/// The pairing and clipping rules are identical; iterations that
/// [`compute_breakdowns`] would skip on the receive side (no segment
/// arrival inside the window) are omitted entirely here, so each
/// returned sample has both halves. The oracle's analytic cross-check
/// compares its closed-form prediction against one converged sample
/// rather than an average polluted by convergence transients.
#[must_use]
pub fn compute_breakdown_samples(rec: &SpanRecorder) -> Vec<(TxBreakdown, RxBreakdown)> {
    let writes: Vec<SimTime> = rec
        .marks()
        .iter()
        .filter(|(m, _)| *m == Mark::WriteStart)
        .map(|&(_, t)| t)
        .collect();
    let returns: Vec<SimTime> = rec
        .marks()
        .iter()
        .filter(|(m, _)| *m == Mark::ReadReturn)
        .map(|&(_, t)| t)
        .collect();
    let n = writes.len().min(returns.len());
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let w = writes[i];
        let r = returns[i];
        if r <= w {
            continue;
        }
        let we = rec.first_mark_after(Mark::WriteEnd, w).unwrap_or(r).min(r);
        let tx = TxBreakdown {
            user: rec.clipped_total(SpanKind::TxUser, w, we).as_us_f64(),
            cksum: rec
                .clipped_total(SpanKind::TxTcpChecksum, w, we)
                .as_us_f64(),
            mcopy: rec.clipped_total(SpanKind::TxTcpMcopy, w, we).as_us_f64(),
            segment: rec.clipped_total(SpanKind::TxTcpSegment, w, we).as_us_f64(),
            ip: rec.clipped_total(SpanKind::TxIp, w, we).as_us_f64(),
            driver: rec.clipped_total(SpanKind::TxDriver, w, we).as_us_f64(),
        };
        let Some(t_arr) = rec.last_mark_before(Mark::SegmentArrived, r) else {
            continue;
        };
        if t_arr < w {
            continue;
        }
        let rx = RxBreakdown {
            driver: rec.clipped_total(SpanKind::RxDriver, t_arr, r).as_us_f64(),
            ipq: rec.clipped_total(SpanKind::RxIpq, t_arr, r).as_us_f64(),
            ip: rec.clipped_total(SpanKind::RxIp, t_arr, r).as_us_f64(),
            cksum: rec
                .clipped_total(SpanKind::RxTcpChecksum, t_arr, r)
                .as_us_f64(),
            segment: rec
                .clipped_total(SpanKind::RxTcpSegment, t_arr, r)
                .as_us_f64(),
            wakeup: rec.clipped_total(SpanKind::RxWakeup, t_arr, r).as_us_f64(),
            user: rec.clipped_total(SpanKind::RxUser, t_arr, r).as_us_f64(),
        };
        out.push((tx, rx));
    }
    out
}

/// Computes per-iteration breakdowns from a client-side recorder and
/// averages them.
///
/// Iterations are delimited by `WriteStart`/`ReadReturn` mark pairs.
/// Returns `(tx, rx, iterations_used)`.
#[must_use]
pub fn compute_breakdowns(rec: &SpanRecorder) -> (TxBreakdown, RxBreakdown, usize) {
    let writes: Vec<SimTime> = rec
        .marks()
        .iter()
        .filter(|(m, _)| *m == Mark::WriteStart)
        .map(|&(_, t)| t)
        .collect();
    let returns: Vec<SimTime> = rec
        .marks()
        .iter()
        .filter(|(m, _)| *m == Mark::ReadReturn)
        .map(|&(_, t)| t)
        .collect();
    let n = writes.len().min(returns.len());
    let mut tx = TxBreakdown::default();
    let mut rx = RxBreakdown::default();
    let mut used = 0usize;
    for i in 0..n {
        let w = writes[i];
        let r = returns[i];
        if r <= w {
            continue;
        }
        // Transmit: the write() system call's own work — clipped to
        // [WriteStart, WriteEnd] so that ACKs emitted later from
        // interrupt context (which the paper's send-side probes never
        // saw) don't pollute the rows.
        let we = rec.first_mark_after(Mark::WriteEnd, w).unwrap_or(r).min(r);
        tx.user += rec.clipped_total(SpanKind::TxUser, w, we).as_us_f64();
        tx.cksum += rec
            .clipped_total(SpanKind::TxTcpChecksum, w, we)
            .as_us_f64();
        tx.mcopy += rec.clipped_total(SpanKind::TxTcpMcopy, w, we).as_us_f64();
        tx.segment += rec.clipped_total(SpanKind::TxTcpSegment, w, we).as_us_f64();
        tx.ip += rec.clipped_total(SpanKind::TxIp, w, we).as_us_f64();
        tx.driver += rec.clipped_total(SpanKind::TxDriver, w, we).as_us_f64();
        // Receive: clip to [last segment arrival, read return].
        let Some(t_arr) = rec.last_mark_before(Mark::SegmentArrived, r) else {
            continue;
        };
        if t_arr < w {
            continue;
        }
        rx.driver += rec.clipped_total(SpanKind::RxDriver, t_arr, r).as_us_f64();
        rx.ipq += rec.clipped_total(SpanKind::RxIpq, t_arr, r).as_us_f64();
        rx.ip += rec.clipped_total(SpanKind::RxIp, t_arr, r).as_us_f64();
        rx.cksum += rec
            .clipped_total(SpanKind::RxTcpChecksum, t_arr, r)
            .as_us_f64();
        rx.segment += rec
            .clipped_total(SpanKind::RxTcpSegment, t_arr, r)
            .as_us_f64();
        rx.wakeup += rec.clipped_total(SpanKind::RxWakeup, t_arr, r).as_us_f64();
        rx.user += rec.clipped_total(SpanKind::RxUser, t_arr, r).as_us_f64();
        used += 1;
    }
    if used > 0 {
        let k = used as f64;
        tx.user /= k;
        tx.cksum /= k;
        tx.mcopy /= k;
        tx.segment /= k;
        tx.ip /= k;
        tx.driver /= k;
        rx.driver /= k;
        rx.ipq /= k;
        rx.ip /= k;
        rx.cksum /= k;
        rx.segment /= k;
        rx.wakeup /= k;
        rx.user /= k;
    }
    (tx, rx, used)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_yields_zero() {
        let rec = SpanRecorder::new();
        let (tx, rx, n) = compute_breakdowns(&rec);
        assert_eq!(n, 0);
        assert_eq!(tx.total(), 0.0);
        assert_eq!(rx.total(), 0.0);
    }

    #[test]
    fn single_iteration_breakdown() {
        let mut rec = SpanRecorder::new();
        rec.enabled = true;
        let us = SimTime::from_us;
        rec.mark(Mark::WriteStart, us(0));
        rec.span(SpanKind::TxUser, us(0), us(45));
        rec.span(SpanKind::TxTcpChecksum, us(45), us(55));
        rec.span(SpanKind::TxIp, us(55), us(90));
        rec.span(SpanKind::TxDriver, us(90), us(113));
        rec.mark(Mark::TxSignalled, us(113));
        // Response arrives at 600; driver work partly before (it
        // started on an earlier segment at 550).
        rec.span(SpanKind::RxDriver, us(550), us(650));
        rec.mark(Mark::SegmentArrived, us(600));
        rec.span(SpanKind::RxIp, us(650), us(690));
        rec.span(SpanKind::RxUser, us(690), us(754));
        rec.mark(Mark::ReadReturn, us(754));
        let (tx, rx, n) = compute_breakdowns(&rec);
        assert_eq!(n, 1);
        assert!((tx.user - 45.0).abs() < 1e-9);
        assert!((tx.total() - 113.0).abs() < 1e-9);
        // Only the post-arrival half of the driver span counts.
        assert!((rx.driver - 50.0).abs() < 1e-9, "{}", rx.driver);
        assert!((rx.ip - 40.0).abs() < 1e-9);
        assert!((rx.user - 64.0).abs() < 1e-9);
        assert!((rx.total() - 154.0).abs() < 1e-9);
    }

    #[test]
    fn averaging_across_iterations() {
        let mut rec = SpanRecorder::new();
        rec.enabled = true;
        let us = SimTime::from_us;
        for i in 0..2u64 {
            let base = us(i * 1000);
            rec.mark(Mark::WriteStart, base);
            let dur = if i == 0 { 40 } else { 60 };
            rec.span(SpanKind::TxUser, base, base + us(dur));
            rec.mark(Mark::SegmentArrived, base + us(500));
            rec.span(SpanKind::RxUser, base + us(500), base + us(520));
            rec.mark(Mark::ReadReturn, base + us(520));
        }
        let (tx, rx, n) = compute_breakdowns(&rec);
        assert_eq!(n, 2);
        assert!((tx.user - 50.0).abs() < 1e-9);
        assert!((rx.user - 20.0).abs() < 1e-9);
    }
}
