//! The tail-at-scale fan-out study.
//!
//! The paper's tables price one round trip between two hosts; modern
//! datacenter services price the *slowest of N*. A client that fans a
//! logical request out to N servers and waits for every reply turns a
//! rare per-server hiccup into a common per-request one: if a single
//! sub-request lands in the slow tail with probability `p`, the
//! logical request does with probability `1 - (1 - p)^N`. At N = 64
//! a 1-in-100 hiccup hits nearly half of all requests — the p99
//! becomes the p50's problem ("Deconstructing the Tail at Scale
//! Effect", PAPERS.md).
//!
//! Each study cell runs the fan-out/wait-for-all world from
//! `crates/world` under one faultkit regime, with or without
//! background churn traffic, and reduces the per-request completion
//! times (the max over the N sub-request RTTs) to p50 / p99 / p999
//! plus the **tail-amplification ratio**: p99 at fan-out N divided by
//! p99 at fan-out 1 in the same regime. The paper-predicted signature
//! is amplification growing with N while the median stays near flat.
//!
//! Percentile hygiene matters more here than anywhere else in the
//! repo, so this module leans on the guarded accessors: p999 is
//! `None` (rendered `-`, JSON `null`) below `simcap`'s minimum sample
//! floor, and clamped RTT samples are counted, never silently folded
//! into the max (the [`simcap::Recorder`] saturation accounting).

use faultkit::{FaultSchedule, GilbertElliott};
use simcap::Quantiles as _;

use crate::obs::Samples;
use crate::recovery::Scenario;

/// The study's fault regimes, clean baseline first.
///
/// Order is part of the report: tables and canonical JSON render in
/// this order. Names are stable sweep-key components.
#[must_use]
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "clean",
            blurb: "no injected faults (tail from contention alone)",
            faults: FaultSchedule::default(),
        },
        Scenario {
            name: "burst-loss",
            blurb: "rare short cell-loss bursts (GE light) on server uplinks",
            faults: FaultSchedule::default().with_atm_loss(GilbertElliott::light_bursts()),
        },
        Scenario {
            name: "fifo-overrun",
            blurb: "8-cell server RX FIFO + 12-cell drain stalls",
            faults: FaultSchedule::default()
                .with_rx_fifo_cells(8)
                .with_rx_contention(0.002, 12),
        },
        Scenario {
            name: "mbuf-exhaustion",
            blurb: "server pools sized below the incast burst: ENOBUFS sheds",
            faults: FaultSchedule::default().with_mbuf_limit(12),
        },
    ]
}

/// The scenario named `name`, if the study defines it.
#[must_use]
pub fn scenario(name: &str) -> Option<Scenario> {
    scenarios().into_iter().find(|s| s.name == name)
}

/// One row of the tails table: a scenario × fan-out × churn cell.
#[derive(Clone, Debug)]
pub struct TailsRow {
    /// Scenario name.
    pub scenario: String,
    /// Fan-out width N (sub-requests per logical request).
    pub fanout: usize,
    /// Whether background churn traffic shared the fabric.
    pub churn: bool,
    /// Measured logical-request completions.
    pub samples: u64,
    /// Client hosts whose fan-out round was aborted by the retransmit
    /// limit (their remaining rounds are missing from `samples`).
    pub aborted: u64,
    /// Completion samples clamped to `i64::MAX` ns (must be zero for
    /// the tail columns to be trustworthy).
    pub saturated: u64,
    /// Mean completion in µs.
    pub mean_us: f64,
    /// Median completion in µs.
    pub p50_us: f64,
    /// 99th-percentile completion in µs.
    pub p99_us: f64,
    /// 99.9th-percentile completion in µs; `None` when the cell holds
    /// fewer than [`simcap::P999_MIN_SAMPLES`] samples (nearest-rank
    /// p999 would just repeat the max).
    pub p999_us: Option<f64>,
    /// Worst completion in µs.
    pub max_us: f64,
    /// `p50 / p50(fan-out 1)` within the same scenario × churn group;
    /// `None` until [`amplify`] runs or when the baseline is missing
    /// or degenerate.
    pub amp_p50: Option<f64>,
    /// `p99 / p99(fan-out 1)` — the tail-amplification ratio.
    pub amp_p99: Option<f64>,
}

/// Reduces one cell's completion times to a row.
///
/// Amplification columns start `None`; call [`amplify`] once every
/// row of the study exists, so each cell can find its fan-out-1
/// baseline.
#[must_use]
pub fn reduce(
    scenario: &str,
    fanout: usize,
    churn: bool,
    completions: &Samples,
    aborted: u64,
) -> TailsRow {
    let rec = completions.recorder();
    #[allow(clippy::cast_precision_loss)]
    let us = |ns: i64| ns as f64 / 1000.0;
    TailsRow {
        scenario: scenario.to_string(),
        fanout,
        churn,
        samples: completions.len() as u64,
        aborted,
        saturated: rec.saturated(),
        mean_us: rec.mean_us(),
        p50_us: us(rec.percentile_ns(50.0).unwrap_or(0)),
        p99_us: us(rec.percentile_ns(99.0).unwrap_or(0)),
        p999_us: rec.p999_ns().map(us),
        max_us: us(rec.max_ns().unwrap_or(0)),
        amp_p50: None,
        amp_p99: None,
    }
}

/// Fills the amplification columns: each row is divided by the
/// fan-out-1 row of the same scenario × churn group.
///
/// A row with no baseline (the group has no fan-out-1 cell, or the
/// baseline percentile is zero or itself unsampled) keeps `None` —
/// rendered as `-` / JSON `null` rather than a made-up ratio.
pub fn amplify(rows: &mut [TailsRow]) {
    let bases: Vec<(String, bool, f64, f64)> = rows
        .iter()
        .filter(|r| r.fanout == 1 && r.samples > 0)
        .map(|r| (r.scenario.clone(), r.churn, r.p50_us, r.p99_us))
        .collect();
    for row in rows.iter_mut() {
        let base = bases
            .iter()
            .find(|(s, c, _, _)| *s == row.scenario && *c == row.churn);
        if let Some((_, _, b50, b99)) = base {
            if row.samples > 0 {
                row.amp_p50 = (*b50 > 0.0).then(|| row.p50_us / b50);
                row.amp_p99 = (*b99 > 0.0).then(|| row.p99_us / b99);
            }
        }
    }
}

/// Formats the study as a table, one row per scenario × fan-out ×
/// churn cell, in the given order.
#[must_use]
pub fn format_table(rows: &[TailsRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "tail at scale (fan-out/wait-for-all RPC over the switched ATM\n\
         fabric): completion time = max over N parallel sub-requests\n",
    );
    let _ = writeln!(
        out,
        "{:<16} {:>4} {:>6} | {:>9} {:>9} {:>9} {:>9} {:>10} | {:>8} {:>8} | {:>5}",
        "scenario",
        "N",
        "churn",
        "mean(us)",
        "p50(us)",
        "p99(us)",
        "p999(us)",
        "worst(us)",
        "amp(p50)",
        "amp(p99)",
        "n"
    );
    let opt = |v: Option<f64>, width: usize, prec: usize| -> String {
        match v {
            Some(x) => format!("{x:>width$.prec$}"),
            None => format!("{:>width$}", "-"),
        }
    };
    for r in rows {
        if r.samples == 0 {
            let _ = writeln!(
                out,
                "{:<16} {:>4} {:>6} | {:>9} {:>9} {:>9} {:>9} {:>10} | {:>8} {:>8} | {:>4}!",
                r.scenario,
                r.fanout,
                if r.churn { "on" } else { "off" },
                "-",
                "-",
                "-",
                "-",
                "-",
                "-",
                "-",
                0,
            );
            continue;
        }
        let _ = writeln!(
            out,
            "{:<16} {:>4} {:>6} | {:>9.0} {:>9.0} {:>9.0} {} {:>10.0} | {} {} | {:>4}{}",
            r.scenario,
            r.fanout,
            if r.churn { "on" } else { "off" },
            r.mean_us,
            r.p50_us,
            r.p99_us,
            opt(r.p999_us, 9, 0),
            r.max_us,
            opt(r.amp_p50, 8, 2),
            opt(r.amp_p99, 8, 2),
            r.samples,
            if r.aborted > 0 { "!" } else { "" },
        );
    }
    out.push_str(
        "(p999 '-' = under the 1000-sample nearest-rank floor; '!' =\n\
         some client rounds hit the retransmit-limit abort; amp = ratio\n\
         to the fan-out-1 cell of the same scenario x churn group.)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::ObsMode;
    use simkit::SimTime;

    fn t(us: u64) -> SimTime {
        SimTime::from_us(us)
    }

    fn pool(ts: &[SimTime]) -> Samples {
        let mut s = Samples::new(ObsMode::Exact);
        s.extend_from(ts);
        s
    }

    #[test]
    fn scenario_names_are_unique_and_clean_first() {
        let all = scenarios();
        assert_eq!(all[0].name, "clean");
        assert!(all[0].faults.is_clean());
        let mut names: Vec<_> = all.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
        assert!(scenario("burst-loss").is_some());
        assert!(scenario("nope").is_none());
    }

    #[test]
    fn reduce_refuses_fake_p999_on_small_cells() {
        let row = reduce("clean", 4, false, &pool(&[t(100), t(110), t(500)]), 0);
        assert_eq!(row.samples, 3);
        assert_eq!(row.p999_us, None, "3 samples cannot estimate p999");
        assert_eq!(row.saturated, 0);
        assert!(row.p99_us >= row.p50_us);
        assert!((row.max_us - 500.0).abs() < 1e-9);
    }

    #[test]
    fn reduce_reports_p999_above_the_sample_floor() {
        let samples: Vec<SimTime> = (1..=2000).map(t).collect();
        let row = reduce("clean", 16, true, &pool(&samples), 0);
        assert_eq!(row.samples, 2000);
        let p999 = row.p999_us.expect("2000 samples clear the floor");
        assert!(p999 < row.max_us, "p999 {p999} must not collapse to max");
    }

    #[test]
    fn amplify_divides_by_the_matching_fanout_1_cell() {
        let mut rows = vec![
            reduce("clean", 1, false, &pool(&[t(100), t(100), t(100)]), 0),
            reduce("clean", 16, false, &pool(&[t(100), t(120), t(300)]), 0),
            // Different churn setting: must NOT share the baseline.
            reduce("clean", 16, true, &pool(&[t(400), t(400), t(400)]), 0),
        ];
        amplify(&mut rows);
        assert_eq!(rows[0].amp_p99, Some(1.0), "baseline divides itself");
        assert_eq!(rows[0].amp_p50, Some(1.0));
        assert!((rows[1].amp_p99.unwrap() - 3.0).abs() < 1e-9);
        assert!((rows[1].amp_p50.unwrap() - 1.2).abs() < 1e-9);
        assert_eq!(rows[2].amp_p99, None, "churn group has no fan-out-1 cell");
    }

    #[test]
    fn amplify_skips_empty_and_degenerate_baselines() {
        let mut rows = vec![
            reduce("clean", 1, false, &pool(&[]), 1),
            reduce("clean", 4, false, &pool(&[t(10)]), 0),
            reduce("burst-loss", 1, false, &pool(&[SimTime::ZERO]), 0),
            reduce("burst-loss", 4, false, &pool(&[t(10)]), 0),
        ];
        amplify(&mut rows);
        assert_eq!(rows[1].amp_p99, None, "empty baseline yields no ratio");
        assert_eq!(
            rows[3].amp_p99, None,
            "zero-valued baseline percentile yields no ratio"
        );
    }

    #[test]
    fn table_renders_sampled_empty_and_unsampled_rows() {
        let mut rows = vec![
            reduce("clean", 1, false, &pool(&[t(100), t(110)]), 0),
            reduce("clean", 64, true, &pool(&[t(100), t(900)]), 2),
            reduce("mbuf-exhaustion", 64, true, &pool(&[]), 4),
        ];
        amplify(&mut rows);
        let text = format_table(&rows);
        assert!(text.contains("scenario"));
        assert!(text.contains("amp(p99)"));
        assert!(text.contains("mbuf-exhaustion"));
        assert!(text.contains('!'), "aborted rows are flagged");
        // Under-sampled p999 renders as '-', not a number.
        assert!(text.contains(" - "));
    }
}
