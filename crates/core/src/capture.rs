//! Re-deriving the paper's latency tables from wire captures.
//!
//! The paper's numbers come from *inline* instrumentation: probe
//! points bracketing each kernel layer (the [`crate::breakdown`]
//! machinery). This module derives the same quantities a second,
//! independent way — the way a network analyst without kernel source
//! would: arm packet taps at the layer boundaries, capture every
//! frame with its 40 ns-quantized timestamp, and subtract timestamps
//! of the *same packet* observed at two taps (RFC 1242 latency).
//!
//! [`compare_with_inline`] runs both accountings side by side and
//! reports, per span, the capture-derived mean, the inline mean, and
//! the worst per-iteration deviation. For single-segment workloads
//! the two agree to within one 40 ns clock tick per constituent span
//! (the only slack is the floor-quantization of the tap clock), which
//! [`assert_capture_matches_inline`] enforces.
//!
//! Multi-segment messages (e.g. the 8000-byte case) are *expected* to
//! diverge: the capture sees per-segment queueing and overlap that
//! the paper's clipped-window methodology deliberately excludes, so
//! the comparison refuses to run there rather than report noise.

use simcap::{CapturedFrame, TapPoint};
use simkit::SimTime;
use tcpip::{Mark, SpanKind, SpanRecorder};

use crate::experiment::{Experiment, NetKind, RunResult};
use crate::world::Host;

/// One 40 ns tick of the TurboChannel clock, in nanoseconds.
const TICK_NS: i64 = 40;

/// Every frame captured on one host — kernel taps (socket/TCP), NIC
/// taps (DMA boundaries, wire arrival), and medium taps (raw cells or
/// frames) — merged in timestamp order.
#[derive(Clone, Debug)]
pub struct HostCapture {
    /// Captured frames, sorted by timestamp (stable).
    pub frames: Vec<CapturedFrame>,
    /// Whether the medium was Ethernet (selects pcap link types).
    pub ether: bool,
    /// Flight-recorder snapshots frozen by triggers (RTO, abort,
    /// deadline, invariant) during the run. Empty outside flight
    /// mode (see [`CapturePlan::flight`]).
    pub snapshots: Vec<simcap::TriggerSnapshot>,
}

impl HostCapture {
    fn drain(host: &mut Host, ether: bool) -> Self {
        let snapshots = host.kernel.taps.take_snapshots();
        let mut frames = host.kernel.taps.take();
        frames.extend(host.nic.take_taps());
        frames.sort_by_key(|f| f.at);
        HostCapture {
            frames,
            ether,
            snapshots,
        }
    }

    /// Frames observed at one tap point, in timestamp order.
    pub fn at(&self, p: TapPoint) -> impl Iterator<Item = &CapturedFrame> {
        self.frames.iter().filter(move |f| f.tap == p)
    }

    /// The pcap link type for one tap's records. Socket-layer taps
    /// carry raw user bytes and ATM cells are 53-byte slabs — both go
    /// out as `LINKTYPE_USER0`; everything else is a parseable IP
    /// datagram (`LINKTYPE_RAW`) or full Ethernet frame
    /// (`LINKTYPE_EN10MB`).
    #[must_use]
    pub fn linktype(&self, p: TapPoint) -> u32 {
        match p {
            TapPoint::SockSend | TapPoint::SockRecv | TapPoint::LinkCell => simcap::LINKTYPE_USER0,
            TapPoint::Wire | TapPoint::LinkFrame if self.ether => simcap::LINKTYPE_EN10MB,
            _ => simcap::LINKTYPE_RAW,
        }
    }

    fn records(&self, p: TapPoint) -> Vec<(u64, Vec<u8>)> {
        self.at(p)
            .map(|f| (f.at.as_ns(), f.bytes.clone()))
            .collect()
    }

    /// One tap's records as an in-memory [`simcap::Capture`], ready
    /// for [`simcap::hop_between`] without a file round-trip.
    #[must_use]
    pub fn capture(&self, p: TapPoint) -> simcap::Capture {
        simcap::Capture {
            linktype: self.linktype(p),
            records: self.records(p),
        }
    }

    /// Serializes one tap's records as a classic pcap file
    /// (nanosecond magic) — byte-identical across identical runs.
    #[must_use]
    pub fn pcap(&self, p: TapPoint) -> Vec<u8> {
        simcap::pcap::to_pcap_bytes(self.linktype(p), &self.records(p))
    }

    /// Serializes one tap's records as a pcapng file with
    /// `if_tsresol = 9` — byte-identical across identical runs.
    #[must_use]
    pub fn pcapng(&self, p: TapPoint) -> Vec<u8> {
        simcap::pcapng::to_pcapng_bytes(self.linktype(p), &self.records(p))
    }
}

/// A captured repetition: the ordinary results plus both hosts'
/// captures and the client's span recorder (for the cross-check).
pub struct CaptureRun {
    /// The results the uninstrumented run would have produced.
    pub result: RunResult,
    /// Client-side capture (host 0).
    pub client: HostCapture,
    /// Server-side capture (host 1).
    pub server: HostCapture,
    /// The client's inline span recorder.
    pub client_spans: SpanRecorder,
}

impl<'a> crate::experiment::RunPlan<'a> {
    /// Arms every capture tap: the resulting [`CapturePlan`]'s
    /// [`execute`](CapturePlan::execute) returns a [`CaptureRun`] with
    /// both hosts' captures alongside the ordinary results. Taps
    /// record serialized frames only; they never perturb timing, so
    /// `result` is identical to an uncaptured plan of the same seed
    /// (except `mbufs_leaked`, which stays zero because the world must
    /// outlive the run for the taps to be drained).
    ///
    /// A capture is one repetition: the plan's (first-repetition) seed
    /// is used and [`reps`](crate::experiment::RunPlan::reps) does not
    /// apply. Armed observers carry over.
    #[must_use]
    pub fn captured(self) -> CapturePlan<'a> {
        CapturePlan {
            exp: self.exp,
            seed: self.seed,
            obs: self.obs,
            flight: None,
            observers: self.observers,
        }
    }
}

/// A [`crate::experiment::RunPlan`] with every capture tap armed
/// (built by [`RunPlan::captured`](crate::experiment::RunPlan::captured)).
pub struct CapturePlan<'a> {
    exp: &'a Experiment,
    seed: u64,
    obs: crate::obs::ObsMode,
    flight: Option<usize>,
    observers: Vec<simkit::ObserverFn<crate::world::World>>,
}

impl CapturePlan<'_> {
    /// Switches the kernel taps to flight-recorder mode: only the
    /// last `last_k` frames per tap point are retained, and a trigger
    /// (RTO, connection abort, missed deadline, invariant violation)
    /// freezes the window into a pcapng-ready
    /// [`simcap::TriggerSnapshot`] on [`HostCapture::snapshots`].
    /// Full captures stay the default; flight mode is for long runs
    /// where retaining everything would swamp memory but the frames
    /// *around an anomaly* are exactly what a postmortem needs.
    ///
    /// # Panics
    ///
    /// Panics if `last_k` is zero.
    #[must_use]
    pub fn flight(mut self, last_k: usize) -> Self {
        assert!(last_k >= 1, "a flight window needs at least one frame");
        self.flight = Some(last_k);
        self
    }

    /// Sets the observability mode for the result's RTT samples (see
    /// [`RunPlan::observe`](crate::experiment::RunPlan::observe)).
    #[must_use]
    pub fn observe(mut self, mode: crate::obs::ObsMode) -> Self {
        self.obs = mode;
        self
    }

    /// Arms a read-only per-event observer (see
    /// [`RunPlan::observer`](crate::experiment::RunPlan::observer)).
    #[must_use]
    pub fn observer(mut self, obs: simkit::ObserverFn<crate::world::World>) -> Self {
        self.observers.push(obs);
        self
    }

    /// Arms an invariant-checking observer (see
    /// [`RunPlan::invariants`](crate::experiment::RunPlan::invariants)).
    #[must_use]
    pub fn invariants(self, obs: simkit::ObserverFn<crate::world::World>) -> Self {
        self.observer(obs)
    }

    /// Executes the captured repetition.
    #[must_use]
    pub fn execute(self) -> CaptureRun {
        let shared = crate::experiment::share_observers(self.observers);
        let (mut result, mut w) = self.exp.run_sim_with(
            self.seed,
            true,
            self.flight,
            crate::experiment::fan_out(&shared),
        );
        result.obs = self.obs;
        let ether = self.exp.net == NetKind::Ether;
        let client_spans = w.hosts[0].kernel.spans.clone();
        let client = HostCapture::drain(&mut w.hosts[0], ether);
        let server = HostCapture::drain(&mut w.hosts[1], ether);
        CaptureRun {
            result,
            client,
            server,
            client_spans,
        }
    }
}

/// One row of the capture-derived per-hop latency table: the same
/// TCP segments matched at two taps, `t_B − t_A` distribution.
pub struct HopRow {
    /// Human label, `tap_A → tap_B`.
    pub label: String,
    /// Matching statistics and the latency distribution.
    pub report: simcap::HopReport,
}

/// The per-hop latency table over the full round trip, derived
/// purely from the captures by RFC 1242 same-packet matching:
/// request direction through the client's transmit taps and the
/// server's receive taps, response direction mirrored. Pure ACKs are
/// excluded (`data_only`), so each hop sees exactly the RPC segments.
#[must_use]
pub fn hop_table(run: &CaptureRun) -> Vec<HopRow> {
    let c = &run.client;
    let s = &run.server;
    let hops: [(&str, &HostCapture, TapPoint, &HostCapture, TapPoint); 8] = [
        (
            "req tcp_send → nic_dma_tx",
            c,
            TapPoint::TcpSend,
            c,
            TapPoint::NicDmaTx,
        ),
        (
            "req nic_dma_tx → wire",
            c,
            TapPoint::NicDmaTx,
            s,
            TapPoint::Wire,
        ),
        (
            "req wire → nic_dma_rx",
            s,
            TapPoint::Wire,
            s,
            TapPoint::NicDmaRx,
        ),
        (
            "req nic_dma_rx → tcp_recv",
            s,
            TapPoint::NicDmaRx,
            s,
            TapPoint::TcpRecv,
        ),
        (
            "rsp tcp_send → nic_dma_tx",
            s,
            TapPoint::TcpSend,
            s,
            TapPoint::NicDmaTx,
        ),
        (
            "rsp nic_dma_tx → wire",
            s,
            TapPoint::NicDmaTx,
            c,
            TapPoint::Wire,
        ),
        (
            "rsp wire → nic_dma_rx",
            c,
            TapPoint::Wire,
            c,
            TapPoint::NicDmaRx,
        ),
        (
            "rsp nic_dma_rx → tcp_recv",
            c,
            TapPoint::NicDmaRx,
            c,
            TapPoint::TcpRecv,
        ),
    ];
    hops.iter()
        .map(|&(label, ha, pa, hb, pb)| HopRow {
            label: label.to_string(),
            report: simcap::hop_between(&ha.capture(pa), &hb.capture(pb), true),
        })
        .collect()
}

/// One compared span: the capture-derived duration next to the
/// inline span-accounting duration, averaged over iterations, plus
/// the worst single-iteration deviation and its tolerance.
#[derive(Clone, Debug)]
pub struct ComparedSpan {
    /// What the span covers.
    pub label: &'static str,
    /// Mean duration derived from tap timestamps (µs).
    pub capture_us: f64,
    /// Mean duration from the inline span recorder (µs).
    pub inline_us: f64,
    /// Worst per-iteration |capture − inline| (ns).
    pub max_dev_ns: i64,
    /// Allowed deviation: one 40 ns tick per constituent inline span
    /// (the tap clock floor-quantizes each endpoint).
    pub tol_ns: i64,
}

/// The full capture-vs-inline comparison.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Iterations that contributed.
    pub iterations: usize,
    /// Per-span rows, transmit path first, round trip last.
    pub spans: Vec<ComparedSpan>,
}

impl Comparison {
    /// Whether every span agreed within tolerance.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.spans.iter().all(|s| s.max_dev_ns <= s.tol_ns)
    }
}

fn first_at_or_after(frames: &[CapturedFrame], p: TapPoint, t: u64) -> Option<u64> {
    frames
        .iter()
        .find(|f| f.tap == p && f.at.as_ns() >= t)
        .map(|f| f.at.as_ns())
}

fn last_at_or_before(frames: &[CapturedFrame], p: TapPoint, t: u64) -> Option<u64> {
    frames
        .iter()
        .filter(|f| f.tap == p && f.at.as_ns() <= t)
        .map(|f| f.at.as_ns())
        .next_back()
}

fn has_at(frames: &[CapturedFrame], p: TapPoint, t: u64) -> bool {
    frames.iter().any(|f| f.tap == p && f.at.as_ns() == t)
}

/// Re-derives the client-side RTT breakdown from the capture and
/// compares it, iteration by iteration, against the inline span
/// accounting (the paper's methodology in [`crate::breakdown`]).
///
/// Only valid for single-segment messages (size ≤ MSS): with several
/// segments in flight the capture sees queueing the clipped-window
/// methodology excludes, and this returns an error instead of noise.
///
/// # Errors
///
/// Returns a description of the first missing tap frame, misaligned
/// iteration, or multi-segment write encountered.
pub fn compare_with_inline(run: &CaptureRun) -> Result<Comparison, String> {
    let rec = &run.client_spans;
    let frames = &run.client.frames;
    let writes: Vec<SimTime> = rec
        .marks()
        .iter()
        .filter(|(m, _)| *m == Mark::WriteStart)
        .map(|&(_, t)| t)
        .collect();
    let returns: Vec<SimTime> = rec
        .marks()
        .iter()
        .filter(|(m, _)| *m == Mark::ReadReturn)
        .map(|&(_, t)| t)
        .collect();
    let n = writes.len().min(returns.len());
    if n == 0 {
        return Err("no measured iterations in the span recorder".into());
    }

    // (label, constituent inline spans). The capture hop between two
    // adjacent taps must equal the sum of the inline spans between
    // the same boundaries; tolerance is one tick per span.
    struct Def {
        label: &'static str,
        tx: bool,
        spans: &'static [SpanKind],
    }
    let defs = [
        Def {
            label: "write() → tcp out (user+tcp)",
            tx: true,
            spans: &[
                SpanKind::TxUser,
                SpanKind::TxTcpChecksum,
                SpanKind::TxTcpMcopy,
                SpanKind::TxTcpSegment,
            ],
        },
        Def {
            label: "tcp out → adapter (ip+driver)",
            tx: true,
            spans: &[SpanKind::TxIp, SpanKind::TxDriver],
        },
        Def {
            label: "wire → ip queue (rx driver)",
            tx: false,
            spans: &[SpanKind::RxDriver],
        },
        Def {
            label: "ip queue → tcp in (ipq+ip+tcp)",
            tx: false,
            spans: &[
                SpanKind::RxIpq,
                SpanKind::RxIp,
                SpanKind::RxTcpChecksum,
                SpanKind::RxTcpSegment,
            ],
        },
        Def {
            label: "tcp in → read() return (wakeup+user)",
            tx: false,
            spans: &[SpanKind::RxWakeup, SpanKind::RxUser],
        },
        Def {
            label: "round trip (write() → read())",
            tx: false,
            spans: &[],
        },
    ];
    let mut cap_sum = vec![0i64; defs.len()];
    let mut inl_sum = vec![0i64; defs.len()];
    let mut max_dev = vec![0i64; defs.len()];
    let mut used = 0usize;

    for i in 0..n {
        let w = writes[i];
        let r = returns[i];
        if r <= w {
            continue;
        }
        let wq = w.quantized().as_ns();
        let rq = r.quantized().as_ns();
        if !has_at(frames, TapPoint::SockSend, wq) {
            return Err(format!("iteration {i}: no SockSend frame at {wq} ns"));
        }
        if !has_at(frames, TapPoint::SockRecv, rq) {
            return Err(format!("iteration {i}: no SockRecv frame at {rq} ns"));
        }
        let we = rec.first_mark_after(Mark::WriteEnd, w).unwrap_or(r).min(r);
        let weq = we.quantized().as_ns();
        let n_tx: usize = frames
            .iter()
            .filter(|f| f.tap == TapPoint::NicDmaTx && f.at.as_ns() >= wq && f.at.as_ns() <= weq)
            .count();
        if n_tx != 1 {
            return Err(format!(
                "iteration {i}: {n_tx} segments in the write window — \
                 the comparison is defined for single-segment messages"
            ));
        }
        let tcp_send = first_at_or_after(frames, TapPoint::TcpSend, wq)
            .filter(|&t| t <= weq)
            .ok_or_else(|| format!("iteration {i}: no TcpSend frame in the write window"))?;
        let nic_tx = last_at_or_before(frames, TapPoint::NicDmaTx, weq)
            .filter(|&t| t >= wq)
            .ok_or_else(|| format!("iteration {i}: no NicDmaTx frame in the write window"))?;
        let Some(t_arr) = rec.last_mark_before(Mark::SegmentArrived, r) else {
            continue;
        };
        if t_arr < w {
            continue;
        }
        // Two arrivals inside one window (e.g. a delayed-ACK timer's
        // pure ACK landing next to the response) break the hop
        // pairing: the tap queries would mix frames of different
        // segments. The breakdown methodology skips such iterations,
        // so the comparison does too.
        let arrivals = rec
            .marks()
            .iter()
            .filter(|&&(m, t)| m == Mark::SegmentArrived && t >= w && t <= r)
            .count();
        if arrivals != 1 {
            continue;
        }
        let wire = last_at_or_before(frames, TapPoint::Wire, rq)
            .ok_or_else(|| format!("iteration {i}: no Wire frame before read return"))?;
        let nic_rx = last_at_or_before(frames, TapPoint::NicDmaRx, rq)
            .ok_or_else(|| format!("iteration {i}: no NicDmaRx frame before read return"))?;
        let tcp_recv = last_at_or_before(frames, TapPoint::TcpRecv, rq)
            .ok_or_else(|| format!("iteration {i}: no TcpRecv frame before read return"))?;

        // Capture-derived durations, one per def (same order).
        let caps = [
            tcp_send as i64 - wq as i64,
            nic_tx as i64 - tcp_send as i64,
            nic_rx as i64 - wire as i64,
            tcp_recv as i64 - nic_rx as i64,
            rq as i64 - tcp_recv as i64,
            rq as i64 - wq as i64,
        ];
        for (k, def) in defs.iter().enumerate() {
            let (lo, hi) = if def.tx { (w, we) } else { (t_arr, r) };
            let inline_ns = if def.spans.is_empty() {
                // Round trip: exactly what `rtts` records.
                rq as i64 - wq as i64
            } else {
                def.spans
                    .iter()
                    .map(|&s| rec.clipped_total(s, lo, hi).as_ns() as i64)
                    .sum()
            };
            let dev = (caps[k] - inline_ns).abs();
            cap_sum[k] += caps[k];
            inl_sum[k] += inline_ns;
            max_dev[k] = max_dev[k].max(dev);
        }
        used += 1;
    }
    if used == 0 {
        return Err("no iteration had a usable capture window".into());
    }
    let spans = defs
        .iter()
        .enumerate()
        .map(|(k, def)| ComparedSpan {
            label: def.label,
            capture_us: cap_sum[k] as f64 / used as f64 / 1000.0,
            inline_us: inl_sum[k] as f64 / used as f64 / 1000.0,
            max_dev_ns: max_dev[k],
            tol_ns: TICK_NS * (def.spans.len().max(1) as i64),
        })
        .collect();
    Ok(Comparison {
        iterations: used,
        spans,
    })
}

/// [`compare_with_inline`] that panics — the capture must agree with
/// the inline accounting within one 40 ns tick per span.
///
/// # Panics
///
/// Panics when the comparison cannot be computed or any span
/// disagrees beyond its tolerance.
pub fn assert_capture_matches_inline(run: &CaptureRun) -> Comparison {
    let cmp = compare_with_inline(run).expect("capture/inline comparison failed");
    for s in &cmp.spans {
        assert!(
            s.max_dev_ns <= s.tol_ns,
            "span `{}` deviates {} ns (tolerance {} ns): capture {:.3} µs vs inline {:.3} µs",
            s.label,
            s.max_dev_ns,
            s.tol_ns,
            s.capture_us,
            s.inline_us,
        );
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, NetKind};

    fn quick(net: NetKind, size: usize) -> Experiment {
        let mut e = Experiment::rpc(net, size);
        e.iterations = 20;
        e.warmup = 4;
        e
    }

    #[test]
    fn capture_does_not_perturb_results() {
        let plain = quick(NetKind::Atm, 200).plan().seed(3).execute();
        let cap = quick(NetKind::Atm, 200).plan().seed(3).captured().execute();
        assert_eq!(plain.rtts, cap.result.rtts);
        assert_eq!(plain.events, cap.result.events);
    }

    #[test]
    fn capture_agrees_with_inline_breakdown_atm() {
        let run = quick(NetKind::Atm, 200).plan().seed(1).captured().execute();
        let cmp = assert_capture_matches_inline(&run);
        assert_eq!(cmp.iterations, 20);
        // The re-derived round trip is the measured RTT itself.
        let rtt = cmp.spans.last().unwrap();
        assert!((rtt.capture_us - run.result.mean_rtt_us()).abs() < 0.001);
    }

    #[test]
    fn capture_agrees_with_inline_breakdown_ether() {
        let run = quick(NetKind::Ether, 200)
            .plan()
            .seed(1)
            .captured()
            .execute();
        let cmp = assert_capture_matches_inline(&run);
        assert!(cmp.ok());
    }

    #[test]
    fn hop_table_matches_every_rpc_segment() {
        let e = quick(NetKind::Atm, 200);
        let iters = e.iterations as usize;
        let run = e.plan().seed(1).captured().execute();
        for row in hop_table(&run) {
            assert_eq!(
                row.report.matched, iters,
                "hop `{}` should match one data segment per iteration",
                row.label
            );
            assert!(
                row.report.dist.min_ns().is_some_and(|m| m >= 0),
                "hop `{}`",
                row.label
            );
        }
    }

    #[test]
    fn captures_are_deterministic() {
        let a = quick(NetKind::Atm, 200).plan().seed(5).captured().execute();
        let b = quick(NetKind::Atm, 200).plan().seed(5).captured().execute();
        for p in TapPoint::ALL {
            assert_eq!(a.client.pcap(p), b.client.pcap(p), "{}", p.name());
            assert_eq!(a.server.pcapng(p), b.server.pcapng(p), "{}", p.name());
        }
    }

    #[test]
    fn pcap_round_trips_through_the_readers() {
        let run = quick(NetKind::Atm, 80).plan().seed(2).captured().execute();
        for p in [TapPoint::TcpSend, TapPoint::Wire, TapPoint::LinkCell] {
            let direct = run.client.capture(p);
            let via_pcap = simcap::read_any(&run.client.pcap(p)).unwrap();
            let via_ng = simcap::read_any(&run.client.pcapng(p)).unwrap();
            assert_eq!(direct.linktype, via_pcap.linktype);
            assert_eq!(direct.records, via_pcap.records);
            assert_eq!(direct.records, via_ng.records);
        }
    }

    #[test]
    fn multi_segment_messages_are_refused() {
        let run = quick(NetKind::Atm, 8000)
            .plan()
            .seed(1)
            .captured()
            .execute();
        let err = compare_with_inline(&run).unwrap_err();
        assert!(err.contains("single-segment"), "{err}");
    }
}
