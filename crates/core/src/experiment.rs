//! Runnable experiments: one per configuration the paper measures.
//!
//! An [`Experiment`] describes a two-host run (network, message
//! size, stack configuration, fault injection); [`Experiment::plan`]
//! builds a [`RunPlan`] that executes it deterministically — one
//! repetition or several averaged ones, as the paper did ("we ran
//! 40000 iterations for at least 3 repetitions and took the
//! average"), optionally with read-only per-event observers armed.

use std::cell::RefCell;
use std::rc::Rc;

use atm::{FiberLink, LinkConfig};
use decstation::CostModel;
use ether::{EtherWire, WireConfig};
use simkit::SimTime;
use tcpip::tcb::TcpStats;
use tcpip::{ChecksumMode, KernelStats, StackConfig};

use crate::app::{App, Role};
use crate::breakdown::{compute_breakdowns, RxBreakdown, TxBreakdown};
use crate::nic::{AtmNic, EtherNic, Nic};
use crate::stats;
use crate::world::{run_world, World};

/// Which substrate carries the traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetKind {
    /// FORE TCA-100 over 140 Mbit/s TAXI fiber (AAL3/4).
    Atm,
    /// LANCE over 10 Mbit/s Ethernet.
    Ether,
}

/// The benchmark shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// The paper's RPC echo ping-pong (§1.2).
    Rpc,
    /// Unidirectional bulk transfer (validates §3's explanation of
    /// when header prediction fires).
    Bulk,
    /// The same RPC echo over UDP datagrams (extension: the
    /// comparison implicit in §1's "is TCP viable for RPC?").
    UdpRpc,
}

/// A configured experiment.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Substrate.
    pub net: NetKind,
    /// Workload shape.
    pub workload: Workload,
    /// Message size in bytes.
    pub size: usize,
    /// Timed iterations per repetition.
    pub iterations: u64,
    /// Untimed warm-up iterations.
    pub warmup: u64,
    /// Stack configuration (checksum mode, prediction, PCBs...).
    pub cfg: StackConfig,
    /// Host cost model.
    pub costs: CostModel,
    /// Link bit error rate.
    pub ber: f64,
    /// Link cell/frame loss probability.
    pub cell_loss: f64,
    /// Controller corruption probability per received datagram (the
    /// §4.2.1 error class no link CRC can catch).
    pub controller_corrupt: f64,
    /// Route both directions through an ATM switch (the paper's
    /// testbed was switchless).
    pub switch: Option<atm::SwitchConfig>,
    /// Gateway-injection probability per Ethernet frame (the §4.2.1
    /// third error source; Ethernet only).
    pub gateway_corrupt: f64,
    /// Scheduled fault processes (faultkit): burst loss, train
    /// shaping, RX contention, FIFO/pool limits. `None` is clean; the
    /// i.i.d. knobs above remain for the §4.2.1 detection study.
    pub faults: Option<faultkit::FaultSchedule>,
}

impl Experiment {
    /// The paper's RPC benchmark on the given network and size, with
    /// the baseline kernel configuration.
    #[must_use]
    pub fn rpc(net: NetKind, size: usize) -> Self {
        Experiment {
            net,
            workload: Workload::Rpc,
            size,
            iterations: 400,
            warmup: 8,
            cfg: StackConfig::default(),
            costs: CostModel::calibrated(),
            ber: 0.0,
            cell_loss: 0.0,
            controller_corrupt: 0.0,
            switch: None,
            gateway_corrupt: 0.0,
            faults: None,
        }
    }

    /// The RPC echo over UDP (sizes must fit one datagram in the
    /// MTU).
    #[must_use]
    pub fn udp_rpc(net: NetKind, size: usize) -> Self {
        let mut e = Experiment::rpc(net, size);
        e.workload = Workload::UdpRpc;
        e
    }

    /// A unidirectional bulk transfer of `messages × size` bytes.
    #[must_use]
    pub fn bulk(net: NetKind, size: usize, messages: u64) -> Self {
        let mut e = Experiment::rpc(net, size);
        e.workload = Workload::Bulk;
        e.iterations = messages;
        e.warmup = 0;
        e
    }

    fn build_world(&self, seed: u64) -> World {
        let apps = match self.workload {
            Workload::Rpc => [
                App::new(Role::RpcClient, self.size, self.iterations, self.warmup),
                App::new(Role::RpcServer, self.size, u64::MAX / 4, 0),
            ],
            Workload::Bulk => [
                App::new(Role::BulkSender, self.size, self.iterations, self.warmup),
                App::new(Role::BulkReceiver, self.size, self.iterations, self.warmup),
            ],
            Workload::UdpRpc => [
                App::new(Role::UdpRpcClient, self.size, self.iterations, self.warmup),
                App::new(Role::UdpRpcServer, self.size, u64::MAX / 4, 0),
            ],
        };
        let nics = match self.net {
            NetKind::Atm => {
                let lc = LinkConfig {
                    ber: self.ber,
                    cell_loss: self.cell_loss,
                    ..LinkConfig::default()
                };
                let mut n0 = AtmNic::new(
                    FiberLink::new(lc, seed * 2 + 1),
                    self.costs.clone(),
                    42,
                    seed,
                );
                let mut n1 = AtmNic::new(
                    FiberLink::new(lc, seed * 2 + 2),
                    self.costs.clone(),
                    42,
                    seed + 9,
                );
                n0.controller_corrupt_prob = self.controller_corrupt;
                n1.controller_corrupt_prob = self.controller_corrupt;
                if let Some(swc) = self.switch {
                    n0.insert_switch(swc, 42, seed * 3 + 1);
                    n1.insert_switch(swc, 42, seed * 3 + 2);
                }
                if let Some(f) = &self.faults {
                    // Per-direction seeds match the link seeds; the
                    // fault processes draw from their own RNG streams,
                    // so they never collide with the BER streams.
                    n0.arm_faults(f, seed * 2 + 1);
                    n1.arm_faults(f, seed * 2 + 2);
                }
                [Nic::Atm(n0), Nic::Atm(n1)]
            }
            NetKind::Ether => {
                let wc = WireConfig {
                    ber: self.ber,
                    ..WireConfig::default()
                };
                let mut n0 = EtherNic::new(
                    EtherWire::new(wc, seed * 2 + 1),
                    self.costs.clone(),
                    0,
                    seed,
                );
                let mut n1 = EtherNic::new(
                    EtherWire::new(wc, seed * 2 + 2),
                    self.costs.clone(),
                    1,
                    seed + 9,
                );
                n0.controller_corrupt_prob = self.controller_corrupt;
                n1.controller_corrupt_prob = self.controller_corrupt;
                n0.gateway_corrupt_prob = self.gateway_corrupt;
                n1.gateway_corrupt_prob = self.gateway_corrupt;
                if let Some(f) = &self.faults {
                    n0.arm_faults(f, seed * 2 + 1);
                    n1.arm_faults(f, seed * 2 + 2);
                }
                [Nic::Ether(n0), Nic::Ether(n1)]
            }
        };
        let mut world = World::new(self.cfg, self.costs.clone(), nics, apps);
        if let Some(limit) = self.faults.as_ref().and_then(|f| f.mbuf_limit) {
            // The mbuf cap is per host pool: allocations beyond it
            // fail with ENOBUFS on the fallible (receive) paths.
            for host in &mut world.hosts {
                host.kernel.pool.set_limit(Some(limit));
            }
        }
        world
    }

    /// Starts a [`RunPlan`] for this experiment: seed, repetitions,
    /// observers and capture are all configured on the plan, and
    /// [`RunPlan::execute`] (or [`crate::capture::CapturePlan::execute`]
    /// after [`RunPlan::captured`]) runs it.
    #[must_use]
    pub fn plan(&self) -> RunPlan<'_> {
        RunPlan {
            exp: self,
            seed: 1,
            reps: 1,
            obs: crate::obs::ObsMode::Exact,
            observers: Vec::new(),
        }
    }

    pub(crate) fn run_sim_with(
        &self,
        seed: u64,
        capture: bool,
        flight: Option<usize>,
        obs: Option<simkit::ObserverFn<World>>,
    ) -> (RunResult, World) {
        let mut world = self.build_world(seed);
        world.capture = capture;
        world.flight_k = flight;
        let sim = match obs {
            Some(obs) => crate::world::run_world_observed(world, obs),
            None => run_world(world),
        };
        let events = sim.events_executed();
        let sim_time = sim.now();
        let w = sim.world;
        let client = &w.hosts[0];
        let server = &w.hosts[1];
        let (tx, rx, breakdown_iters) = compute_breakdowns(&client.kernel.spans);
        let (client_nic_stats, server_nic_stats) = (nic_stats(&client.nic), nic_stats(&server.nic));
        let result = RunResult {
            obs: crate::obs::ObsMode::Exact,
            rtts: client.app.stats.rtts.clone(),
            tx,
            rx,
            breakdown_iters,
            verify_failures: client.app.stats.verify_failures + server.app.stats.verify_failures,
            bytes_moved: client.app.stats.bytes + server.app.stats.bytes,
            client_tcp: client
                .kernel
                .try_tcb(client.sock)
                .map(|t| t.stats)
                .unwrap_or_default(),
            server_tcp: server
                .kernel
                .try_tcb(server.sock)
                .map(|t| t.stats)
                .unwrap_or_default(),
            client_kernel: client.kernel.stats,
            server_kernel: server.kernel.stats,
            client_nic: client_nic_stats,
            server_nic: server_nic_stats,
            enobufs: (
                client.kernel.pool.stats().enobufs_drops,
                server.kernel.pool.stats().enobufs_drops,
            ),
            aborted: client.app.aborted
                || server.app.aborted
                || client.kernel.stats.conn_aborts + server.kernel.stats.conn_aborts > 0,
            mbufs_leaked: (0, 0),
            events,
            sim_time,
        };
        (result, w)
    }
}

/// A declaratively configured execution of an [`Experiment`], built
/// by [`Experiment::plan`].
///
/// The plan is the single way to run an experiment — seed,
/// repetitions, observers and capture are all builder state:
///
/// ```
/// use latency_core::experiment::{Experiment, NetKind};
///
/// let mut exp = Experiment::rpc(NetKind::Atm, 200);
/// exp.iterations = 20;
/// exp.warmup = 2;
/// let one = exp.plan().seed(7).execute();
/// let avg = exp.plan().reps(3).execute();
/// assert_eq!(avg.rtts.len(), 3 * one.rtts.len());
/// ```
///
/// Semantics:
///
/// - [`seed`](RunPlan::seed) is the seed of the **first** repetition
///   (default 1); repetition `r` (1-based) runs with seed
///   `seed + (r - 1)` (wrapping). A plan's results therefore depend
///   only on `(experiment, seed, reps)` — never on which thread runs
///   it or in what order, which is what the sweep runner's
///   per-cell-key seeding relies on.
/// - [`reps`](RunPlan::reps) (default 1) pools the RTT samples across
///   repetitions and averages the layer breakdowns pairwise, exactly
///   as the paper's "at least 3 repetitions" methodology did.
/// - [`observer`](RunPlan::observer) arms read-only per-event
///   observers (any number; they fire in registration order after
///   every executed event of every repetition). Observers never
///   perturb the simulation, so an observed plan is bit-identical to
///   an unobserved one with the same seed — including the
///   post-teardown `mbufs_leaked` accounting the oracle's
///   mbuf-conservation checker relies on.
/// - [`captured`](RunPlan::captured) turns the plan into a
///   [`crate::capture::CapturePlan`], whose `execute` also returns
///   both hosts' packet captures.
pub struct RunPlan<'a> {
    pub(crate) exp: &'a Experiment,
    pub(crate) seed: u64,
    pub(crate) reps: u64,
    pub(crate) obs: crate::obs::ObsMode,
    pub(crate) observers: Vec<simkit::ObserverFn<World>>,
}

impl RunPlan<'_> {
    /// Sets the seed of the first repetition (default 1); repetition
    /// `r` (1-based) runs with seed `seed + (r - 1)`, wrapping.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of repetitions (default 1; must stay ≥ 1).
    #[must_use]
    pub fn reps(mut self, reps: u64) -> Self {
        self.reps = reps;
        self
    }

    /// Sets the observability mode for the pooled RTT samples
    /// (default [`crate::obs::ObsMode::Exact`]). The mode selects what
    /// [`RunResult::samples`] and [`RunResult::recorder`] retain:
    /// exact keeps every sample (the historical numbers, byte for
    /// byte), sketch answers quantiles from a bounded
    /// [`simcap::QuantileSketch`].
    #[must_use]
    pub fn observe(mut self, mode: crate::obs::ObsMode) -> Self {
        self.obs = mode;
        self
    }

    /// Arms a read-only per-event observer: it fires after every
    /// executed event of every repetition with `(world, time, label)`.
    #[must_use]
    pub fn observer(mut self, obs: simkit::ObserverFn<World>) -> Self {
        self.observers.push(obs);
        self
    }

    /// Arms an invariant-checking observer. Behaviourally identical to
    /// [`RunPlan::observer`]; the separate name keeps call sites honest
    /// about *why* an observer is armed (this crate cannot depend on
    /// the oracle, so its runtime checkers arrive as plain observers).
    #[must_use]
    pub fn invariants(self, obs: simkit::ObserverFn<World>) -> Self {
        self.observer(obs)
    }

    /// Executes the plan: `reps` repetitions starting at `seed`, RTT
    /// samples pooled and breakdowns averaged.
    #[must_use]
    pub fn execute(self) -> RunResult {
        assert!(self.reps >= 1, "a plan needs at least one repetition");
        let shared = share_observers(self.observers);
        let mut acc = run_single(self.exp, self.seed, &shared);
        for rep in 1..self.reps {
            let r = run_single(self.exp, self.seed.wrapping_add(rep), &shared);
            acc.rtts.extend(r.rtts);
            acc.verify_failures += r.verify_failures;
            acc.bytes_moved += r.bytes_moved;
            acc.events += r.events;
            acc.enobufs.0 += r.enobufs.0;
            acc.enobufs.1 += r.enobufs.1;
            acc.aborted |= r.aborted;
            acc.mbufs_leaked.0 += r.mbufs_leaked.0;
            acc.mbufs_leaked.1 += r.mbufs_leaked.1;
            // Breakdowns: average of averages (equal iteration counts).
            let k = 2.0;
            acc.tx = avg_tx(&acc.tx, &r.tx, k);
            acc.rx = avg_rx(&acc.rx, &r.rx, k);
        }
        acc.obs = self.obs;
        acc
    }
}

/// A plan's observers, shared across its repetitions (each repetition
/// builds a fresh engine, so the engine cannot own them outright).
/// `None` when the plan armed no observer — that path must stay
/// observer-free so an unobserved plan runs the exact production
/// event loop.
pub(crate) type SharedObservers = Option<Rc<RefCell<Vec<simkit::ObserverFn<World>>>>>;

pub(crate) fn share_observers(observers: Vec<simkit::ObserverFn<World>>) -> SharedObservers {
    if observers.is_empty() {
        None
    } else {
        Some(Rc::new(RefCell::new(observers)))
    }
}

/// One boxed trampoline fanning an engine callback out to every armed
/// observer in registration order.
pub(crate) fn fan_out(shared: &SharedObservers) -> Option<simkit::ObserverFn<World>> {
    shared.as_ref().map(|observers| {
        let observers = Rc::clone(observers);
        Box::new(move |w: &World, t: SimTime, label: &'static str| {
            for obs in observers.borrow_mut().iter_mut() {
                obs(w, t, label);
            }
        }) as simkit::ObserverFn<World>
    })
}

/// One repetition: build, run, tear down, account for leaks.
fn run_single(exp: &Experiment, seed: u64, shared: &SharedObservers) -> RunResult {
    let (mut result, world) = exp.run_sim_with(seed, false, None, fan_out(shared));
    let pools = (
        world.hosts[0].kernel.pool.clone(),
        world.hosts[1].kernel.pool.clone(),
    );
    // Teardown frees every chain still held by sockets, queues and
    // adapters; whatever remains outstanding is a genuine leak.
    drop(world);
    result.mbufs_leaked = (
        pools.0.stats().mbufs_outstanding(),
        pools.1.stats().mbufs_outstanding(),
    );
    result
}

// Sweep workers receive experiments and hand back results across
// thread boundaries; keep both plain data.
const _: () = simkit::assert_world_send::<Experiment>();
const _: () = simkit::assert_world_send::<RunResult>();

fn avg_tx(a: &TxBreakdown, b: &TxBreakdown, _k: f64) -> TxBreakdown {
    TxBreakdown {
        user: (a.user + b.user) / 2.0,
        cksum: (a.cksum + b.cksum) / 2.0,
        mcopy: (a.mcopy + b.mcopy) / 2.0,
        segment: (a.segment + b.segment) / 2.0,
        ip: (a.ip + b.ip) / 2.0,
        driver: (a.driver + b.driver) / 2.0,
    }
}

fn avg_rx(a: &RxBreakdown, b: &RxBreakdown, _k: f64) -> RxBreakdown {
    RxBreakdown {
        driver: (a.driver + b.driver) / 2.0,
        ipq: (a.ipq + b.ipq) / 2.0,
        ip: (a.ip + b.ip) / 2.0,
        cksum: (a.cksum + b.cksum) / 2.0,
        segment: (a.segment + b.segment) / 2.0,
        wakeup: (a.wakeup + b.wakeup) / 2.0,
        user: (a.user + b.user) / 2.0,
    }
}

/// NIC counters of interest to the fault experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct NicStats {
    /// Cells dropped by the adapter for HEC failures.
    pub hec_drops: u64,
    /// Datagrams dropped by AAL3/4 reassembly.
    pub aal_drops: u64,
    /// Frames dropped for Ethernet FCS failures.
    pub fcs_drops: u64,
    /// Cells lost on the link.
    pub link_lost: u64,
    /// Cells/frames corrupted on the link.
    pub link_corrupted: u64,
    /// Cells shed by RX FIFO overrun at the adapter.
    pub rx_overflow_drops: u64,
    /// Received datagrams/frames shed for mbuf exhaustion (ENOBUFS).
    pub enobufs_drops: u64,
}

fn nic_stats(nic: &Nic) -> NicStats {
    match nic {
        Nic::Atm(a) => NicStats {
            hec_drops: a.hec_drops,
            aal_drops: a.aal_drops,
            fcs_drops: 0,
            link_lost: a.link.cells_lost,
            link_corrupted: a.link.cells_corrupted,
            rx_overflow_drops: a.adapter.rx.overflow_drops,
            enobufs_drops: a.enobufs_drops,
        },
        Nic::Ether(e) => NicStats {
            hec_drops: 0,
            aal_drops: 0,
            fcs_drops: e.fcs_drops,
            link_lost: e.wire.frames_lost,
            link_corrupted: e.wire.frames_corrupted,
            rx_overflow_drops: 0,
            enobufs_drops: e.enobufs_drops,
        },
    }
}

/// Everything a repetition produced.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Per-iteration round-trip times.
    pub rtts: Vec<SimTime>,
    /// Average transmit breakdown (client side).
    pub tx: TxBreakdown,
    /// Average receive breakdown (client side).
    pub rx: RxBreakdown,
    /// Iterations that contributed to the breakdowns.
    pub breakdown_iters: usize,
    /// End-to-end payload verification failures.
    pub verify_failures: u64,
    /// Total application bytes moved.
    pub bytes_moved: u64,
    /// Client TCP counters.
    pub client_tcp: TcpStats,
    /// Server TCP counters.
    pub server_tcp: TcpStats,
    /// Client kernel counters.
    pub client_kernel: KernelStats,
    /// Server kernel counters.
    pub server_kernel: KernelStats,
    /// Client NIC counters.
    pub client_nic: NicStats,
    /// Server NIC counters.
    pub server_nic: NicStats,
    /// ENOBUFS allocation failures per host pool (client, server).
    pub enobufs: (u64, u64),
    /// Whether a connection was aborted by the retransmit limit: the
    /// run terminated early on a clean `ETIMEDOUT` instead of
    /// completing its iterations (the liveness guarantee under
    /// unsurvivable fault schedules).
    pub aborted: bool,
    /// Mbufs still outstanding per host pool (client, server) *after*
    /// the world was torn down. Non-zero means a leak: every code
    /// path — including every fault path — must return its buffers.
    /// Filled by [`Experiment::run`]; zero when the world outlives the
    /// result (the capture harness).
    pub mbufs_leaked: (u64, u64),
    /// Events executed.
    pub events: u64,
    /// Final simulation time.
    pub sim_time: SimTime,
    /// The observability mode the plan ran under (what
    /// [`RunResult::samples`] retains).
    pub obs: crate::obs::ObsMode,
}

impl RunResult {
    /// Mean round-trip time in microseconds.
    #[must_use]
    pub fn mean_rtt_us(&self) -> f64 {
        stats::mean_us(&self.rtts)
    }

    /// The pooled RTT samples in the plan's observability mode (see
    /// [`RunPlan::observe`]).
    #[must_use]
    pub fn samples(&self) -> crate::obs::Samples {
        let mut s = crate::obs::Samples::new(self.obs);
        s.extend_from(&self.rtts);
        s
    }

    /// A unified [`simcap::Recorder`] over the pooled RTTs, in the
    /// plan's observability mode.
    #[must_use]
    pub fn recorder(&self) -> simcap::Recorder {
        self.samples().recorder()
    }

    /// RTT standard deviation in microseconds.
    #[must_use]
    pub fn stddev_rtt_us(&self) -> f64 {
        stats::stddev_us(&self.rtts)
    }
}

/// Convenience: the experiment variants of §3 and §4 applied to a
/// base experiment.
impl Experiment {
    /// Disables header prediction (both the PCB cache and the fast
    /// path), as the §3 comparison kernel did.
    #[must_use]
    pub fn without_prediction(mut self) -> Self {
        self.cfg.header_prediction = false;
        self
    }

    /// Switches to the integrated copy-and-checksum kernel (§4.1.1).
    #[must_use]
    pub fn with_integrated_checksum(mut self) -> Self {
        self.cfg.checksum = ChecksumMode::Integrated;
        self
    }

    /// Eliminates the TCP checksum (§4.2).
    #[must_use]
    pub fn without_checksum(mut self) -> Self {
        self.cfg.checksum = ChecksumMode::None;
        self
    }

    /// Routes the path through an ATM switch with default parameters.
    #[must_use]
    pub fn through_switch(mut self, config: atm::SwitchConfig) -> Self {
        self.switch = Some(config);
        self
    }

    /// Attaches a faultkit schedule (burst loss, train shaping, RX
    /// contention, FIFO/pool limits), armed per host at build time.
    #[must_use]
    pub fn with_faults(mut self, faults: faultkit::FaultSchedule) -> Self {
        self.faults = Some(faults);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(net: NetKind, size: usize) -> Experiment {
        let mut e = Experiment::rpc(net, size);
        e.iterations = 30;
        e.warmup = 4;
        e
    }

    #[test]
    fn rpc_atm_runs_and_verifies() {
        let r = quick(NetKind::Atm, 200).plan().seed(1).execute();
        assert_eq!(r.rtts.len(), 30);
        assert_eq!(r.verify_failures, 0);
        assert!(r.mean_rtt_us() > 300.0, "rtt {}", r.mean_rtt_us());
        assert!(r.mean_rtt_us() < 5_000.0, "rtt {}", r.mean_rtt_us());
        assert!(r.breakdown_iters > 0);
    }

    #[test]
    fn rpc_ether_slower_than_atm() {
        let atm = quick(NetKind::Atm, 200).plan().seed(1).execute();
        let eth = quick(NetKind::Ether, 200).plan().seed(1).execute();
        assert_eq!(eth.verify_failures, 0);
        assert!(
            eth.mean_rtt_us() > atm.mean_rtt_us() * 1.3,
            "eth {} vs atm {}",
            eth.mean_rtt_us(),
            atm.mean_rtt_us()
        );
    }

    #[test]
    fn eight_kb_sends_two_segments() {
        let r = quick(NetKind::Atm, 8000).plan().seed(1).execute();
        assert_eq!(r.verify_failures, 0);
        // Two data segments per direction per iteration.
        let iters = 34; // 30 + 4 warmup.
        assert!(r.client_tcp.segs_out >= 2 * iters);
    }

    #[test]
    fn determinism() {
        let a = quick(NetKind::Atm, 500).plan().seed(7).execute();
        let b = quick(NetKind::Atm, 500).plan().seed(7).execute();
        assert_eq!(a.rtts, b.rtts);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn reps_pool_samples() {
        let mut e = quick(NetKind::Atm, 80);
        e.iterations = 10;
        let r = e.plan().reps(3).execute();
        assert_eq!(r.rtts.len(), 30);
    }

    #[test]
    fn switched_path_adds_latency_only() {
        let direct = quick(NetKind::Atm, 200).plan().seed(1).execute();
        let switched = quick(NetKind::Atm, 200)
            .through_switch(atm::SwitchConfig::default())
            .plan()
            .seed(1)
            .execute();
        assert_eq!(switched.verify_failures, 0);
        let delta = switched.mean_rtt_us() - direct.mean_rtt_us();
        // Two traversals (one per direction) of ~13 us each.
        assert!((15.0..60.0).contains(&delta), "delta {delta:.1}");
    }

    #[test]
    fn switch_fabric_corruption_caught_by_aal() {
        // §4.2.1 error source #1: the switch corrupts payloads; the
        // end-to-end AAL3/4 CRC-10 catches every instance even with
        // the TCP checksum eliminated.
        let mut e = quick(NetKind::Atm, 1400).without_checksum();
        e.switch = Some(atm::SwitchConfig {
            corrupt_prob: 0.002,
            ..atm::SwitchConfig::default()
        });
        let r = e.plan().seed(1).execute();
        assert_eq!(r.verify_failures, 0, "AAL shields the app");
        let caught = r.client_nic.aal_drops + r.server_nic.aal_drops;
        assert!(caught > 0, "some cells must have been corrupted: {r:?}");
    }

    #[test]
    fn udp_rpc_runs_and_is_faster_than_tcp() {
        let tcp = quick(NetKind::Atm, 200).plan().seed(1).execute();
        let mut u = Experiment::udp_rpc(NetKind::Atm, 200);
        u.iterations = 30;
        u.warmup = 4;
        let udp = u.plan().seed(1).execute();
        assert_eq!(udp.verify_failures, 0);
        // UDP skips mcopy, retransmission state, and the heavier TCP
        // input path: a few hundred µs per round trip.
        assert!(
            udp.mean_rtt_us() < tcp.mean_rtt_us() - 200.0,
            "udp {:.0} vs tcp {:.0}",
            udp.mean_rtt_us(),
            tcp.mean_rtt_us()
        );
        // But it is the same order: TCP is "viable for RPC" (§1).
        assert!(udp.mean_rtt_us() > tcp.mean_rtt_us() * 0.5);
    }

    #[test]
    fn bulk_transfer_completes() {
        let mut e = Experiment::bulk(NetKind::Atm, 4000, 50);
        e.warmup = 0;
        let r = e.plan().seed(1).execute();
        assert_eq!(r.verify_failures, 0);
        // The receiver of a unidirectional stream takes the fast
        // path; the sender's pure ACKs do too (§3).
        assert!(
            r.server_tcp.predict_data_hits > 0,
            "receiver fast path: {:?}",
            r.server_tcp
        );
    }
}
