//! Study-side sample containers: exact or sketched.
//!
//! Study cells used to pool every completion time into a `Vec` and
//! reduce it at report time — exact, but O(samples) memory per cell.
//! [`Samples`] keeps that exact path as the default (its reports stay
//! byte-identical to the historical ones) and adds an opt-in sketched
//! mode backed by [`simcap::Recorder`], whose memory is bounded and
//! whose merged quantiles are byte-deterministic at any worker count.
//!
//! The two modes intentionally share no float code: exact mode
//! reproduces the historical [`crate::stats`] summation order bit for
//! bit, sketch mode computes from the sketch's integer aggregates.

use simcap::{Quantiles, Recorder};
use simkit::SimTime;

use crate::stats;

/// Which retention mode a study runs its cells in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ObsMode {
    /// Pool every sample (the historical, golden-stable default).
    #[default]
    Exact,
    /// Retain only a mergeable quantile sketch per cell (`--sketch`):
    /// bounded memory, quantiles within the sketch's documented
    /// relative error.
    Sketch,
}

/// A cell's pooled samples: an exact `Vec` or a bounded sketch.
#[derive(Clone, Debug)]
pub enum Samples {
    /// Every sample, in observation order.
    Exact(Vec<SimTime>),
    /// A sketch-mode recorder (bounded memory).
    Sketched(Recorder),
}

impl Samples {
    /// An empty container in the given mode.
    #[must_use]
    pub fn new(mode: ObsMode) -> Self {
        match mode {
            ObsMode::Exact => Samples::Exact(Vec::new()),
            ObsMode::Sketch => Samples::Sketched(Recorder::sketched()),
        }
    }

    /// Records one sample.
    pub fn push(&mut self, t: SimTime) {
        match self {
            Samples::Exact(v) => v.push(t),
            Samples::Sketched(r) => r.observe(t),
        }
    }

    /// Records every sample in `ts`, in order.
    pub fn extend_from(&mut self, ts: &[SimTime]) {
        match self {
            Samples::Exact(v) => v.extend_from_slice(ts),
            Samples::Sketched(r) => r.observe_times(ts),
        }
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Samples::Exact(v) => v.len(),
            Samples::Sketched(r) => Quantiles::count(r),
        }
    }

    /// True when no sample has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The raw samples, `None` in sketch mode.
    #[must_use]
    pub fn raw(&self) -> Option<&[SimTime]> {
        match self {
            Samples::Exact(v) => Some(v),
            Samples::Sketched(_) => None,
        }
    }

    /// A recorder over these samples for quantile reduction: exact
    /// mode loads an exact-mode [`Recorder`] (identical numbers to
    /// the historical `rtt_dist_counted` path, including `i64::MAX`
    /// clamping with saturation counts), sketch mode clones the
    /// sketch.
    #[must_use]
    pub fn recorder(&self) -> Recorder {
        match self {
            Samples::Exact(v) => Recorder::from_times(v),
            Samples::Sketched(r) => r.clone(),
        }
    }

    /// Mean in µs. Exact mode reproduces [`stats::mean_us`] bit for
    /// bit (float sum in observation order); sketch mode divides the
    /// exact integer sum.
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        match self {
            Samples::Exact(v) => stats::mean_us(v),
            Samples::Sketched(r) => r.sketch().map_or(0.0, simcap::QuantileSketch::mean_us),
        }
    }

    /// Population standard deviation in µs ([`stats::stddev_us`]
    /// semantics; sketch mode uses the integer sum of squares).
    #[must_use]
    pub fn stddev_us(&self) -> f64 {
        match self {
            Samples::Exact(v) => stats::stddev_us(v),
            Samples::Sketched(r) => r.stddev_us(),
        }
    }

    /// Smallest sample in µs (0.0 when empty, matching
    /// [`stats::min_us`]).
    #[must_use]
    pub fn min_us(&self) -> f64 {
        match self {
            Samples::Exact(v) => stats::min_us(v),
            #[allow(clippy::cast_precision_loss)]
            Samples::Sketched(r) => Quantiles::min_ns(r).map_or(0.0, |ns| ns as f64 / 1000.0),
        }
    }

    /// Largest sample in µs (0.0 when empty, matching
    /// [`stats::max_us`]).
    #[must_use]
    pub fn max_us(&self) -> f64 {
        match self {
            Samples::Exact(v) => stats::max_us(v),
            #[allow(clippy::cast_precision_loss)]
            Samples::Sketched(r) => Quantiles::max_ns(r).map_or(0.0, |ns| ns as f64 / 1000.0),
        }
    }

    /// Bytes retained by this container — what the `--sketch` memory
    /// gate bounds.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        match self {
            Samples::Exact(v) => {
                std::mem::size_of::<Self>() + v.capacity() * std::mem::size_of::<SimTime>()
            }
            Samples::Sketched(r) => std::mem::size_of::<Self>() + r.memory_bytes(),
        }
    }
}

impl Default for Samples {
    fn default() -> Self {
        Samples::new(ObsMode::Exact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(ns: &[u64]) -> Vec<SimTime> {
        ns.iter().map(|&n| SimTime::from_ns(n)).collect()
    }

    #[test]
    fn exact_mode_matches_stats_helpers() {
        let ts = times(&[1_000, 2_000, 40_000, 3_000]);
        let mut s = Samples::new(ObsMode::Exact);
        s.extend_from(&ts);
        assert_eq!(s.len(), 4);
        assert_eq!(s.mean_us().to_bits(), stats::mean_us(&ts).to_bits());
        assert_eq!(s.stddev_us().to_bits(), stats::stddev_us(&ts).to_bits());
        assert_eq!(s.min_us().to_bits(), stats::min_us(&ts).to_bits());
        assert_eq!(s.max_us().to_bits(), stats::max_us(&ts).to_bits());
        assert_eq!(s.raw().unwrap(), &ts[..]);
    }

    #[test]
    fn sketch_mode_bounds_memory_and_tracks_aggregates() {
        let mut s = Samples::new(ObsMode::Sketch);
        for i in 0..50_000u64 {
            s.push(SimTime::from_ns(1_000 + (i * 7919) % 1_000_000));
        }
        assert_eq!(s.len(), 50_000);
        assert!(s.raw().is_none());
        assert!(s.memory_bytes() < 200 * 1024, "got {}", s.memory_bytes());
        assert!(s.mean_us() > 0.0);
        assert!(s.max_us() >= s.min_us());
    }
}
