//! Network interface bindings: the ATM (FORE TCA-100 + AAL3/4) and
//! Ethernet (LANCE) drivers that connect the kernel to the simulated
//! wire.
//!
//! The transmit side implements [`tcpip::TxDriver`]: it charges
//! driver CPU time, models the cut-through FIFO (ATM) or the
//! descriptor ring (Ethernet), applies the link fault processes, and
//! stages *deliveries* — per-datagram cell trains with arrival times
//! — that the world loop turns into events.
//!
//! The receive side is a plain function called from the arrival event
//! handler: it charges the hardware-interrupt costs, runs real
//! reassembly (AAL3/4 CRC-10 / Ethernet FCS over real bytes), builds
//! the mbuf chain (with stored partial checksums in the integrated
//! configuration), and hands the datagram to the kernel's IP queue.

use atm::{
    Aal34Reassembler, Aal34Segmenter, AtmSwitch, FiberLink, ForeTca100, LinkFault, SwitchOutcome,
    VcRoute,
};
use decstation::CostModel;
use ether::{EtherAddr, EtherFrame, EtherWire, LanceAdapter, ETHERTYPE_IP};
use mbuf::chain::ultrix_uses_clusters;
use mbuf::Chain;
use simkit::{CpuBand, SimTime};
use tcpip::{Kernel, Mark, SpanKind, SpanRecorder, TxDriver};

/// The default ATM MTU (RFC 1626 style, "close to 9K" per §1.2).
pub const ATM_MTU: usize = 9188;

/// The Ethernet MTU.
pub const ETHER_MTU: usize = 1500;

/// A staged delivery: one datagram's worth of link traffic headed to
/// the peer.
pub struct Delivery {
    /// Arrival time of the last cell/frame at the peer's adapter.
    pub arrival: SimTime,
    /// The payload as it survived the link.
    pub payload: DeliveryPayload,
}

/// What arrives at the peer.
pub enum DeliveryPayload {
    /// ATM: the cell train with per-cell arrival times and faults.
    Cells(Vec<(SimTime, LinkFault)>),
    /// Ethernet: the frame bytes as delivered.
    Frame(Vec<u8>),
}

/// The ATM interface of one host.
pub struct AtmNic {
    /// The FORE TCA-100 adapter.
    pub adapter: ForeTca100,
    /// AAL3/4 segmentation state.
    pub seg: Aal34Segmenter,
    /// AAL3/4 reassembly state.
    pub reasm: Aal34Reassembler,
    /// The outbound fiber.
    pub link: FiberLink,
    /// Driver cost constants (host-local copy).
    pub costs: CostModel,
    /// Staged deliveries for the world loop to schedule.
    pub staged: Vec<Delivery>,
    /// Cells discarded for HEC (header CRC) failures.
    pub hec_drops: u64,
    /// Datagrams dropped by AAL3/4 reassembly (CRC-10, sequence...).
    pub aal_drops: u64,
    /// Controller-corruption probability per datagram on receive —
    /// the §4.2.1 "second error source" (bit flips between controller
    /// and host memory, past all link CRCs).
    pub controller_corrupt_prob: f64,
    /// An ATM switch on this direction's path (the paper's testbed
    /// was switchless; §4.2.1 reasons about switched paths).
    pub switch: Option<AtmSwitch>,
    /// Datagram-level capture taps (`NicDmaTx`, `Wire`, `NicDmaRx`).
    /// Zero-cost unless armed; cell-level capture lives on the link.
    pub taps: simcap::TapSet,
    /// Train shaper (faultkit): reorder/duplicate/jitter applied to
    /// each staged cell train. `None` is transparent.
    pub shaper: Option<faultkit::TrainShaper>,
    /// RX drain contention (faultkit): stalls the FIFO drain so a
    /// small FIFO overruns. `None` never stalls.
    pub contention: Option<faultkit::ContentionProcess>,
    /// Received datagrams shed because the mbuf pool refused the
    /// allocation (`ENOBUFS` backpressure, not a crash).
    pub enobufs_drops: u64,
    rng: simkit::SimRng,
}

impl AtmNic {
    /// Builds an ATM interface over the given outbound link.
    #[must_use]
    pub fn new(link: FiberLink, costs: CostModel, vci: u16, seed: u64) -> Self {
        let cell_time = link.config.cell_time();
        AtmNic {
            adapter: ForeTca100::new(cell_time),
            seg: Aal34Segmenter::new(0, vci, 1),
            reasm: Aal34Reassembler::new(),
            link,
            costs,
            staged: Vec::new(),
            hec_drops: 0,
            aal_drops: 0,
            controller_corrupt_prob: 0.0,
            switch: None,
            taps: simcap::TapSet::off(),
            shaper: None,
            contention: None,
            enobufs_drops: 0,
            rng: simkit::SimRng::seed_stream(seed, 0xc0),
        }
    }

    /// Arms the ATM-relevant parts of a fault schedule on this
    /// interface: burst loss on the outbound fiber, the train shaper,
    /// RX drain contention, and the RX FIFO capacity override. The
    /// mbuf limit is pool-wide and armed by the experiment, not here.
    pub fn arm_faults(&mut self, faults: &faultkit::FaultSchedule, seed: u64) {
        if let Some(model) = faults.atm_loss {
            self.link.arm_burst_loss(model, seed);
        }
        if faults.train.any() {
            self.shaper = Some(faultkit::TrainShaper::new(faults.train, seed));
        }
        if let Some(cfg) = faults.rx_contention {
            self.contention = Some(faultkit::ContentionProcess::new(cfg, seed));
        }
        if let Some(cells) = faults.rx_fifo_cells {
            self.adapter.rx = atm::RxFifo::new(cells);
        }
        if let Some(flap) = faults.link_flap {
            self.link.arm_flap(flap);
        }
    }

    /// Routes this direction through an ATM switch: the VC used by
    /// the segmenter is installed port 0 → port 1 unchanged.
    pub fn insert_switch(&mut self, config: atm::SwitchConfig, vci: u16, seed: u64) {
        let mut sw = AtmSwitch::new(2, config, seed);
        sw.add_vc(
            0,
            0,
            vci,
            VcRoute {
                out_port: 1,
                out_vpi: 0,
                out_vci: vci,
            },
        );
        self.switch = Some(sw);
    }
}

impl TxDriver for AtmNic {
    fn mtu(&self) -> usize {
        ATM_MTU
    }

    /// §2.2: the TxDriver span runs "up to when the ATM adapter is
    /// signaled to send the last byte of data"; everything after that
    /// overlaps network transmission. With the cut-through FIFO the
    /// signal *is* the completion of the last programmed-I/O cell
    /// copy, which the FIFO may backpressure to wire speed.
    fn transmit(&mut self, now: SimTime, packet: &Chain, spans: &mut SpanRecorder) -> SimTime {
        let bytes = packet.to_vec();
        let cells = self.seg.segment(&bytes);
        let mut cursor = now + SimTime::from_us_f64(self.costs.atm_tx_fixed_us);
        let per_cell = SimTime::from_us_f64(self.costs.atm_tx_per_cell_us);
        let mut train = Vec::with_capacity(cells.len());
        let mut last_arrival = SimTime::ZERO;
        for cell in cells {
            let admit = self.adapter.tx.admit(cursor, per_cell);
            cursor = admit.copy_end;
            let (mut arrival, fault) = self.link.carry_at(admit.wire_exit, cell);
            // An intermediate switch adds fabric latency, output-queue
            // serialization, VC rewriting, and possibly fabric
            // corruption or drops.
            let fault = match (&mut self.switch, fault) {
                (None, f) => f,
                (Some(_), LinkFault::Lost) => LinkFault::Lost,
                (Some(sw), LinkFault::Clean(c) | LinkFault::Corrupted(c)) => {
                    let was_corrupt = sw.config.corrupt_prob > 0.0;
                    match sw.forward(0, arrival, &c) {
                        SwitchOutcome::Forwarded {
                            departure, cell, ..
                        } => {
                            arrival = departure + self.link.config.propagation;
                            if was_corrupt && cell.payload() != c.payload() {
                                LinkFault::Corrupted(cell)
                            } else {
                                LinkFault::Clean(cell)
                            }
                        }
                        SwitchOutcome::UnknownVc
                        | SwitchOutcome::QueueFull
                        | SwitchOutcome::Discarded => LinkFault::Lost,
                    }
                }
            };
            last_arrival = last_arrival.max(arrival);
            train.push((arrival, fault));
        }
        if let Some(shaper) = self.shaper.as_mut() {
            shaper.shape(&mut train);
            last_arrival = train
                .iter()
                .map(|&(t, _)| t)
                .fold(SimTime::ZERO, SimTime::max);
        }
        spans.span(SpanKind::TxDriver, now, cursor);
        spans.mark(Mark::TxSignalled, cursor);
        if self.taps.wants(simcap::TapPoint::NicDmaTx) {
            // The datagram leaves host memory when the adapter is
            // signalled to send its last byte — the same instant
            // `TxSignalled` marks.
            self.taps.record(simcap::TapPoint::NicDmaTx, cursor, bytes);
        }
        self.staged.push(Delivery {
            arrival: last_arrival,
            payload: DeliveryPayload::Cells(train),
        });
        cursor
    }
}

/// Receive-side hard-interrupt processing for one arrived ATM
/// datagram (called by the world loop at the last-cell arrival
/// event). Returns the softintr dispatch time if one must be
/// scheduled.
pub fn atm_receive(
    kernel: &mut Kernel,
    nic: &mut AtmNic,
    now: SimTime,
    train: &[(SimTime, LinkFault)],
) -> Option<SimTime> {
    kernel.spans.mark(Mark::SegmentArrived, now);
    // The driver drains the whole RX FIFO under one interrupt. Cells
    // that arrive while the service routine is still running (the
    // back-to-back-segment case) are picked up by the ongoing drain
    // loop rather than by a fresh interrupt: charge the fixed
    // interrupt cost only when the CPU's driver work had finished.
    let continuation = kernel.cpu.busy_until() > now;
    let start = now.max(kernel.cpu.busy_until());
    let mut datagrams = Vec::new();
    let mut cells_processed = 0usize;
    for (cell_at, fault) in train {
        let cell = match fault {
            LinkFault::Lost => continue,
            LinkFault::Clean(c) => c.clone(),
            LinkFault::Corrupted(c) => {
                if !c.header_ok() {
                    // The adapter discards cells with HEC failures.
                    nic.hec_drops += 1;
                    continue;
                }
                c.clone()
            }
        };
        // On overflow the arriving cell is gone (counted by the
        // adapter) and reassembly will notice the sequence gap — but
        // the service opportunity below still happens, so a full FIFO
        // clears as soon as the host stops stalling rather than
        // blackholing every later cell.
        let _ = nic.adapter.rx.arrive(cell);
        if nic
            .contention
            .as_mut()
            .is_some_and(faultkit::ContentionProcess::stalled_next)
        {
            // DMA/bus contention stalls the drain for this arrival:
            // the cell sits in the FIFO as backlog. If enough stalls
            // pile up, later arrivals overrun the FIFO above.
            continue;
        }
        // The driver drains the FIFO — the whole backlog — under this
        // interrupt.
        for cell in nic.adapter.rx.drain() {
            cells_processed += 1;
            match nic.reasm.push(&cell) {
                Ok(Some(dgram)) => {
                    if nic.taps.wants(simcap::TapPoint::Wire) {
                        // Datagram granularity on the wire: stamped at
                        // the arrival of its completing (EOM) cell.
                        nic.taps
                            .record(simcap::TapPoint::Wire, *cell_at, dgram.clone());
                    }
                    datagrams.push(dgram);
                }
                Ok(None) => {}
                // Orphan COM/EOM cells are trailing consequences of an
                // error already counted on the same datagram.
                Err(atm::Aal34Error::Orphan) => {}
                Err(_) => nic.aal_drops += 1,
            }
        }
    }
    // Driver CPU: fixed per interrupt plus per-cell SAR + copy work.
    let fixed = if continuation {
        0.0
    } else {
        nic.costs.atm_rx_fixed_us
    };
    let mut us = fixed + nic.costs.atm_rx_per_cell_us * cells_processed as f64;
    let integrated = matches!(kernel.cfg.checksum, tcpip::ChecksumMode::Integrated);
    if integrated {
        // §4.1.1: the combined copy-and-checksum runs in the driver's
        // device→mbuf copy; each payload byte costs the integration
        // delta, plus the fixed restructuring overhead.
        let bytes: usize = datagrams.iter().map(Vec::len).sum();
        us += nic.costs.integrated_delta_per_byte_us * bytes as f64
            + nic.costs.integrated_rx_fixed_us * datagrams.len() as f64;
    }
    let end = start + SimTime::from_us_f64(us);
    kernel.spans.span(SpanKind::RxDriver, start, end);
    kernel.cpu.occupy(start, end, CpuBand::HardIntr);

    let mut softintr_at = None;
    for mut dgram in datagrams {
        // The §4.2.1 controller-corruption fault: bits flipped while
        // moving data from controller to host memory — after every
        // link-level CRC has been checked.
        if nic.controller_corrupt_prob > 0.0 && nic.rng.chance(nic.controller_corrupt_prob) {
            let bit = nic.rng.next_below((dgram.len() * 8) as u32) as usize;
            dgram[bit / 8] ^= 1 << (bit % 8);
        }
        if nic.taps.wants(simcap::TapPoint::NicDmaRx) {
            // DMA into host memory is complete when the driver's
            // interrupt work ends and the datagram joins the IP queue.
            nic.taps
                .record(simcap::TapPoint::NicDmaRx, end, dgram.clone());
        }
        let use_clusters = ultrix_uses_clusters(dgram.len());
        let Ok((mut chain, _)) = Chain::try_from_user_data(&kernel.pool, &dgram, use_clusters)
        else {
            // ENOBUFS: the pool is at its limit, so the driver sheds
            // the datagram instead of allocating past it — BSD's
            // receive-path backpressure. TCP retransmits.
            nic.enobufs_drops += 1;
            continue;
        };
        if integrated {
            chain.store_partial_checksums();
        }
        if let Some(at) = kernel.enqueue_ip(end, chain) {
            softintr_at = Some(softintr_at.map_or(at, |t: SimTime| t.min(at)));
        }
    }
    if continuation {
        // Datagrams completed by an earlier interrupt of this drain
        // are handed to IP together with ours, at the end.
        kernel.retime_ipq(end);
    }
    softintr_at
}

/// The Ethernet interface of one host.
pub struct EtherNic {
    /// The LANCE controller.
    pub lance: LanceAdapter,
    /// The outbound wire.
    pub wire: EtherWire,
    /// Source MAC.
    pub addr: EtherAddr,
    /// Destination MAC (two-host segment).
    pub peer: EtherAddr,
    /// Driver cost constants.
    pub costs: CostModel,
    /// Staged deliveries.
    pub staged: Vec<Delivery>,
    /// Frames dropped for FCS errors.
    pub fcs_drops: u64,
    /// Controller-corruption probability per frame on receive.
    pub controller_corrupt_prob: f64,
    /// Gateway-injection probability per frame on transmit: the
    /// §4.2.1 third error source — "erroneous data injected into the
    /// network through external gateways or bridges". The corruption
    /// happens *before* framing, so the local FCS is computed over
    /// already-bad bytes and validates; only the end-to-end TCP
    /// checksum can catch it.
    pub gateway_corrupt_prob: f64,
    /// Datagram-level capture taps (`NicDmaTx`, `Wire`, `NicDmaRx`).
    /// Zero-cost unless armed; frame-level capture lives on the wire.
    pub taps: simcap::TapSet,
    /// Received frames shed because the mbuf pool refused the
    /// allocation (`ENOBUFS` backpressure, not a crash).
    pub enobufs_drops: u64,
    rng: simkit::SimRng,
}

impl EtherNic {
    /// Builds an Ethernet interface over the given outbound wire.
    #[must_use]
    pub fn new(wire: EtherWire, costs: CostModel, host_id: u8, seed: u64) -> Self {
        EtherNic {
            lance: LanceAdapter::new(),
            wire,
            addr: EtherAddr::from_host_id(host_id),
            peer: EtherAddr::from_host_id(host_id ^ 1),
            costs,
            staged: Vec::new(),
            fcs_drops: 0,
            controller_corrupt_prob: 0.0,
            gateway_corrupt_prob: 0.0,
            taps: simcap::TapSet::off(),
            enobufs_drops: 0,
            rng: simkit::SimRng::seed_stream(seed, 0xe1),
        }
    }

    /// Arms the Ethernet-relevant parts of a fault schedule: burst
    /// frame loss on the outbound wire.
    pub fn arm_faults(&mut self, faults: &faultkit::FaultSchedule, seed: u64) {
        if let Some(model) = faults.ether_loss {
            self.wire.arm_burst_loss(model, seed);
        }
    }
}

impl TxDriver for EtherNic {
    fn mtu(&self) -> usize {
        ETHER_MTU
    }

    fn transmit(&mut self, now: SimTime, packet: &Chain, spans: &mut SpanRecorder) -> SimTime {
        let mut payload = packet.to_vec();
        debug_assert!(payload.len() <= ETHER_MTU, "TCP MSS keeps IP under the MTU");
        if self.gateway_corrupt_prob > 0.0 && self.rng.chance(self.gateway_corrupt_prob) {
            // Corrupt a payload bit before framing: the FCS will be
            // computed over the corrupted bytes and verify fine.
            let bit = 40 * 8
                + self
                    .rng
                    .next_below(((payload.len() - 40) * 8).max(8) as u32)
                    as usize;
            let bit = bit.min(payload.len() * 8 - 1);
            payload[bit / 8] ^= 1 << (bit % 8);
        }
        let frame = EtherFrame {
            dst: self.peer,
            src: self.addr,
            ethertype: ETHERTYPE_IP,
            payload,
        };
        let wire_bytes = frame.encode();
        // Driver work: descriptor + copy into the DMA buffer.
        let cost = SimTime::from_us_f64(
            self.costs.eth_tx_fixed_us + self.costs.eth_tx_per_byte_us * wire_bytes.len() as f64,
        );
        let granted = self.lance.claim_tx_slot(now);
        let cursor = granted + cost;
        if self.taps.wants(simcap::TapPoint::NicDmaTx) {
            // The IP datagram as handed to the LANCE, stamped when the
            // copy into the DMA buffer completes (`TxSignalled`).
            self.taps
                .record(simcap::TapPoint::NicDmaTx, cursor, frame.payload.clone());
        }
        let (delivered_at, delivered) = self.wire.carry(cursor, wire_bytes);
        self.lance.tx_complete(delivered_at);
        spans.span(SpanKind::TxDriver, now, cursor);
        spans.mark(Mark::TxSignalled, cursor);
        if let Some(bytes) = delivered {
            self.staged.push(Delivery {
                arrival: delivered_at,
                payload: DeliveryPayload::Frame(bytes),
            });
        }
        // A burst-lost frame stages no delivery: the wire time is
        // consumed but nothing arrives; TCP's retransmit timer is the
        // recovery path.
        cursor
    }
}

/// Receive-side processing for one Ethernet frame.
pub fn ether_receive(
    kernel: &mut Kernel,
    nic: &mut EtherNic,
    now: SimTime,
    wire_bytes: &[u8],
) -> Option<SimTime> {
    kernel.spans.mark(Mark::SegmentArrived, now);
    if nic.taps.wants(simcap::TapPoint::Wire) {
        // The frame exactly as the wire delivered it (FCS included,
        // corruption applied), stamped at arrival.
        nic.taps
            .record(simcap::TapPoint::Wire, now, wire_bytes.to_vec());
    }
    nic.lance.rx_packet();
    let start = now.max(kernel.cpu.busy_until());
    let mut us = nic.costs.eth_rx_fixed_us + nic.costs.eth_rx_per_byte_us * wire_bytes.len() as f64;

    // Real FCS verification over the delivered bytes.
    let frame = match EtherFrame::decode(wire_bytes, None) {
        Ok(f) => Some(f),
        Err(_) => {
            nic.fcs_drops += 1;
            None
        }
    };
    let integrated = matches!(kernel.cfg.checksum, tcpip::ChecksumMode::Integrated);
    if integrated {
        if let Some(f) = &frame {
            us += nic.costs.integrated_delta_per_byte_us * f.payload.len() as f64
                + nic.costs.integrated_rx_fixed_us;
        }
    }
    let end = start + SimTime::from_us_f64(us);
    kernel.spans.span(SpanKind::RxDriver, start, end);
    kernel.cpu.occupy(start, end, CpuBand::HardIntr);

    let frame = frame?;
    let mut payload = frame.payload;
    if nic.controller_corrupt_prob > 0.0 && nic.rng.chance(nic.controller_corrupt_prob) {
        let bit = nic.rng.next_below((payload.len() * 8) as u32) as usize;
        payload[bit / 8] ^= 1 << (bit % 8);
    }
    if nic.taps.wants(simcap::TapPoint::NicDmaRx) {
        // FCS-verified IP datagram as DMAed into host memory, stamped
        // when the driver's interrupt work ends.
        nic.taps
            .record(simcap::TapPoint::NicDmaRx, end, payload.clone());
    }
    let use_clusters = ultrix_uses_clusters(payload.len());
    let Ok((mut chain, _)) = Chain::try_from_user_data(&kernel.pool, &payload, use_clusters) else {
        // ENOBUFS: shed the frame rather than allocate past the pool
        // limit; TCP retransmits.
        nic.enobufs_drops += 1;
        return None;
    };
    if integrated {
        chain.store_partial_checksums();
    }
    kernel.enqueue_ip(end, chain)
}

/// A host's network interface.
#[allow(clippy::large_enum_variant)] // Two long-lived instances per world.
pub enum Nic {
    /// FORE TCA-100 over TAXI fiber.
    Atm(AtmNic),
    /// LANCE over 10 Mbit/s Ethernet.
    Ether(EtherNic),
}

impl Nic {
    /// Interface MTU.
    #[must_use]
    pub fn mtu(&self) -> usize {
        match self {
            Nic::Atm(_) => ATM_MTU,
            Nic::Ether(_) => ETHER_MTU,
        }
    }

    /// Drains the staged deliveries.
    pub fn take_staged(&mut self) -> Vec<Delivery> {
        match self {
            Nic::Atm(a) => std::mem::take(&mut a.staged),
            Nic::Ether(e) => std::mem::take(&mut e.staged),
        }
    }

    /// Configures and arms every NIC- and medium-level capture tap
    /// (datagram taps on the NIC, raw cells/frames on the link).
    /// `flight_k` selects flight-recorder rings of that depth instead
    /// of unbounded full capture.
    pub fn arm_taps_mode(&mut self, flight_k: Option<usize>) {
        let fresh = || match flight_k {
            Some(k) => simcap::TapSet::flight(k),
            None => simcap::TapSet::all(),
        };
        match self {
            Nic::Atm(a) => {
                a.taps = fresh();
                a.taps.arm();
                a.link.taps = fresh();
                a.link.taps.arm();
            }
            Nic::Ether(e) => {
                e.taps = fresh();
                e.taps.arm();
                e.wire.taps = fresh();
                e.wire.taps.arm();
            }
        }
    }

    /// [`Nic::arm_taps_mode`] in full-capture mode.
    pub fn arm_taps(&mut self) {
        self.arm_taps_mode(None);
    }

    /// Drains every frame captured by this NIC and its medium, merged
    /// in timestamp order (stable within equal timestamps).
    pub fn take_taps(&mut self) -> Vec<simcap::CapturedFrame> {
        let (mut frames, medium) = match self {
            Nic::Atm(a) => (a.taps.take(), a.link.taps.take()),
            Nic::Ether(e) => (e.taps.take(), e.wire.taps.take()),
        };
        frames.extend(medium);
        frames.sort_by_key(|f| f.at);
        frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm::LinkConfig;
    use decstation::CostModel;
    use ether::WireConfig;
    use tcpip::StackConfig;

    fn kernel() -> Kernel {
        Kernel::new(StackConfig::default(), CostModel::calibrated())
    }

    fn atm_nic(seed: u64) -> AtmNic {
        AtmNic::new(
            FiberLink::new(LinkConfig::default(), seed),
            CostModel::calibrated(),
            42,
            seed,
        )
    }

    #[test]
    fn atm_transmit_stages_one_delivery_per_datagram() {
        let mut k = kernel();
        let mut nic = atm_nic(1);
        let (chain, _) = Chain::from_user_data(&k.pool, &vec![7u8; 540], false);
        let done = nic.transmit(SimTime::ZERO, &chain, &mut k.spans);
        assert!(done > SimTime::ZERO);
        assert_eq!(nic.staged.len(), 1);
        let d = &nic.staged[0];
        // 540 + 8 CPCS = 548 -> 13 cells.
        match &d.payload {
            DeliveryPayload::Cells(train) => assert_eq!(train.len(), 13),
            DeliveryPayload::Frame(_) => panic!("wrong payload kind"),
        }
        assert!(d.arrival > done, "wire lags the host for small packets");
    }

    #[test]
    fn atm_large_packet_is_wire_limited() {
        let mut k = kernel();
        let mut nic = atm_nic(2);
        let (chain, _) = Chain::from_user_data(&k.pool, &vec![7u8; 8040], true);
        let t0 = SimTime::ZERO;
        let done = nic.transmit(t0, &chain, &mut k.spans);
        // 8048 CPCS bytes -> 183 cells; the 36-cell FIFO forces the
        // host to pace at wire speed for the tail: > 147 cell times.
        let cell_time = LinkConfig::default().cell_time();
        assert!(done > cell_time * 140, "done {done}");
        assert!(nic.adapter.tx.stall_time > SimTime::ZERO);
    }

    #[test]
    fn atm_roundtrip_through_receive() {
        let mut ka = kernel();
        let mut kb = kernel();
        let mut na = atm_nic(3);
        let mut nb = atm_nic(4);
        // Use na to send, nb to receive.
        let payload: Vec<u8> = (0..777).map(|i| (i % 253) as u8).collect();
        let (chain, _) = Chain::from_user_data(&ka.pool, &payload, false);
        let _ = na.transmit(SimTime::ZERO, &chain, &mut ka.spans);
        let d = na.staged.pop().unwrap();
        let DeliveryPayload::Cells(train) = d.payload else {
            panic!("cells expected")
        };
        let soft = atm_receive(&mut kb, &mut nb, d.arrival, &train);
        assert!(soft.is_some(), "datagram enqueued raises softintr");
        assert_eq!(kb.stats.ipq_enqueued, 1);
        assert_eq!(nb.aal_drops, 0);
        assert_eq!(nb.reasm.stats().datagrams_ok, 1);
    }

    #[test]
    fn ether_roundtrip_with_fcs() {
        let mut ka = kernel();
        let mut kb = kernel();
        let mut na = EtherNic::new(
            EtherWire::new(WireConfig::default(), 5),
            CostModel::calibrated(),
            0,
            5,
        );
        let mut nb = EtherNic::new(
            EtherWire::new(WireConfig::default(), 6),
            CostModel::calibrated(),
            1,
            6,
        );
        let payload: Vec<u8> = (0..540).map(|i| (i % 199) as u8).collect();
        let (chain, _) = Chain::from_user_data(&ka.pool, &payload, false);
        let done = na.transmit(SimTime::ZERO, &chain, &mut ka.spans);
        assert!(done >= SimTime::from_us(255));
        let d = na.staged.pop().unwrap();
        let DeliveryPayload::Frame(bytes) = d.payload else {
            panic!("frame expected")
        };
        let soft = ether_receive(&mut kb, &mut nb, d.arrival, &bytes);
        assert!(soft.is_some());
        assert_eq!(nb.fcs_drops, 0);
        assert_eq!(kb.stats.ipq_enqueued, 1);
    }

    #[test]
    fn corrupted_frame_dropped_by_fcs() {
        let mut ka = kernel();
        let mut kb = kernel();
        let mut na = EtherNic::new(
            EtherWire::new(WireConfig::default(), 7),
            CostModel::calibrated(),
            0,
            7,
        );
        let mut nb = EtherNic::new(
            EtherWire::new(WireConfig::default(), 8),
            CostModel::calibrated(),
            1,
            8,
        );
        let (chain, _) = Chain::from_user_data(&ka.pool, &[1u8; 100], false);
        let _ = na.transmit(SimTime::ZERO, &chain, &mut ka.spans);
        let d = na.staged.pop().unwrap();
        let DeliveryPayload::Frame(mut bytes) = d.payload else {
            panic!("frame expected")
        };
        bytes[30] ^= 0x08;
        let soft = ether_receive(&mut kb, &mut nb, d.arrival, &bytes);
        assert!(soft.is_none(), "dropped frames never reach IP");
        assert_eq!(nb.fcs_drops, 1);
        assert_eq!(kb.stats.ipq_enqueued, 0);
    }
}
