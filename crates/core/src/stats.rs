//! Summary statistics over measured quantities.

use simkit::SimTime;

/// Mean of a slice of times, in microseconds.
#[must_use]
pub fn mean_us(samples: &[SimTime]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(|t| t.as_us_f64()).sum::<f64>() / samples.len() as f64
}

/// Population standard deviation, in microseconds.
#[must_use]
pub fn stddev_us(samples: &[SimTime]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean_us(samples);
    let var = samples
        .iter()
        .map(|t| {
            let d = t.as_us_f64() - m;
            d * d
        })
        .sum::<f64>()
        / samples.len() as f64;
    var.sqrt()
}

/// Minimum, in microseconds.
#[must_use]
pub fn min_us(samples: &[SimTime]) -> f64 {
    samples.iter().min().map_or(0.0, |t| t.as_us_f64())
}

/// Maximum, in microseconds.
#[must_use]
pub fn max_us(samples: &[SimTime]) -> f64 {
    samples.iter().max().map_or(0.0, |t| t.as_us_f64())
}

/// Percentage decrease from `from` to `to`, the paper's comparison
/// metric ("Percentage Decrease (%)" in Tables 1, 4, 6, 7).
///
/// A zero baseline has no meaningful decrease: the result is
/// [`f64::NAN`], which the table renderers print as `n/a` and the
/// JSON reports as `null`. (Returning `0.0` here would disguise a
/// broken baseline as "no change" in the paper-claims tables.)
#[must_use]
pub fn pct_decrease(from: f64, to: f64) -> f64 {
    if from == 0.0 {
        return f64::NAN;
    }
    (1.0 - to / from) * 100.0
}

/// Relative error of `got` against a reference `want`, in percent.
///
/// A zero reference admits no relative error: the result is
/// [`f64::NAN`] (rendered `n/a` / `null`), not a masking `0.0`.
#[must_use]
pub fn pct_error(got: f64, want: f64) -> f64 {
    if want == 0.0 {
        return f64::NAN;
    }
    (got - want) / want * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: &[u64]) -> Vec<SimTime> {
        v.iter().map(|&x| SimTime::from_us(x)).collect()
    }

    #[test]
    fn mean_and_stddev() {
        let s = us(&[10, 20, 30]);
        assert!((mean_us(&s) - 20.0).abs() < 1e-9);
        assert!((stddev_us(&s) - 8.1649).abs() < 1e-3);
        assert_eq!(mean_us(&[]), 0.0);
        assert_eq!(stddev_us(&us(&[5])), 0.0);
    }

    #[test]
    fn min_max() {
        let s = us(&[7, 3, 9]);
        assert_eq!(min_us(&s), 3.0);
        assert_eq!(max_us(&s), 9.0);
    }

    #[test]
    fn percentage_metrics() {
        // Table 1's 4-byte row: 1940 -> 1021 is a 47% decrease.
        let d = pct_decrease(1940.0, 1021.0);
        assert!((d - 47.4).abs() < 0.1, "{d}");
        assert!((pct_error(110.0, 100.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_baselines_yield_nan_not_a_masking_zero() {
        // A broken (zero) baseline must not read as "no change".
        assert!(pct_decrease(0.0, 5.0).is_nan());
        assert!(pct_decrease(0.0, 0.0).is_nan());
        assert!(pct_error(5.0, 0.0).is_nan());
        assert!(pct_error(0.0, 0.0).is_nan());
        // Non-zero baselines are unaffected.
        assert_eq!(pct_decrease(10.0, 10.0), 0.0);
        assert_eq!(pct_error(10.0, 10.0), 0.0);
    }
}
