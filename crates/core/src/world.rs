//! The two-host discrete-event world.
//!
//! A [`World`] is two DECstations — client and server — joined by a
//! pair of unidirectional links (ATM fiber or Ethernet). Events move
//! datagrams between them:
//!
//! 1. an **app step** runs a benchmark process until it blocks
//!    (issuing writes and reads through the kernel, which charges
//!    CPU time and stages link deliveries);
//! 2. a **datagram arrival** runs the receiving host's hardware
//!    interrupt (driver + reassembly) and may schedule
//! 3. a **software interrupt** (`ipintr`: IP + TCP input), which may
//!    wake the blocked process, scheduling another app step;
//! 4. **TCP timers** (delayed ACK, retransmit) fire as events.
//!
//! Each host's CPU serializes all of its work through the busy-until
//! timeline in [`simkit::Cpu`], which is what turns the paper's IPQ
//! and Wakeup rows — and the transmit/receive overlap of the 8000-
//! byte case — into emergent measurements rather than inputs.

use simkit::{Scheduler, Sim, SimTime, TimerId};
use tcpip::config::tcp_mss;
use tcpip::{Kernel, Mark, PcbKey, SockId, StackConfig};

use crate::app::{App, AppState, Role};
use crate::nic::{atm_receive, ether_receive, Delivery, DeliveryPayload, Nic};

/// One simulated host.
pub struct Host {
    /// The kernel (stack + CPU + spans).
    pub kernel: Kernel,
    /// The network interface.
    pub nic: Nic,
    /// The benchmark process.
    pub app: App,
    /// The process's socket.
    pub sock: SockId,
    /// Earliest scheduled TCP timer event, to avoid duplicates.
    timer_at: Option<SimTime>,
    /// Permanent engine timer slot for this host's TCP timer,
    /// registered by [`run_world`] so re-arming allocates nothing.
    timer: Option<TimerId>,
}

/// The simulation world: exactly two hosts, index 0 (client) and 1
/// (server).
pub struct World {
    /// The hosts.
    pub hosts: Vec<Host>,
    /// Set when measurement (post-warm-up) began.
    pub measuring: bool,
    /// When true, every capture tap (kernel, NIC, medium) is armed at
    /// measurement start, alongside the span recorders.
    pub capture: bool,
    /// When set alongside `capture`, kernel taps run as a flight
    /// recorder retaining only the last K frames per tap point;
    /// triggers ([`simcap::TriggerReason`]) freeze pcapng-ready
    /// snapshots instead of the run retaining everything.
    pub flight_k: Option<usize>,
}

// The parallel sweep runner builds and runs one world per cell inside
// a worker thread; the world (not the Sim — event closures stay
// thread-local) must be able to cross threads.
const _: () = simkit::assert_world_send::<World>();

impl World {
    /// Builds a world over pre-built NICs and apps. The connection is
    /// established administratively with BSD MSS rules; sequence
    /// state is aligned across the pair.
    #[must_use]
    pub fn new(
        cfg: StackConfig,
        costs: decstation::CostModel,
        nics: [Nic; 2],
        apps: [App; 2],
    ) -> World {
        let mtu = nics[0].mtu();
        let mss = tcp_mss(mtu, cfg.mss_one_cluster);
        let mut kernels = [Kernel::new(cfg, costs.clone()), Kernel::new(cfg, costs)];
        // UDP workloads bind datagram sockets instead of a connection.
        if apps[0].role == Role::UdpRpcClient {
            let sock_c = kernels[0].udp_bind([10, 0, 0, 1], 1055, true);
            let sock_s = kernels[1].udp_bind([10, 0, 0, 2], 4242, true);
            let [kc, ks] = kernels;
            let [nic_c, nic_s] = nics;
            let [app_c, app_s] = apps;
            return World {
                hosts: vec![
                    Host {
                        kernel: kc,
                        nic: nic_c,
                        app: app_c,
                        sock: sock_c,
                        timer_at: None,
                        timer: None,
                    },
                    Host {
                        kernel: ks,
                        nic: nic_s,
                        app: app_s,
                        sock: sock_s,
                        timer_at: None,
                        timer: None,
                    },
                ],
                measuring: false,
                capture: false,
                flight_k: None,
            };
        }
        let key_c = PcbKey {
            laddr: [10, 0, 0, 1],
            lport: 1055,
            faddr: [10, 0, 0, 2],
            fport: 4242,
        };
        let key_s = PcbKey {
            laddr: [10, 0, 0, 2],
            lport: 4242,
            faddr: [10, 0, 0, 1],
            fport: 1055,
        };
        let sock_c = kernels[0].create_connection(key_c, mss);
        let sock_s = kernels[1].create_connection(key_s, mss);
        // Align administrative sequence numbers: each side's rcv_nxt
        // must equal the peer's snd_nxt.
        let (c_snd, c_rcv) = {
            let t = kernels[0].tcb(sock_c);
            (t.snd_nxt, t.rcv_nxt)
        };
        {
            let t = kernels[1].tcb_mut(sock_s);
            t.rcv_nxt = c_snd;
            t.snd_una = c_rcv;
            t.snd_nxt = c_rcv;
            t.snd_max = c_rcv;
        }
        let [kc, ks] = kernels;
        let [nic_c, nic_s] = nics;
        let [app_c, app_s] = apps;
        World {
            hosts: vec![
                Host {
                    kernel: kc,
                    nic: nic_c,
                    app: app_c,
                    sock: sock_c,
                    timer_at: None,
                    timer: None,
                },
                Host {
                    kernel: ks,
                    nic: nic_s,
                    app: app_s,
                    sock: sock_s,
                    timer_at: None,
                    timer: None,
                },
            ],
            measuring: false,
            capture: false,
            flight_k: None,
        }
    }

    /// Whether every process has finished.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.hosts.iter().all(|h| h.app.finished())
    }
}

/// Runs a world to completion; returns the simulation for inspection.
///
/// # Panics
///
/// Panics if the event queue drains while a process is still waiting
/// — a protocol deadlock, which the tests treat as a bug.
pub fn run_world(world: World) -> Sim<World> {
    let mut sim = prepare_sim(world);
    sim.run();
    assert!(
        sim.world.finished(),
        "deadlock: event queue empty, apps not finished \
         (client {:?} iter {}, server {:?} iter {})",
        sim.world.hosts[0].app.state,
        sim.world.hosts[0].app.done_count,
        sim.world.hosts[1].app.state,
        sim.world.hosts[1].app.done_count,
    );
    sim
}

/// [`run_world`] without the completion assertion (debug tooling).
#[must_use]
pub fn run_world_no_assert(world: World) -> Sim<World> {
    let mut sim = prepare_sim(world);
    sim.run();
    sim
}

/// Builds the simulation over a world: registers each host's
/// permanent TCP-timer slot and schedules the two app-start events.
///
/// Both start events and all hot-path follow-ups ("softintr",
/// "app-wakeup", "abort-wakeup", "tcp-timer") are raw events — a
/// function pointer plus the host index — so the steady-state event
/// loop performs no per-event allocation.
fn prepare_sim(world: World) -> Sim<World> {
    let mut sim = Sim::new(world);
    for h in 0..sim.world.hosts.len() {
        let id = sim.register_timer("tcp-timer", on_timer_raw, h as u64);
        sim.world.hosts[h].timer = Some(id);
    }
    sim.schedule_raw(SimTime::ZERO, "app-start-client", app_step_raw, 0);
    sim.schedule_raw(SimTime::ZERO, "app-start-server", app_step_raw, 1);
    sim
}

/// [`run_world`] with an engine observer installed for the whole run:
/// `obs(world, event_time, event_label)` fires after every executed
/// event. Observation is read-only, so results are identical to
/// [`run_world`] for the same world — this is how the oracle's
/// runtime invariant checkers watch a simulation without perturbing
/// it.
///
/// # Panics
///
/// Panics on deadlock, exactly like [`run_world`].
pub fn run_world_observed(world: World, obs: simkit::ObserverFn<World>) -> Sim<World> {
    let mut sim = prepare_sim(world);
    sim.set_observer(obs);
    sim.run();
    assert!(
        sim.world.finished(),
        "deadlock: event queue empty, apps not finished \
         (client {:?} iter {}, server {:?} iter {})",
        sim.world.hosts[0].app.state,
        sim.world.hosts[0].app.done_count,
        sim.world.hosts[1].app.state,
        sim.world.hosts[1].app.done_count,
    );
    sim
}

/// Schedules staged deliveries and (re)arms the TCP timer after any
/// kernel interaction on host `h`.
fn flush_host(w: &mut World, s: &mut Scheduler<World>, h: usize) {
    let peer = 1 - h;
    for Delivery { arrival, payload } in w.hosts[h].nic.take_staged() {
        match payload {
            DeliveryPayload::Cells(train) => {
                s.schedule_at(arrival.max(s.now()), "atm-arrival", move |w, s| {
                    on_atm_arrival(w, s, peer, train);
                });
            }
            DeliveryPayload::Frame(bytes) => {
                s.schedule_at(arrival.max(s.now()), "eth-arrival", move |w, s| {
                    on_eth_arrival(w, s, peer, bytes);
                });
            }
        }
    }
    if let Some(dl) = w.hosts[h].kernel.next_deadline() {
        let stale = w.hosts[h].timer_at.is_none_or(|t| dl < t || t <= s.now());
        if stale {
            w.hosts[h].timer_at = Some(dl);
            let at = dl.max(s.now());
            match w.hosts[h].timer {
                // The permanent slot re-arms with zero allocation.
                Some(id) => s.arm_timer(id, at),
                // Worlds run outside `run_world` (no slot registered)
                // still work via a boxed event.
                None => s.schedule_at(at, "tcp-timer", move |w, s| on_timer(w, s, h)),
            }
        }
    }
}

/// Raw-event trampolines: the engine hot path stores these as plain
/// function pointers with the host index as payload, so scheduling
/// them allocates nothing.
fn app_step_raw(w: &mut World, s: &mut Scheduler<World>, h: u64) {
    app_step(w, s, h as usize);
}

fn on_softintr_raw(w: &mut World, s: &mut Scheduler<World>, h: u64) {
    on_softintr(w, s, h as usize);
}

fn on_timer_raw(w: &mut World, s: &mut Scheduler<World>, h: u64) {
    on_timer(w, s, h as usize);
}

/// ATM datagram arrival: the hardware interrupt.
fn on_atm_arrival(
    w: &mut World,
    s: &mut Scheduler<World>,
    h: usize,
    train: Vec<(SimTime, atm::LinkFault)>,
) {
    let host = &mut w.hosts[h];
    let Nic::Atm(nic) = &mut host.nic else {
        panic!("ATM delivery to a non-ATM host");
    };
    if let Some(at) = atm_receive(&mut host.kernel, nic, s.now(), &train) {
        s.schedule_raw_at(at, "softintr", on_softintr_raw, h as u64);
    }
}

/// Ethernet frame arrival: the hardware interrupt.
fn on_eth_arrival(w: &mut World, s: &mut Scheduler<World>, h: usize, bytes: Vec<u8>) {
    let host = &mut w.hosts[h];
    let Nic::Ether(nic) = &mut host.nic else {
        panic!("Ethernet delivery to a non-Ethernet host");
    };
    if let Some(at) = ether_receive(&mut host.kernel, nic, s.now(), &bytes) {
        s.schedule_raw_at(at, "softintr", on_softintr_raw, h as u64);
    }
}

/// The software interrupt: IP/TCP input, wakeups, responses.
fn on_softintr(w: &mut World, s: &mut Scheduler<World>, h: usize) {
    let host = &mut w.hosts[h];
    let out = match &mut host.nic {
        Nic::Atm(nic) => host.kernel.ipintr(s.now(), nic),
        Nic::Ether(nic) => host.kernel.ipintr(s.now(), nic),
    };
    flush_host(w, s, h);
    for (_, run_at) in out.wakeups.iter().chain(out.writer_wakeups.iter()) {
        let at = (*run_at).max(s.now());
        s.schedule_raw_at(at, "app-wakeup", app_step_raw, h as u64);
    }
}

/// A TCP timer event.
fn on_timer(w: &mut World, s: &mut Scheduler<World>, h: usize) {
    w.hosts[h].timer_at = None;
    let host = &mut w.hosts[h];
    let _ = match &mut host.nic {
        Nic::Atm(nic) => host.kernel.check_timers(s.now(), nic),
        Nic::Ether(nic) => host.kernel.check_timers(s.now(), nic),
    };
    flush_host(w, s, h);
    // A timer may have aborted a connection (retransmit limit) and
    // woken the blocked process so it can observe the error: without
    // this wakeup an aborted run would hang instead of terminating.
    for (_sock, run_at) in w.hosts[h].kernel.take_timer_wakeups() {
        let at = run_at.max(s.now());
        s.schedule_raw_at(at, "abort-wakeup", app_step_raw, h as u64);
    }
}

/// Runs a process until it blocks or finishes.
fn app_step(w: &mut World, s: &mut Scheduler<World>, h: usize) {
    app_step_inner(w, s, h);
    // When the RPC client finishes, the benchmark is over: the echo
    // server (which would otherwise block in read forever)
    // terminates too.
    if w.hosts[0].app.state == AppState::Done
        && matches!(w.hosts[1].app.role, Role::RpcServer | Role::UdpRpcServer)
    {
        w.hosts[1].app.state = AppState::Done;
    }
    // Liveness under faults: an aborted connection can make no further
    // progress on either side (a real stack would RST the peer), so
    // the whole benchmark terminates rather than leaving the peer
    // blocked forever.
    if w.hosts.iter().any(|h| h.app.aborted) {
        for host in &mut w.hosts {
            host.app.state = AppState::Done;
        }
    }
}

fn app_step_inner(w: &mut World, s: &mut Scheduler<World>, h: usize) {
    let mut now = s.now();
    loop {
        // Borrow checker dance: each arm re-borrows the host.
        let state = w.hosts[h].app.state;
        match state {
            AppState::Done => break,
            AppState::WantWrite | AppState::BlockedInWrite(_) => {
                let host = &mut w.hosts[h];
                if host.app.done_count >= host.app.total_iterations() {
                    host.app.state = AppState::Done;
                    break;
                }
                // Enable measurement once warm-up completes (client
                // drives this for both hosts).
                if h == 0 && host.app.measuring() && !w.measuring {
                    w.measuring = true;
                    let capture = w.capture;
                    let flight_k = w.flight_k;
                    for host in &mut w.hosts {
                        host.kernel.spans.enabled = true;
                        if capture {
                            // Captures cover exactly the measured
                            // iterations, like the span recorders.
                            host.kernel.taps = match flight_k {
                                Some(k) => simcap::TapSet::flight(k),
                                None => simcap::TapSet::all(),
                            };
                            host.kernel.taps.arm();
                            host.nic.arm_taps_mode(flight_k);
                        }
                    }
                }
                let host = &mut w.hosts[h];
                let offset = match state {
                    AppState::BlockedInWrite(n) => n,
                    _ => 0,
                };
                let data = match host.app.role {
                    // The server echoes what it received.
                    Role::RpcServer | Role::UdpRpcServer => host.app.got.clone(),
                    _ => App::pattern(host.app.size, host.app.done_count),
                };
                if offset == 0 && matches!(host.app.role, Role::RpcClient | Role::UdpRpcClient) {
                    // Start the iteration timer: read the clock just
                    // before write(), as the benchmark did.
                    host.app.t_start = now.max(host.kernel.cpu.busy_until()).quantized();
                }
                let udp = matches!(host.app.role, Role::UdpRpcClient | Role::UdpRpcServer);
                let out = {
                    let Host {
                        kernel, nic, sock, ..
                    } = host;
                    let peer: [u8; 4] = if h == 0 { [10, 0, 0, 2] } else { [10, 0, 0, 1] };
                    let pport = if h == 0 { 4242 } else { 1055 };
                    match (udp, nic) {
                        (false, Nic::Atm(n)) => {
                            kernel.syscall_write(now, *sock, &data[offset..], n)
                        }
                        (false, Nic::Ether(n)) => {
                            kernel.syscall_write(now, *sock, &data[offset..], n)
                        }
                        (true, Nic::Atm(n)) => kernel.udp_sendto(now, *sock, peer, pport, &data, n),
                        (true, Nic::Ether(n)) => {
                            kernel.udp_sendto(now, *sock, peer, pport, &data, n)
                        }
                    }
                };
                flush_host(w, s, h);
                let host = &mut w.hosts[h];
                now = out.done_at;
                if out.error.is_some() {
                    // The connection was aborted (ETIMEDOUT): the
                    // write fails cleanly and the process exits.
                    host.app.aborted = true;
                    host.app.state = AppState::Done;
                    break;
                }
                if out.blocked {
                    host.app.state = AppState::BlockedInWrite(offset + out.accepted);
                    break;
                }
                // Write complete: what next depends on the role.
                match host.app.role {
                    Role::RpcClient | Role::UdpRpcClient => {
                        host.app.got.clear();
                        host.app.state = AppState::WantRead;
                    }
                    Role::RpcServer | Role::UdpRpcServer => {
                        host.app.done_count += 1;
                        host.app.got.clear();
                        host.app.state = AppState::WantRead;
                    }
                    Role::BulkSender => {
                        host.app.done_count += 1;
                        host.app.stats.iterations += 1;
                        host.app.stats.bytes += host.app.size as u64;
                        // Clear any blocked-write offset carried here.
                        host.app.state = AppState::WantWrite;
                    }
                    Role::BulkReceiver => unreachable!("receivers don't write"),
                }
            }
            AppState::WantRead => {
                let host = &mut w.hosts[h];
                let want = host.app.size - host.app.got.len();
                let udp = matches!(host.app.role, Role::UdpRpcClient | Role::UdpRpcServer);
                let out = {
                    let Host {
                        kernel, nic, sock, ..
                    } = host;
                    if udp {
                        kernel.udp_recvfrom(now, *sock)
                    } else {
                        match nic {
                            Nic::Atm(n) => kernel.syscall_read(now, *sock, want, n),
                            Nic::Ether(n) => kernel.syscall_read(now, *sock, want, n),
                        }
                    }
                };
                flush_host(w, s, h);
                let host = &mut w.hosts[h];
                if out.error.is_some() {
                    // Read on an aborted connection: error, exit.
                    host.app.aborted = true;
                    host.app.state = AppState::Done;
                    break;
                }
                if out.blocked {
                    break;
                }
                now = out.done_at;
                host.app.got.extend_from_slice(&out.data);
                host.app.stats.bytes += out.data.len() as u64;
                if host.app.got.len() < host.app.size {
                    continue;
                }
                // A full message arrived.
                match host.app.role {
                    Role::UdpRpcClient => {
                        host.kernel.spans.mark(Mark::ReadReturn, now);
                        let expect = App::pattern(host.app.size, host.app.done_count);
                        if host.app.got != expect {
                            host.app.stats.verify_failures += 1;
                        }
                        if host.app.measuring() {
                            let rtt = now.quantized().saturating_since(host.app.t_start);
                            host.app.stats.rtts.push(rtt);
                            host.app.stats.iterations += 1;
                        }
                        host.app.done_count += 1;
                        host.app.state = AppState::WantWrite;
                    }
                    Role::UdpRpcServer => {
                        let expect = App::pattern(host.app.size, host.app.done_count);
                        if host.app.got != expect {
                            host.app.stats.verify_failures += 1;
                        }
                        host.app.state = AppState::WantWrite;
                    }
                    Role::RpcClient => {
                        host.kernel.spans.mark(Mark::ReadReturn, now);
                        let expect = App::pattern(host.app.size, host.app.done_count);
                        if host.app.got != expect {
                            host.app.stats.verify_failures += 1;
                        }
                        if host.app.measuring() {
                            let rtt = now.quantized().saturating_since(host.app.t_start);
                            host.app.stats.rtts.push(rtt);
                            host.app.stats.iterations += 1;
                        }
                        host.app.done_count += 1;
                        host.app.state = AppState::WantWrite;
                    }
                    Role::RpcServer => {
                        let expect = App::pattern(host.app.size, host.app.done_count);
                        if host.app.got != expect {
                            host.app.stats.verify_failures += 1;
                        }
                        host.app.state = AppState::WantWrite;
                    }
                    Role::BulkReceiver => {
                        let expect = App::pattern(host.app.size, host.app.done_count);
                        if host.app.got != expect {
                            host.app.stats.verify_failures += 1;
                        }
                        host.app.done_count += 1;
                        host.app.stats.iterations += 1;
                        host.app.got.clear();
                        if host.app.done_count >= host.app.total_iterations() {
                            host.app.state = AppState::Done;
                        }
                    }
                    Role::BulkSender => unreachable!("senders don't read"),
                }
            }
        }
    }
}
