//! Connection churn: the §3 PCB-organization question asked with
//! live connections instead of a static list.
//!
//! The paper measures the linear PCB search in isolation and argues a
//! hash table "could eliminate the lookup problem entirely". Here we
//! drive real three-way handshakes through two kernels until `n`
//! connections exist, then run one RPC exchange over the *oldest*
//! connection — the worst case for the list organization (oldest =
//! deepest, since BSD inserts at the head) — and report the TCP input
//! cost under each organization.
//!
//! This also exercises the full handshake path: SYN options, MSS
//! negotiation, embryonic-connection retransmission state.

use decstation::CostModel;
use simkit::SimTime;
use tcpip::config::PcbOrg;
use tcpip::{CaptureDriver, Kernel, PcbKey, StackConfig};

/// Result of one churn run.
#[derive(Clone, Copy, Debug)]
pub struct ChurnResult {
    /// Connections established.
    pub connections: usize,
    /// PCB entries in the server table at the end.
    pub server_pcbs: usize,
    /// Simulated cost (µs) of the server's TCP input for one segment
    /// on the *oldest* connection, including demultiplexing.
    pub oldest_input_us: f64,
    /// Same with the single-entry PCB cache primed (second segment).
    pub cached_input_us: f64,
}

/// Establishes `n` connections by real handshakes and probes lookup
/// cost on the oldest one.
///
/// # Panics
///
/// Panics if any handshake fails to complete — that would be a
/// protocol bug.
#[must_use]
pub fn churn(n: usize, org: PcbOrg) -> ChurnResult {
    let cfg = StackConfig {
        pcb_org: org,
        ambient_pcbs: 0,
        ..StackConfig::default()
    };
    let costs = CostModel::calibrated();
    let mut client = Kernel::new(cfg, costs.clone());
    let mut server = Kernel::new(cfg, costs);
    let mut dc = CaptureDriver::new(9188);
    let mut ds = CaptureDriver::new(9188);
    let _listener = server.listen([10, 0, 0, 2], 4242);

    let mut t = SimTime::from_ms(1);
    let shuttle =
        |from: &mut CaptureDriver, to: &mut Kernel, to_drv: &mut CaptureDriver, t: &mut SimTime| {
            let pkts: Vec<_> = from.packets.drain(..).collect();
            for p in pkts {
                let (chain, _) = mbuf::Chain::from_user_data(&to.pool, &p, p.len() > 1024);
                if let Some(at) = to.enqueue_ip(*t, chain) {
                    let _ = to.ipintr(at, to_drv);
                }
                *t += SimTime::from_us(500);
            }
        };

    let mut client_socks = Vec::with_capacity(n);
    for i in 0..n {
        let key = PcbKey {
            laddr: [10, 0, 0, 1],
            lport: 10_000 + i as u16,
            faddr: [10, 0, 0, 2],
            fport: 4242,
        };
        let sc = client.connect(t, key, &mut dc);
        shuttle(&mut dc, &mut server, &mut ds, &mut t); // SYN.
        shuttle(&mut ds, &mut client, &mut dc, &mut t); // SYN-ACK.
        shuttle(&mut dc, &mut server, &mut ds, &mut t); // ACK.
        assert!(client.is_established(sc), "handshake {i} completed");
        client_socks.push(sc);
        t += SimTime::from_ms(1);
    }

    // Probe: send one segment on the OLDEST connection and measure
    // the server's softintr (IP + demux + TCP input) cost.
    let oldest = client_socks[0];
    let probe = |client: &mut Kernel,
                 server: &mut Kernel,
                 dc: &mut CaptureDriver,
                 ds: &mut CaptureDriver,
                 t: &mut SimTime| {
        let _ = client.syscall_write(*t, oldest, &[7u8; 64], dc);
        let p = dc.packets.remove(0);
        let (chain, _) = mbuf::Chain::from_user_data(&server.pool, &p, false);
        let at = server
            .enqueue_ip(*t + SimTime::from_ms(1), chain)
            .expect("softintr");
        let out = server.ipintr(at, ds);
        let cost = out.done_at.saturating_since(at).as_us_f64();
        // Drain the (delayed) response ACKs so the next probe is clean.
        *t += SimTime::from_secs(1);
        let _ = server.check_timers(*t, ds);
        let pkts: Vec<_> = ds.packets.drain(..).collect();
        for p in pkts {
            let (chain, _) = mbuf::Chain::from_user_data(&client.pool, &p, false);
            if let Some(at) = client.enqueue_ip(*t, chain) {
                let _ = client.ipintr(at, dc);
            }
        }
        dc.packets.clear();
        *t += SimTime::from_secs(1);
        cost
    };
    let first = probe(&mut client, &mut server, &mut dc, &mut ds, &mut t);
    let second = probe(&mut client, &mut server, &mut dc, &mut ds, &mut t);

    ChurnResult {
        connections: n,
        server_pcbs: server.pcbs.len(),
        oldest_input_us: first,
        cached_input_us: second,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshakes_populate_both_tables() {
        let r = churn(20, PcbOrg::List);
        assert_eq!(r.connections, 20);
        // Listener + 20 spawned connections.
        assert_eq!(r.server_pcbs, 21);
    }

    #[test]
    fn list_lookup_cost_grows_with_table() {
        let small = churn(5, PcbOrg::List);
        let large = churn(150, PcbOrg::List);
        // The oldest connection sits ~n deep: the 150-connection case
        // pays ~145 more entries at ~1.28 us each.
        let delta = large.oldest_input_us - small.oldest_input_us;
        assert!(
            delta > 100.0,
            "expected ~185 us of extra search, got {delta:.1}"
        );
    }

    #[test]
    fn hash_lookup_cost_is_flat() {
        let small = churn(5, PcbOrg::Hash);
        let large = churn(150, PcbOrg::Hash);
        let delta = (large.oldest_input_us - small.oldest_input_us).abs();
        assert!(
            delta < 10.0,
            "hash must be size-independent, delta {delta:.1}"
        );
    }

    #[test]
    fn pcb_cache_hides_the_list_depth() {
        let r = churn(150, PcbOrg::List);
        // The second segment on the same connection hits the
        // single-entry cache: the deep search is gone.
        assert!(
            r.oldest_input_us - r.cached_input_us > 100.0,
            "first {:.1} vs cached {:.1}",
            r.oldest_input_us,
            r.cached_input_us
        );
    }
}
