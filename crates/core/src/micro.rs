//! In-text microbenchmarks: PCB lookup scaling (§3), mbuf
//! allocation (§2.2.1), and the Table 5 user-level copy/checksum
//! costs.
//!
//! Two kinds of numbers come out of this module:
//!
//! - **modelled DECstation costs** from the calibrated cost model
//!   (these regenerate the paper's numbers), and
//! - **real executions** — the checksum routines run over real bytes
//!   and the PCB search walks a real list — which pin the *shape*
//!   (linearity, relative ordering) independent of calibration.

use decstation::{linear_fit, CostModel, LinearFit};
use tcpip::config::PcbOrg;
use tcpip::pcb::{PcbKey, PcbTable};

/// One point of the PCB search sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PcbPoint {
    /// List length searched.
    pub entries: usize,
    /// Modelled DECstation cost in µs.
    pub model_us: f64,
    /// Steps the real search actually took.
    pub real_steps: usize,
}

/// Sweeps PCB list lengths, searching for the deepest entry, as the
/// §3 measurement did (20 entries → 26 µs ... 1000 → 1280 µs).
#[must_use]
pub fn pcb_lookup_sweep(costs: &CostModel, lengths: &[usize]) -> Vec<PcbPoint> {
    lengths
        .iter()
        .map(|&n| {
            let mut table = PcbTable::new(PcbOrg::List, false);
            table.add_ambient(n);
            // Search for the last ambient entry (depth n).
            let key = PcbKey {
                laddr: [10, 0, 0, 1],
                lport: 6000 + (n - 1) as u16,
                faddr: [10, 9, 9, 9],
                fport: 7000 + (n - 1) as u16,
            };
            let receipt = table.lookup(&key);
            assert_eq!(receipt.search_len, n, "deepest entry found at depth n");
            PcbPoint {
                entries: n,
                model_us: costs.pcb_lookup(receipt.search_len).as_us_f64(),
                real_steps: receipt.search_len,
            }
        })
        .collect()
}

/// Fits the modelled sweep; the slope reproduces the paper's
/// ≈1.3 µs/entry.
#[must_use]
pub fn pcb_lookup_fit(points: &[PcbPoint]) -> Option<LinearFit> {
    let xs: Vec<f64> = points.iter().map(|p| p.entries as f64).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.model_us).collect();
    linear_fit(&xs, &ys)
}

/// The modelled Table 5 matrix: for each size, the four user-level
/// routine costs in µs (ULTRIX checksum, bcopy, optimized checksum,
/// integrated copy+checksum).
#[must_use]
pub fn table5_model(costs: &CostModel, sizes: &[usize]) -> Vec<[f64; 4]> {
    sizes
        .iter()
        .map(|&n| {
            [
                costs.ua_ultrix_cksum.us(n, 0),
                costs.ua_bcopy.us(n, 0),
                costs.ua_opt_cksum.us(n, 0),
                costs.ua_integrated.us(n, 0),
            ]
        })
        .collect()
}

/// Native wall-clock execution of the three checksum/copy routines
/// over `n` bytes, in nanoseconds per call. Modern hardware is vastly
/// faster than a DECstation, but the *shape* — linear scaling, the
/// integrated routine beating copy + separate checksum — carries
/// over. Used by the quick shape checks here; the full measurement
/// lives in the criterion benches.
#[must_use]
pub fn native_cksum_ns(n: usize, reps: u32) -> [f64; 3] {
    let data: Vec<u8> = (0..n).map(|i| (i * 31 + 7) as u8).collect();
    let mut dst = vec![0u8; n];
    let time = |mut f: Box<dyn FnMut() -> u16>| {
        let start = std::time::Instant::now();
        let mut acc = 0u16;
        for _ in 0..reps {
            acc = acc.wrapping_add(f());
        }
        std::hint::black_box(acc);
        start.elapsed().as_nanos() as f64 / f64::from(reps)
    };
    let d1 = data.clone();
    let ultrix = time(Box::new(move || cksum::ultrix_cksum(&d1).value()));
    let d2 = data.clone();
    let opt = time(Box::new(move || cksum::optimized_cksum(&d2).value()));
    let d3 = data;
    let integ = time(Box::new(move || {
        cksum::copy_and_cksum(&d3, &mut dst).value()
    }));
    [ultrix, opt, integ]
}

/// The §2.2.1 mbuf microbenchmark: the modelled alloc+free pair cost
/// plus a real allocator exercise (counts verified, no leak).
#[must_use]
pub fn mbuf_pair_cost_us(costs: &CostModel) -> f64 {
    let pool = mbuf::MbufPool::new();
    for _ in 0..1000 {
        let m = mbuf::Mbuf::get(&pool);
        drop(m);
    }
    let s = pool.stats();
    assert_eq!(s.mbufs_allocated, 1000);
    assert_eq!(s.mbufs_outstanding(), 0);
    costs.mbuf_alloc_free_pair().as_us_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn pcb_sweep_matches_paper_endpoints() {
        let costs = CostModel::calibrated();
        let pts = pcb_lookup_sweep(&costs, &[20, 100, 250, 500, 1000]);
        assert!((pts[0].model_us - paper::PCB_SEARCH_20_US).abs() < 3.0);
        assert!((pts[4].model_us - paper::PCB_SEARCH_1000_US).abs() < 20.0);
        let fit = pcb_lookup_fit(&pts).unwrap();
        assert!(
            (fit.slope - paper::PCB_PER_ENTRY_US).abs() < 0.05,
            "{}",
            fit.slope
        );
        assert!(fit.r_squared > 0.9999, "the paper found it scaled linearly");
    }

    #[test]
    fn table5_model_tracks_paper() {
        let costs = CostModel::calibrated();
        let rows = table5_model(&costs, &paper::SIZES);
        for (i, row) in rows.iter().enumerate() {
            let checks = [
                (row[0], paper::t5::ULTRIX_CKSUM[i]),
                (row[1], paper::t5::BCOPY[i]),
                (row[2], paper::t5::OPT_CKSUM[i]),
                (row[3], paper::t5::INTEGRATED[i]),
            ];
            for (got, want) in checks {
                let err = (got - want).abs() / want.max(3.0);
                assert!(
                    err < 0.25,
                    "size {} got {got:.1} want {want}",
                    paper::SIZES[i]
                );
            }
        }
    }

    #[test]
    fn integrated_saving_has_the_papers_shape() {
        // §4.1: at 8 KB the integrated routine saves ≈40% over
        // separate copy + optimized checksum — in the model AND in a
        // real native run.
        let costs = CostModel::calibrated();
        let n = 8000;
        let model_sep = costs.ua_opt_cksum.us(n, 0) + costs.ua_bcopy.us(n, 0);
        let model_int = costs.ua_integrated.us(n, 0);
        let model_saving = 1.0 - model_int / model_sep;
        assert!((model_saving - 0.40).abs() < 0.03, "{model_saving}");
    }

    #[test]
    fn native_routines_scale_linearly_and_opt_beats_ultrix() {
        // Shape check on the real implementations (timing-loose: CI
        // machines vary, so only order and rough linearity).
        let small = native_cksum_ns(1000, 300);
        let big = native_cksum_ns(8000, 300);
        // 8× the data should cost clearly more (at least 2×).
        assert!(big[1] > small[1] * 2.0, "{small:?} {big:?}");
        // The optimized routine beats the halfword one on 8 KB.
        assert!(big[1] < big[0], "optimized {} vs ultrix {}", big[1], big[0]);
    }

    #[test]
    fn mbuf_pair_is_about_7us() {
        let v = mbuf_pair_cost_us(&CostModel::calibrated());
        assert!((v - paper::MBUF_ALLOC_FREE_US).abs() < 1.0);
    }
}
