//! Calibration sweep: measured vs paper for the baseline system.
use latency_core::experiment::{Experiment, NetKind};
use latency_core::paper;

fn main() {
    println!("size | RTT atm  paper  err% | RTT eth   paper   err%");
    let mut txs = Vec::new();
    let mut rxs = Vec::new();
    for (i, &n) in paper::SIZES.iter().enumerate() {
        let mut e = Experiment::rpc(NetKind::Atm, n);
        e.iterations = 200;
        e.warmup = 8;
        let r = e.plan().seed(1).execute();
        let mut ee = Experiment::rpc(NetKind::Ether, n);
        ee.iterations = 100;
        ee.warmup = 8;
        let re = ee.plan().seed(1).execute();
        println!(
            "{:>5} | {:>7.0} {:>6.0} {:>5.1} | {:>7.0} {:>7.0} {:>5.1}",
            n,
            r.mean_rtt_us(),
            paper::T1_ATM_RTT[i],
            (r.mean_rtt_us() - paper::T1_ATM_RTT[i]) / paper::T1_ATM_RTT[i] * 100.0,
            re.mean_rtt_us(),
            paper::T1_ETHERNET_RTT[i],
            (re.mean_rtt_us() - paper::T1_ETHERNET_RTT[i]) / paper::T1_ETHERNET_RTT[i] * 100.0
        );
        txs.push(r.tx);
        rxs.push(r.rx);
    }
    println!("\n{}", latency_core::tables::table2(&paper::SIZES, &txs));
    println!("{}", latency_core::tables::table3(&paper::SIZES, &rxs));
}
