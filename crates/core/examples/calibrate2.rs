use latency_core::experiment::{Experiment, NetKind};
use latency_core::paper;

fn main() {
    println!("size | base  nopred paper  | integ  paper | nocksum paper");
    for (i, &n) in paper::SIZES.iter().enumerate() {
        let mk = |f: fn(Experiment) -> Experiment| {
            let mut e = f(Experiment::rpc(NetKind::Atm, n));
            e.iterations = 150;
            e.warmup = 8;
            e
        };
        let base = mk(|e| e).plan().seed(1).execute().mean_rtt_us();
        let nopred = mk(|e| e.without_prediction())
            .plan()
            .seed(1)
            .execute()
            .mean_rtt_us();
        let integ = mk(|e| e.with_integrated_checksum())
            .plan()
            .seed(1)
            .execute()
            .mean_rtt_us();
        let nock = mk(|e| e.without_checksum())
            .plan()
            .seed(1)
            .execute()
            .mean_rtt_us();
        println!(
            "{:>5} | {:>5.0} {:>6.0} {:>6.0} | {:>6.0} {:>5.0} | {:>6.0} {:>6.0}",
            n,
            base,
            nopred,
            paper::T4_NO_PREDICTION_RTT[i],
            integ,
            paper::T6_COMBINED_RTT[i],
            nock,
            paper::T7_NO_CKSUM_RTT[i]
        );
    }
}
