//! A LANCE-class Ethernet controller model.
//!
//! Unlike the FORE adapter's memory-mapped FIFOs, the LANCE works
//! from descriptor rings in host memory: the driver copies the packet
//! into a DMA buffer, builds a descriptor, and pokes the chip; on
//! receive the chip DMAs into ring buffers and interrupts. All that
//! machinery makes the *per-packet* cost much higher than the FORE
//! path — the dominant term in Table 1's small-transfer gap.
//!
//! The model keeps transmit-side buffer occupancy (a packet occupies
//! a ring slot until the wire finishes it) and counts statistics; the
//! per-packet/per-byte CPU costs are charged by the driver binding
//! from the calibrated cost model.

use std::collections::VecDeque;

use simkit::SimTime;

/// LANCE transmit ring depth (packets, not cells).
pub const LANCE_TX_RING: usize = 16;

/// A LANCE adapter (one per host).
#[derive(Debug)]
pub struct LanceAdapter {
    /// Wire-completion times of packets still holding TX ring slots.
    tx_completions: VecDeque<SimTime>,
    /// Packets transmitted.
    pub packets_sent: u64,
    /// Packets received.
    pub packets_received: u64,
    /// Time the driver spent waiting for a free TX slot.
    pub tx_stall_time: SimTime,
}

impl Default for LanceAdapter {
    fn default() -> Self {
        LanceAdapter::new()
    }
}

impl LanceAdapter {
    /// Creates an idle adapter.
    #[must_use]
    pub fn new() -> Self {
        LanceAdapter {
            tx_completions: VecDeque::new(),
            packets_sent: 0,
            packets_received: 0,
            tx_stall_time: SimTime::ZERO,
        }
    }

    /// Claims a TX ring slot: the driver is ready at `ready`; returns
    /// when the descriptor write can happen (delayed if the ring is
    /// full). `wire_done` must be recorded afterwards via
    /// [`LanceAdapter::tx_complete`].
    pub fn claim_tx_slot(&mut self, ready: SimTime) -> SimTime {
        // Retire descriptors whose packets have left the wire.
        while let Some(&front) = self.tx_completions.front() {
            if front <= ready {
                self.tx_completions.pop_front();
            } else {
                break;
            }
        }
        if self.tx_completions.len() < LANCE_TX_RING {
            return ready;
        }
        // Ring full: wait for the oldest packet to finish.
        let front = self.tx_completions.pop_front().expect("ring nonempty");
        self.tx_stall_time += front - ready;
        front
    }

    /// Records that a packet claimed earlier finishes on the wire at
    /// `wire_done`.
    pub fn tx_complete(&mut self, wire_done: SimTime) {
        self.packets_sent += 1;
        self.tx_completions.push_back(wire_done);
    }

    /// Counts an inbound packet.
    pub fn rx_packet(&mut self) {
        self.packets_received += 1;
    }

    /// Outstanding TX ring occupancy.
    #[must_use]
    pub fn tx_outstanding(&self) -> usize {
        self.tx_completions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_adapter_grants_immediately() {
        let mut a = LanceAdapter::new();
        assert_eq!(a.claim_tx_slot(SimTime::from_us(5)), SimTime::from_us(5));
        a.tx_complete(SimTime::from_us(100));
        assert_eq!(a.tx_outstanding(), 1);
    }

    #[test]
    fn full_ring_delays_claim() {
        let mut a = LanceAdapter::new();
        for i in 0..LANCE_TX_RING {
            let t = a.claim_tx_slot(SimTime::ZERO);
            assert_eq!(t, SimTime::ZERO);
            a.tx_complete(SimTime::from_ms(1 + i as u64));
        }
        assert_eq!(a.tx_outstanding(), LANCE_TX_RING);
        // The next claim waits for the oldest completion (1 ms).
        let t = a.claim_tx_slot(SimTime::ZERO);
        assert_eq!(t, SimTime::from_ms(1));
        assert!(a.tx_stall_time > SimTime::ZERO);
    }

    #[test]
    fn rx_counting() {
        let mut a = LanceAdapter::new();
        a.rx_packet();
        a.rx_packet();
        assert_eq!(a.packets_received, 2);
    }
}
