//! Ethernet II framing with a real CRC-32.

use cksum::crc::crc32;

/// Maximum payload bytes per frame (the Ethernet MTU).
pub const ETHER_MAX_PAYLOAD: usize = 1500;

/// Minimum frame size on the wire (header + payload + FCS).
pub const ETHER_MIN_FRAME: usize = 64;

/// Header size: two addresses plus the EtherType.
pub const ETHER_HEADER: usize = 14;

/// Frame check sequence size.
pub const ETHER_FCS: usize = 4;

/// EtherType for IPv4.
pub const ETHERTYPE_IP: u16 = 0x0800;

/// A 48-bit MAC address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EtherAddr(pub [u8; 6]);

impl EtherAddr {
    /// A locally administered address derived from a host id.
    #[must_use]
    pub fn from_host_id(id: u8) -> Self {
        EtherAddr([0x02, 0x00, 0x00, 0x00, 0x00, id])
    }
}

/// Decode errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than a minimal frame.
    Runt,
    /// Longer than MTU + framing.
    Giant,
    /// FCS mismatch — the error class the paper's departmental
    /// Ethernet experiment counts ("TCP detects two orders of
    /// magnitude fewer errors than the Ethernet CRC").
    Fcs,
}

/// A decoded Ethernet frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EtherFrame {
    /// Destination address.
    pub dst: EtherAddr,
    /// Source address.
    pub src: EtherAddr,
    /// EtherType.
    pub ethertype: u16,
    /// Payload (without padding).
    pub payload: Vec<u8>,
}

impl EtherFrame {
    /// Encodes to wire bytes: header, payload, pad to the 64-byte
    /// minimum, FCS.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`ETHER_MAX_PAYLOAD`].
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        assert!(
            self.payload.len() <= ETHER_MAX_PAYLOAD,
            "payload exceeds the Ethernet MTU"
        );
        let mut out = Vec::with_capacity(ETHER_HEADER + self.payload.len() + ETHER_FCS);
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&self.ethertype.to_be_bytes());
        out.extend_from_slice(&self.payload);
        let min_body = ETHER_MIN_FRAME - ETHER_FCS;
        if out.len() < min_body {
            out.resize(min_body, 0);
        }
        let fcs = crc32(&out);
        out.extend_from_slice(&fcs.to_be_bytes());
        out
    }

    /// Decodes wire bytes, verifying length bounds and the FCS.
    ///
    /// The payload length cannot be recovered from the frame alone
    /// when padding was added (Ethernet II has no length field for
    /// IP); `payload_len` lets the caller pass the length from the IP
    /// header, or `None` to take everything after the header.
    pub fn decode(wire: &[u8], payload_len: Option<usize>) -> Result<EtherFrame, FrameError> {
        if wire.len() < ETHER_MIN_FRAME {
            return Err(FrameError::Runt);
        }
        if wire.len() > ETHER_HEADER + ETHER_MAX_PAYLOAD + ETHER_FCS {
            return Err(FrameError::Giant);
        }
        let body = &wire[..wire.len() - ETHER_FCS];
        let fcs = u32::from_be_bytes(wire[wire.len() - ETHER_FCS..].try_into().expect("4 bytes"));
        if crc32(body) != fcs {
            return Err(FrameError::Fcs);
        }
        let avail = body.len() - ETHER_HEADER;
        let take = payload_len.unwrap_or(avail).min(avail);
        Ok(EtherFrame {
            dst: EtherAddr(body[0..6].try_into().expect("6 bytes")),
            src: EtherAddr(body[6..12].try_into().expect("6 bytes")),
            ethertype: u16::from_be_bytes([body[12], body[13]]),
            payload: body[ETHER_HEADER..ETHER_HEADER + take].to_vec(),
        })
    }

    /// Wire length of this frame when encoded (without preamble/IFG).
    #[must_use]
    pub fn wire_len(&self) -> usize {
        (ETHER_HEADER + self.payload.len() + ETHER_FCS).max(ETHER_MIN_FRAME)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: usize) -> EtherFrame {
        EtherFrame {
            dst: EtherAddr::from_host_id(2),
            src: EtherAddr::from_host_id(1),
            ethertype: ETHERTYPE_IP,
            payload: (0..n).map(|i| (i * 3 + 1) as u8).collect(),
        }
    }

    #[test]
    fn roundtrip_with_known_length() {
        for n in [0usize, 1, 44, 46, 100, 1400, 1500] {
            let f = frame(n);
            let wire = f.encode();
            let back = EtherFrame::decode(&wire, Some(n)).unwrap();
            assert_eq!(back, f, "payload {n}");
        }
    }

    #[test]
    fn small_frames_are_padded_to_minimum() {
        let f = frame(4);
        let wire = f.encode();
        assert_eq!(wire.len(), ETHER_MIN_FRAME);
        assert_eq!(f.wire_len(), ETHER_MIN_FRAME);
        // Without a length hint the pad is kept (46-byte payload).
        let back = EtherFrame::decode(&wire, None).unwrap();
        assert_eq!(
            back.payload.len(),
            ETHER_MIN_FRAME - ETHER_HEADER - ETHER_FCS
        );
    }

    #[test]
    fn corruption_detected_by_fcs() {
        let f = frame(300);
        let mut wire = f.encode();
        wire[100] ^= 0x10;
        assert_eq!(EtherFrame::decode(&wire, Some(300)), Err(FrameError::Fcs));
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        let f = frame(64);
        let wire = f.encode();
        for byte in 0..wire.len() {
            for bit in 0..8 {
                let mut bad = wire.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    EtherFrame::decode(&bad, Some(64)).is_err(),
                    "flip at {byte}:{bit} undetected"
                );
            }
        }
    }

    #[test]
    fn runt_and_giant_rejected() {
        assert_eq!(EtherFrame::decode(&[0u8; 10], None), Err(FrameError::Runt));
        let too_big = vec![0u8; ETHER_HEADER + ETHER_MAX_PAYLOAD + ETHER_FCS + 1];
        assert_eq!(EtherFrame::decode(&too_big, None), Err(FrameError::Giant));
    }

    #[test]
    #[should_panic(expected = "exceeds the Ethernet MTU")]
    fn oversized_payload_panics() {
        let _ = frame(1501).encode();
    }
}
