//! `ether` — the 10 Mbit/s Ethernet substrate used as the paper's
//! baseline network (Table 1 compares TCP round-trip times over the
//! FORE ATM interface against the same stack over Ethernet).
//!
//! The DECstation's on-board interface was an AM7990 LANCE. Two
//! properties matter for the comparison and are modelled:
//!
//! - the **wire is 14× slower** than the 140 Mbit/s TAXI fiber and
//!   the 1500-byte MTU forces fragmentation (TCP segmentation) of the
//!   larger transfers;
//! - the **driver/controller path is much more expensive** per packet
//!   than the memory-mapped FORE FIFOs — the paper's 4-byte case
//!   shows a 919 µs gap, mostly controller/driver overhead.
//!
//! Frames are real bytes with a real IEEE CRC-32; the wire model
//! accounts preamble, inter-frame gap and minimum frame size. The
//! private two-host segment of the paper's testbed is collision-free
//! (the measurement hosts were "otherwise idle"), so no CSMA/CD
//! contention is modelled; the wire is still half-duplex serialized
//! per direction pair.

#![warn(missing_docs)]

pub mod frame;
pub mod lance;
pub mod wire;

pub use frame::{EtherAddr, EtherFrame, ETHERTYPE_IP, ETHER_MAX_PAYLOAD, ETHER_MIN_FRAME};
pub use lance::LanceAdapter;
pub use wire::{EtherWire, WireConfig};
