//! Wire timing for the 10 Mbit/s segment.

use simkit::{SimRng, SimTime};

/// Preamble plus start-frame delimiter, in bytes.
pub const PREAMBLE_BYTES: usize = 8;

/// Inter-frame gap: 96 bit times.
pub const IFG_BITS: usize = 96;

/// Configuration of the Ethernet segment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireConfig {
    /// Line rate in bits per second.
    pub bit_rate: f64,
    /// One-way propagation delay.
    pub propagation: SimTime,
    /// Bit error rate applied to frames in flight.
    pub ber: f64,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            bit_rate: 10e6,
            propagation: SimTime::from_ns(500),
            ber: 0.0,
        }
    }
}

impl WireConfig {
    /// Serialization time of `wire_len` frame bytes, including
    /// preamble and the inter-frame gap that must elapse before the
    /// next frame.
    #[must_use]
    pub fn frame_time(&self, wire_len: usize) -> SimTime {
        let bits = ((wire_len + PREAMBLE_BYTES) * 8 + IFG_BITS) as f64;
        SimTime::from_us_f64(bits / self.bit_rate * 1e6)
    }
}

/// One direction of the (idle, two-host) segment: frames serialize
/// back to back; bit errors corrupt payload bytes in flight.
#[derive(Clone, Debug)]
pub struct EtherWire {
    /// Parameters.
    pub config: WireConfig,
    busy_until: SimTime,
    rng: SimRng,
    /// Frames carried.
    pub frames_carried: u64,
    /// Frames delivered corrupted.
    pub frames_corrupted: u64,
    /// Raw-frame capture tap (`LinkFrame`): every delivered frame
    /// (FCS included, corruption applied), stamped at its delivery
    /// time. Zero-cost unless armed.
    pub taps: simcap::TapSet,
}

impl EtherWire {
    /// Creates an idle wire.
    #[must_use]
    pub fn new(config: WireConfig, seed: u64) -> Self {
        EtherWire {
            config,
            busy_until: SimTime::ZERO,
            rng: SimRng::seed_stream(seed, 0xe0),
            frames_carried: 0,
            frames_corrupted: 0,
            taps: simcap::TapSet::off(),
        }
    }

    /// Transmits a frame whose bytes are `wire` starting no earlier
    /// than `ready`. Returns `(delivery_time, bytes_as_delivered)`.
    pub fn carry(&mut self, ready: SimTime, mut wire: Vec<u8>) -> (SimTime, Vec<u8>) {
        let start = ready.max(self.busy_until);
        let end = start + self.config.frame_time(wire.len());
        self.busy_until = end;
        self.frames_carried += 1;
        let nbits = (wire.len() * 8) as u64;
        let flips = self.rng.binomial_small_p(nbits, self.config.ber);
        if flips > 0 {
            self.frames_corrupted += 1;
            let mut flipped = Vec::with_capacity(flips as usize);
            while flipped.len() < flips as usize && flipped.len() < wire.len() * 8 {
                let bit = self.rng.next_below(nbits as u32) as usize;
                if !flipped.contains(&bit) {
                    flipped.push(bit);
                    wire[bit / 8] ^= 1 << (7 - bit % 8);
                }
            }
        }
        let delivery = end + self.config.propagation;
        if self.taps.wants(simcap::TapPoint::LinkFrame) {
            self.taps
                .record(simcap::TapPoint::LinkFrame, delivery, wire.clone());
        }
        (delivery, wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_frame_time_is_about_67us() {
        let c = WireConfig::default();
        // 64 + 8 preamble bytes = 576 bits, + 96 IFG = 672 bits at
        // 10 Mbit/s = 67.2 µs.
        let t = c.frame_time(64).as_us_f64();
        assert!((t - 67.2).abs() < 0.1, "{t}");
    }

    #[test]
    fn full_mtu_frame_time() {
        let c = WireConfig::default();
        // 1518 + 8 bytes + 96 bits = 12304 bits = 1230.4 µs.
        let t = c.frame_time(1518).as_us_f64();
        assert!((t - 1230.4).abs() < 0.5, "{t}");
    }

    #[test]
    fn frames_serialize() {
        let mut w = EtherWire::new(WireConfig::default(), 1);
        let (d1, _) = w.carry(SimTime::ZERO, vec![0u8; 64]);
        let (d2, _) = w.carry(SimTime::ZERO, vec![0u8; 64]);
        let ft = WireConfig::default().frame_time(64);
        let prop = WireConfig::default().propagation;
        assert_eq!(d1, ft + prop);
        assert_eq!(d2, ft * 2 + prop);
    }

    #[test]
    fn clean_wire_preserves_bytes() {
        let mut w = EtherWire::new(WireConfig::default(), 1);
        let data: Vec<u8> = (0..200u8).collect();
        let (_, out) = w.carry(SimTime::ZERO, data.clone());
        assert_eq!(out, data);
    }

    #[test]
    fn noisy_wire_corrupts_at_rate() {
        let mut w = EtherWire::new(
            WireConfig {
                ber: 1e-4,
                ..WireConfig::default()
            },
            5,
        );
        let mut corrupted = 0;
        for _ in 0..2000 {
            let data = vec![0xaau8; 125]; // 1000 bits: ~10% hit rate.
            let (_, out) = w.carry(SimTime::ZERO, data.clone());
            if out != data {
                corrupted += 1;
            }
        }
        assert!((120..280).contains(&corrupted), "{corrupted}");
        assert_eq!(w.frames_corrupted, corrupted as u64);
    }
}
