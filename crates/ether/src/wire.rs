//! Wire timing for the 10 Mbit/s segment.

use simkit::{SimRng, SimTime};

/// Preamble plus start-frame delimiter, in bytes.
pub const PREAMBLE_BYTES: usize = 8;

/// Inter-frame gap: 96 bit times.
pub const IFG_BITS: usize = 96;

/// Configuration of the Ethernet segment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireConfig {
    /// Line rate in bits per second.
    pub bit_rate: f64,
    /// One-way propagation delay.
    pub propagation: SimTime,
    /// Bit error rate applied to frames in flight.
    pub ber: f64,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            bit_rate: 10e6,
            propagation: SimTime::from_ns(500),
            ber: 0.0,
        }
    }
}

impl WireConfig {
    /// Serialization time of `wire_len` frame bytes, including
    /// preamble and the inter-frame gap that must elapse before the
    /// next frame.
    #[must_use]
    pub fn frame_time(&self, wire_len: usize) -> SimTime {
        let bits = ((wire_len + PREAMBLE_BYTES) * 8 + IFG_BITS) as f64;
        SimTime::from_us_f64(bits / self.bit_rate * 1e6)
    }
}

/// One direction of the (idle, two-host) segment: frames serialize
/// back to back; bit errors corrupt payload bytes in flight.
#[derive(Clone, Debug)]
pub struct EtherWire {
    /// Parameters.
    pub config: WireConfig,
    busy_until: SimTime,
    rng: SimRng,
    /// Frames carried.
    pub frames_carried: u64,
    /// Frames delivered corrupted.
    pub frames_corrupted: u64,
    /// Frames dropped by the burst-loss process.
    pub frames_lost: u64,
    /// Optional Gilbert–Elliott burst-loss process (faultkit): whole
    /// frames vanish in bursts, the LANCE-era analogue of ATM cell
    /// loss. When absent the wire behaves exactly as before.
    pub burst: Option<faultkit::LossProcess>,
    /// Raw-frame capture tap (`LinkFrame`): every delivered frame
    /// (FCS included, corruption applied), stamped at its delivery
    /// time. Zero-cost unless armed.
    pub taps: simcap::TapSet,
}

impl EtherWire {
    /// Creates an idle wire.
    #[must_use]
    pub fn new(config: WireConfig, seed: u64) -> Self {
        EtherWire {
            config,
            busy_until: SimTime::ZERO,
            rng: SimRng::seed_stream(seed, 0xe0),
            frames_carried: 0,
            frames_corrupted: 0,
            frames_lost: 0,
            burst: None,
            taps: simcap::TapSet::off(),
        }
    }

    /// Arms a deterministic burst-loss process on this direction.
    pub fn arm_burst_loss(&mut self, model: faultkit::GilbertElliott, seed: u64) {
        self.burst = Some(faultkit::LossProcess::new(model, seed));
    }

    /// Transmits a frame whose bytes are `wire` starting no earlier
    /// than `ready`. Returns `(delivery_time, bytes_as_delivered)`;
    /// the bytes are `None` when the burst-loss process dropped the
    /// frame in flight (the wire time is still consumed).
    pub fn carry(&mut self, ready: SimTime, mut wire: Vec<u8>) -> (SimTime, Option<Vec<u8>>) {
        let start = ready.max(self.busy_until);
        let end = start + self.config.frame_time(wire.len());
        self.busy_until = end;
        self.frames_carried += 1;
        if let Some(burst) = self.burst.as_mut() {
            if burst.drop_next() {
                self.frames_lost += 1;
                return (end + self.config.propagation, None);
            }
        }
        let nbits = (wire.len() * 8) as u64;
        let flips = self.rng.binomial_small_p(nbits, self.config.ber);
        if flips > 0 {
            self.frames_corrupted += 1;
            let mut flipped = Vec::with_capacity(flips as usize);
            while flipped.len() < flips as usize && flipped.len() < wire.len() * 8 {
                let bit = self.rng.next_below(nbits as u32) as usize;
                if !flipped.contains(&bit) {
                    flipped.push(bit);
                    wire[bit / 8] ^= 1 << (7 - bit % 8);
                }
            }
        }
        let delivery = end + self.config.propagation;
        if self.taps.wants(simcap::TapPoint::LinkFrame) {
            self.taps
                .record(simcap::TapPoint::LinkFrame, delivery, wire.clone());
        }
        (delivery, Some(wire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_frame_time_is_about_67us() {
        let c = WireConfig::default();
        // 64 + 8 preamble bytes = 576 bits, + 96 IFG = 672 bits at
        // 10 Mbit/s = 67.2 µs.
        let t = c.frame_time(64).as_us_f64();
        assert!((t - 67.2).abs() < 0.1, "{t}");
    }

    #[test]
    fn full_mtu_frame_time() {
        let c = WireConfig::default();
        // 1518 + 8 bytes + 96 bits = 12304 bits = 1230.4 µs.
        let t = c.frame_time(1518).as_us_f64();
        assert!((t - 1230.4).abs() < 0.5, "{t}");
    }

    #[test]
    fn frames_serialize() {
        let mut w = EtherWire::new(WireConfig::default(), 1);
        let (d1, _) = w.carry(SimTime::ZERO, vec![0u8; 64]);
        let (d2, _) = w.carry(SimTime::ZERO, vec![0u8; 64]);
        let ft = WireConfig::default().frame_time(64);
        let prop = WireConfig::default().propagation;
        assert_eq!(d1, ft + prop);
        assert_eq!(d2, ft * 2 + prop);
    }

    #[test]
    fn clean_wire_preserves_bytes() {
        let mut w = EtherWire::new(WireConfig::default(), 1);
        let data: Vec<u8> = (0..200u8).collect();
        let (_, out) = w.carry(SimTime::ZERO, data.clone());
        assert_eq!(out, Some(data));
        assert_eq!(w.frames_lost, 0);
    }

    #[test]
    fn noisy_wire_corrupts_at_rate() {
        let mut w = EtherWire::new(
            WireConfig {
                ber: 1e-4,
                ..WireConfig::default()
            },
            5,
        );
        let mut corrupted = 0;
        for _ in 0..2000 {
            let data = vec![0xaau8; 125]; // 1000 bits: ~10% hit rate.
            let (_, out) = w.carry(SimTime::ZERO, data.clone());
            let out = out.expect("no loss process armed");
            if out != data {
                corrupted += 1;
            }
        }
        assert!((120..280).contains(&corrupted), "{corrupted}");
        assert_eq!(w.frames_corrupted, corrupted as u64);
    }

    #[test]
    fn burst_loss_drops_whole_frames_and_counts() {
        let mut w = EtherWire::new(WireConfig::default(), 1);
        w.arm_burst_loss(
            faultkit::GilbertElliott {
                p_good_to_bad: 0.05,
                p_bad_to_good: 0.2,
                loss_good: 0.0,
                loss_bad: 1.0,
            },
            13,
        );
        let mut lost = 0;
        let mut last_delivery = SimTime::ZERO;
        for _ in 0..2000 {
            let (at, out) = w.carry(SimTime::ZERO, vec![0u8; 64]);
            assert!(at > last_delivery, "lost frames still consume wire time");
            last_delivery = at;
            if out.is_none() {
                lost += 1;
            }
        }
        assert!(lost > 100, "bad state drops frames: {lost}");
        assert_eq!(w.frames_lost, lost);
        assert_eq!(w.frames_carried, 2000);
    }
}
