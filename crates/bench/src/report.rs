//! Machine-readable result collection for the `repro` binary.
//!
//! Every table the binary prints is also recorded here as measured
//! series paired with the paper's values, and can be dumped as JSON
//! (used to generate `EXPERIMENTS.md`). The JSON is emitted by hand —
//! the build must work with no registry access, so no serde.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One measured series against the paper's.
pub struct Series {
    /// Measured values (one per paper size, usually).
    pub measured: Vec<f64>,
    /// The paper's published values.
    pub paper: Vec<f64>,
    /// Per-point relative error in percent.
    pub err_pct: Vec<f64>,
}

/// One scalar comparison.
pub struct Scalar {
    /// Measured value.
    pub measured: f64,
    /// The paper's value (0 when the paper gives no number).
    pub paper: f64,
}

/// The full report.
pub struct Report {
    /// Iterations per repetition used for the runs.
    pub iterations: u64,
    /// Repetitions averaged.
    pub reps: u64,
    /// Named series.
    pub series: BTreeMap<String, Series>,
    /// Named scalars.
    pub scalars: BTreeMap<String, Scalar>,
    /// Rendered table texts.
    pub texts: BTreeMap<String, String>,
}

impl Report {
    /// Creates an empty report.
    #[must_use]
    pub fn new(iterations: u64, reps: u64) -> Self {
        Report {
            iterations,
            reps,
            series: BTreeMap::new(),
            scalars: BTreeMap::new(),
            texts: BTreeMap::new(),
        }
    }

    /// Records a measured-vs-paper series. Points where the paper
    /// gives no number (0.0) have no defined relative error; they
    /// render as `null` (see `json_num`) rather than a masking `0.0`.
    pub fn series(&mut self, name: &str, measured: &[f64], paper: &[f64]) {
        let err_pct = measured
            .iter()
            .zip(paper)
            .map(|(&m, &p)| latency_core::stats::pct_error(m, p))
            .collect();
        self.series.insert(
            name.to_string(),
            Series {
                measured: measured.to_vec(),
                paper: paper.to_vec(),
                err_pct,
            },
        );
    }

    /// Records a scalar comparison.
    pub fn scalar(&mut self, name: &str, measured: f64, paper: f64) {
        self.scalars
            .insert(name.to_string(), Scalar { measured, paper });
    }

    /// Records a rendered table.
    pub fn text(&mut self, name: &str, text: String) {
        self.texts.insert(name.to_string(), text);
    }

    /// Renders the report as pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"iterations\": {},", self.iterations);
        let _ = writeln!(out, "  \"reps\": {},", self.reps);
        out.push_str("  \"series\": {");
        emit_map(&mut out, &self.series, |out, s| {
            out.push_str("{\n");
            emit_num_array(out, "measured", &s.measured, 6);
            out.push_str(",\n");
            emit_num_array(out, "paper", &s.paper, 6);
            out.push_str(",\n");
            emit_num_array(out, "err_pct", &s.err_pct, 6);
            out.push_str("\n    }");
        });
        out.push_str(",\n  \"scalars\": {");
        emit_map(&mut out, &self.scalars, |out, s| {
            let _ = write!(
                out,
                "{{ \"measured\": {}, \"paper\": {} }}",
                json_num(s.measured),
                json_num(s.paper)
            );
        });
        out.push_str(",\n  \"texts\": {");
        emit_map(&mut out, &self.texts, |out, t| {
            out.push_str(&json_string(t));
        });
        out.push_str("\n}\n");
        out
    }

    /// Writes the report as pretty JSON.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn write_json(&self, path: &str) {
        std::fs::write(path, self.to_json()).expect("write report file");
    }
}

/// Emits the entries of a map as `"key": <value>` pairs; the caller
/// has already written the opening `{` and writes the closing brace's
/// line itself.
fn emit_map<V>(out: &mut String, map: &BTreeMap<String, V>, mut emit: impl FnMut(&mut String, &V)) {
    let mut first = true;
    for (k, v) in map {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        out.push_str(&json_string(k));
        out.push_str(": ");
        emit(out, v);
    }
    if map.is_empty() {
        out.push('}');
    } else {
        out.push_str("\n  }");
    }
}

fn emit_num_array(out: &mut String, name: &str, xs: &[f64], indent: usize) {
    let pad = " ".repeat(indent);
    let _ = write!(out, "{pad}\"{name}\": [");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_num(*x));
    }
    out.push(']');
}

/// Finite-number JSON rendering; NaN/inf become null (like serde_json).
fn json_num(x: f64) -> String {
    if x.is_finite() {
        // Shortest representation that round-trips.
        let s = format!("{x}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_structure() {
        let mut r = Report::new(10, 2);
        r.series("s1", &[1.5, 2.0], &[1.0, 0.0]);
        r.scalar("x", 3.25, 0.0);
        r.text("t", "line1\nline\"2\"".to_string());
        let j = r.to_json();
        assert!(j.contains("\"iterations\": 10,"));
        assert!(j.contains("\"measured\": [1.5, 2.0]"));
        // The second point's paper value is 0.0: relative error is
        // undefined there, and must surface as null, not 0.
        assert!(j.contains("\"err_pct\": [50.0, null]"));
        assert!(j.contains("\"x\": { \"measured\": 3.25, \"paper\": 0.0 }"));
        assert!(j.contains("line1\\nline\\\"2\\\""));
        // Balanced braces/brackets, since nothing nests beyond depth 2.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced JSON: {j}"
        );
    }
}
