//! Machine-readable result collection for the `repro` binary.
//!
//! Every table the binary prints is also recorded here as measured
//! series paired with the paper's values, and can be dumped as JSON
//! (used to generate `EXPERIMENTS.md`).

use serde::Serialize;
use std::collections::BTreeMap;

/// One measured series against the paper's.
#[derive(Serialize)]
pub struct Series {
    /// Measured values (one per paper size, usually).
    pub measured: Vec<f64>,
    /// The paper's published values.
    pub paper: Vec<f64>,
    /// Per-point relative error in percent.
    pub err_pct: Vec<f64>,
}

/// One scalar comparison.
#[derive(Serialize)]
pub struct Scalar {
    /// Measured value.
    pub measured: f64,
    /// The paper's value (0 when the paper gives no number).
    pub paper: f64,
}

/// The full report.
#[derive(Serialize)]
pub struct Report {
    /// Iterations per repetition used for the runs.
    pub iterations: u64,
    /// Repetitions averaged.
    pub reps: u64,
    /// Named series.
    pub series: BTreeMap<String, Series>,
    /// Named scalars.
    pub scalars: BTreeMap<String, Scalar>,
    /// Rendered table texts.
    pub texts: BTreeMap<String, String>,
}

impl Report {
    /// Creates an empty report.
    #[must_use]
    pub fn new(iterations: u64, reps: u64) -> Self {
        Report {
            iterations,
            reps,
            series: BTreeMap::new(),
            scalars: BTreeMap::new(),
            texts: BTreeMap::new(),
        }
    }

    /// Records a measured-vs-paper series.
    pub fn series(&mut self, name: &str, measured: &[f64], paper: &[f64]) {
        let err_pct = measured
            .iter()
            .zip(paper)
            .map(|(&m, &p)| if p == 0.0 { 0.0 } else { (m - p) / p * 100.0 })
            .collect();
        self.series.insert(
            name.to_string(),
            Series {
                measured: measured.to_vec(),
                paper: paper.to_vec(),
                err_pct,
            },
        );
    }

    /// Records a scalar comparison.
    pub fn scalar(&mut self, name: &str, measured: f64, paper: f64) {
        self.scalars
            .insert(name.to_string(), Scalar { measured, paper });
    }

    /// Records a rendered table.
    pub fn text(&mut self, name: &str, text: String) {
        self.texts.insert(name.to_string(), text);
    }

    /// Writes the report as pretty JSON.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn write_json(&self, path: &str) {
        let json = serde_json::to_string_pretty(self).expect("report serializes");
        std::fs::write(path, json).expect("write report file");
    }
}
