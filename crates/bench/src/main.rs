//! `repro` — regenerates every table and figure of *Latency Analysis
//! of TCP on an ATM Network* from the simulation, printing measured
//! values side by side with the paper's published numbers.
//!
//! ```sh
//! repro [all|table1|table2|table3|table4|table5|table6|table7|pcb|mbuf|predict|errors]
//!       [faults|churn|ablation|switch|ethernet-errors|trace]
//!       [dc] [tails] [hedge] [cc]
//!       [verify [--bless] [--dump-live] [--golden-dir DIR]] [invariants] [bench]
//!       [--iterations N] [--reps N] [--jobs N] [--seed N] [--json FILE]
//!       [--sweep-json FILE] [--out-dir DIR] [--full] [--quick] [--sketch]
//! ```
//!
//! The second group are extension experiments beyond the paper's
//! tables; `repro all` runs the tables, `repro extras` the extensions.
//!
//! `--full` uses the paper's methodology scale (40 000 iterations ×
//! 3 repetitions); `--quick` is the CI fast pass (200 × 1); the
//! default produces the same means (the simulation is deterministic,
//! so extra iterations only confirm stability).
//!
//! The shared flags mean the same thing under every subcommand:
//! `--jobs N` fans work across N sweep workers; `--quick` selects the
//! CI scale; `--json FILE` writes that subcommand's machine-readable
//! results; `--seed N` is the base seed of every directly seeded
//! experiment (default 1). Sweep-grid cells derive their seeds from
//! their cell keys instead — that is what pins the blessed goldens —
//! so `--seed` shifts the directly seeded studies (`predict`,
//! `switch`, `udp`, `errors`, `invariants`, `bench`) and never the
//! golden grids. All output files land under `--out-dir` (default
//! `out/`, created on demand); absolute paths are honoured as given.
//!
//! The table experiments are declared as one grid and executed by the
//! deterministic parallel sweep runner (`crates/sweep`): cells shared
//! between tables (the ATM baseline appears in Tables 1, 2/3, 4, 6
//! and 7) run once, `--jobs N` fans the grid across N workers
//! (default: available parallelism), and the printed tables are
//! byte-identical at every worker count. `--sweep-json` dumps the
//! per-cell report (mean/stddev/min/max, events, host wall-clock).

mod report;

use latency_core::experiment::{Experiment, NetKind};
use latency_core::{faults, micro, paper, tables};
use report::Report;
use simcap::Quantiles as _;
use sweep::grid::Variant;
use sweep::{Sweep, SweepResults};

/// Command-line options. The scale/fan-out/seed/output flags are
/// shared by every subcommand and mean the same thing under each.
struct Opts {
    what: Vec<String>,
    iterations: u64,
    reps: u64,
    jobs: usize,
    /// Base seed for directly seeded experiments (grid cells keep
    /// their key-derived seeds, which is what pins the goldens).
    seed: u64,
    /// Whether the scale flags were the `--quick` CI pass.
    quick: bool,
    json: Option<String>,
    sweep_json: Option<String>,
    /// Directory every output file is written under.
    out_dir: String,
    bless: bool,
    /// `verify --dump-live`: also write each grid's live canonical
    /// JSON under `--out-dir`, for byte-level comparison in tests/CI.
    dump_live: bool,
    golden_dir: String,
    /// Record study completions in mergeable-sketch mode instead of
    /// exact pooled samples; under `bench`, also run the
    /// million-sample sketch benchmark and gate on it.
    sketch: bool,
}

fn parse_args() -> Opts {
    let mut what = Vec::new();
    let mut iterations = 1500;
    let mut reps = 1;
    let mut jobs = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut seed = 1;
    let mut quick = false;
    let mut json = None;
    let mut sweep_json = None;
    let mut out_dir = String::from("out");
    let mut bless = false;
    let mut dump_live = false;
    let mut golden_dir = String::from("tests/golden");
    let mut sketch = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--iterations" => {
                iterations = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iterations N");
            }
            "--reps" => {
                reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N");
            }
            "--jobs" => {
                jobs = args.next().and_then(|v| v.parse().ok()).expect("--jobs N");
                assert!(jobs >= 1, "--jobs needs at least one worker");
            }
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N");
            }
            "--json" => json = Some(args.next().expect("--json FILE")),
            "--sweep-json" => sweep_json = Some(args.next().expect("--sweep-json FILE")),
            "--out-dir" => out_dir = args.next().expect("--out-dir DIR"),
            "--bless" => bless = true,
            "--dump-live" => dump_live = true,
            "--golden-dir" => golden_dir = args.next().expect("--golden-dir DIR"),
            "--sketch" => sketch = true,
            "--full" => {
                iterations = 40_000;
                reps = 3;
                quick = false;
            }
            "--quick" => {
                iterations = 200;
                reps = 1;
                quick = true;
            }
            other if !other.starts_with('-') => what.push(other.to_string()),
            other => panic!("unknown flag {other}"),
        }
    }
    if what.is_empty() {
        what.push("all".to_string());
    }
    Opts {
        what,
        iterations,
        reps,
        jobs,
        seed,
        quick,
        json,
        sweep_json,
        out_dir,
        bless,
        dump_live,
        golden_dir,
        sketch,
    }
}

/// The observation mode the study subcommands run under.
fn obs_mode(opts: &Opts) -> latency_core::ObsMode {
    if opts.sketch {
        latency_core::ObsMode::Sketch
    } else {
        latency_core::ObsMode::Exact
    }
}

/// Resolves an output file under `--out-dir`, creating the directory.
/// Absolute paths are honoured as given.
fn out_path(opts: &Opts, file: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(file);
    if p.is_absolute() {
        return p.to_path_buf();
    }
    let dir = std::path::Path::new(&opts.out_dir);
    std::fs::create_dir_all(dir).expect("create out dir");
    dir.join(p)
}

fn main() {
    let opts = parse_args();
    if opts.what.iter().any(|w| w == "verify") {
        std::process::exit(cmd_verify(&opts));
    }
    if opts.what.iter().any(|w| w == "invariants") {
        std::process::exit(cmd_invariants(&opts));
    }
    if opts.what.iter().any(|w| w == "bench") {
        std::process::exit(cmd_bench(&opts));
    }
    if opts.what.iter().any(|w| w == "dc") {
        std::process::exit(cmd_dc(&opts));
    }
    if opts.what.iter().any(|w| w == "tails") {
        std::process::exit(cmd_tails(&opts));
    }
    if opts.what.iter().any(|w| w == "hedge") {
        std::process::exit(cmd_hedge(&opts));
    }
    if opts.what.iter().any(|w| w == "cc") {
        std::process::exit(cmd_cc(&opts));
    }
    let mut report = Report::new(opts.iterations, opts.reps);
    let all = opts.what.iter().any(|w| w == "all");
    let want = |k: &str| all || opts.what.iter().any(|w| w == k);
    let extras = opts.what.iter().any(|w| w == "extras");
    let want_x = |k: &str| extras || opts.what.iter().any(|w| w == k);

    // Phase 1: declare the full grid up front. `ensure` deduplicates
    // cells shared between tables — the ATM baseline appears in
    // Tables 1, 2/3, 4, 6 and 7 but runs once.
    let mut sw = Sweep::new("repro");
    if want("table1") {
        for &size in &paper::SIZES {
            declare_rpc(&mut sw, NetKind::Atm, size, Variant::Base, &opts);
            declare_rpc(&mut sw, NetKind::Ether, size, Variant::Base, &opts);
        }
    }
    if want("table2") || want("table3") {
        for &size in &paper::SIZES {
            declare_rpc(&mut sw, NetKind::Atm, size, Variant::Base, &opts);
        }
    }
    if want("table4") {
        for &size in &paper::SIZES {
            declare_rpc(&mut sw, NetKind::Atm, size, Variant::Base, &opts);
            declare_rpc(&mut sw, NetKind::Atm, size, Variant::NoPrediction, &opts);
        }
    }
    if want("table6") {
        for &size in &paper::SIZES {
            declare_rpc(&mut sw, NetKind::Atm, size, Variant::Base, &opts);
            declare_rpc(
                &mut sw,
                NetKind::Atm,
                size,
                Variant::IntegratedChecksum,
                &opts,
            );
        }
    }
    if want("table7") {
        for &size in &paper::SIZES {
            declare_rpc(&mut sw, NetKind::Atm, size, Variant::Base, &opts);
            declare_rpc(&mut sw, NetKind::Atm, size, Variant::NoChecksum, &opts);
        }
    }
    if want_x("faults") {
        declare_faults(&mut sw, &opts);
    }

    // Phase 2: one deterministic parallel run over the merged grid.
    let grid = if sw.is_empty() {
        None
    } else {
        eprintln!(
            "sweep: {} cell(s) across {} worker(s)...",
            sw.len(),
            opts.jobs
        );
        Some(sw.run(opts.jobs))
    };
    if let Some(path) = &opts.sweep_json {
        match &grid {
            Some(grid) => {
                let p = out_path(&opts, path);
                std::fs::write(&p, grid.to_json()).expect("write sweep json");
                eprintln!("sweep report written to {}", p.display());
            }
            None => eprintln!("sweep-json: no grid cells were declared; nothing written"),
        }
    }

    // Phase 3: render the tables, in table order, from the merged
    // results. Rendering recomputes each cell's key; `expect` turns
    // any declaration/rendering mismatch into a named panic.
    if want("table1") {
        table1(&mut report, &opts, grid.as_ref().expect("grid"));
    }
    if want("table2") || want("table3") {
        tables_2_3(&mut report, &opts, grid.as_ref().expect("grid"));
    }
    if want("table4") {
        table4(&mut report, &opts, grid.as_ref().expect("grid"));
    }
    if want("table5") {
        table5(&mut report);
    }
    if want("table6") {
        table6(&mut report, &opts, grid.as_ref().expect("grid"));
    }
    if want("table7") {
        table7(&mut report, &opts, grid.as_ref().expect("grid"));
    }
    if want("pcb") {
        pcb(&mut report);
    }
    if want("mbuf") {
        mbuf_bench(&mut report);
    }
    if want("predict") {
        predict_stats(&mut report, &opts);
    }
    if want("errors") {
        errors(&mut report, &opts);
    }
    if want_x("faults") {
        faults_study(&mut report, &opts, grid.as_ref().expect("grid"));
    }
    if want_x("churn") {
        churn_exp(&mut report);
    }
    if want_x("ablation") {
        ablation_exp(&mut report, &opts);
    }
    if want_x("switch") {
        switch_exp(&mut report, &opts);
    }
    if want_x("ethernet-errors") {
        ethernet_errors(&mut report, &opts);
    }
    if want_x("udp") {
        udp_exp(&mut report, &opts);
    }
    if want_x("trace") {
        trace_timeline(&opts);
    }

    if let Some(path) = &opts.json {
        let p = out_path(&opts, path);
        report.write_json(&p.to_string_lossy());
        eprintln!("machine-readable results written to {}", p.display());
    }
}

/// The message sizes of the loss-recovery study: one single-segment
/// size and one that the 9180-byte ATM MSS still carries whole but
/// whose longer 176-cell train gives bursts more to bite on.
const FAULT_SIZES: [usize; 2] = [1400, 8000];

fn fault_iters(opts: &Opts) -> u64 {
    // Faulted runs pay real retransmission timeouts (hundreds of ms of
    // simulated time each); cap the scale so `--full` stays pleasant.
    opts.iterations.min(400)
}

/// The grid key of a loss-recovery cell. Declaration and rendering
/// share this, exactly like the table cells.
fn fault_key(scenario: &str, size: usize, opts: &Opts) -> String {
    sweep::grid::fault_cell_key(scenario, size, fault_iters(opts), opts.reps)
}

fn declare_faults(sw: &mut Sweep, opts: &Opts) {
    for sc in latency_core::recovery::scenarios() {
        for &size in &FAULT_SIZES {
            sw.ensure(
                fault_key(sc.name, size, opts),
                latency_core::recovery::experiment(&sc, size, fault_iters(opts)),
                opts.reps,
            );
        }
    }
}

fn faults_study(report: &mut Report, opts: &Opts, grid: &SweepResults) {
    eprintln!("faults: loss-recovery latency study...");
    use latency_core::recovery;
    let mut rows = Vec::new();
    for &size in &FAULT_SIZES {
        let clean_mean = grid
            .expect(&fault_key("clean", size, opts))
            .result
            .mean_rtt_us();
        for sc in recovery::scenarios() {
            let r = &grid.expect(&fault_key(sc.name, size, opts)).result;
            rows.push(recovery::reduce(sc.name, size, r, clean_mean));
        }
    }
    let mut text = recovery::format_table(&rows);
    let corrupted: u64 = rows.iter().map(|r| r.verify_failures).sum();
    text.push_str(&format!(
        "payload verification failures across every scenario: {corrupted}\n"
    ));
    assert_eq!(
        corrupted, 0,
        "faults must cost latency, never integrity: {rows:?}"
    );
    println!("{text}");
    report.text("faults", text);
}

fn churn_exp(report: &mut Report) {
    eprintln!("churn: live connections under both PCB organizations...");
    use tcpip::config::PcbOrg;
    let mut text = String::from(
        "connection churn: server TCP-input cost for a segment on the OLDEST
         of n live connections (three-way handshakes, real SYN options)
",
    );
    text.push_str(&format!(
        "{:>6} | {:>14} {:>14} {:>14}
",
        "conns", "list(us)", "list+cache(us)", "hash(us)"
    ));
    for &n in &[5usize, 25, 100, 250] {
        let list = latency_core::churn::churn(n, PcbOrg::List);
        let hash = latency_core::churn::churn(n, PcbOrg::Hash);
        text.push_str(&format!(
            "{n:>6} | {:>14.1} {:>14.1} {:>14.1}
",
            list.oldest_input_us, list.cached_input_us, hash.oldest_input_us
        ));
    }
    text.push_str(
        "=> the list organization pays ~1.28 us per connection on a cache
   miss; the hash table is flat, as the paper predicted (§3).
",
    );
    println!("{text}");
    report.text("churn", text);
}

fn ablation_exp(report: &mut Report, opts: &Opts) {
    eprintln!("ablation: CPU scaling, checksum algorithms, MSS rounding...");
    let iters = opts.iterations.min(400);
    let pts = latency_core::ablation::cpu_scaling(&[1.0, 2.0, 4.0, 10.0, 40.0], iters);
    let mut text = String::from(
        "CPU scaling (host speedup over the 25 MHz R3000; wire fixed at 140 Mbit/s)
",
    );
    text.push_str(&format!(
        "{:>8} | {:>10} {:>10} {:>16}
",
        "speedup", "rtt4(us)", "rtt8k(us)", "elim saving(%)"
    ));
    for p in &pts {
        text.push_str(&format!(
            "{:>8.0} | {:>10.0} {:>10.0} {:>16.1}
",
            p.speedup, p.rtt4_us, p.rtt8k_us, p.elim_saving_pct
        ));
    }
    text.push_str(
        "=> a wire/adapter latency floor remains; the checksum question
   fades as CPUs outrun the link (§1's technology question, forwards).

",
    );
    let impls = latency_core::ablation::checksum_impls(8000, iters);
    text.push_str(
        "kernel checksum algorithm at 8000 B:
",
    );
    for (which, rtt) in impls {
        text.push_str(&format!(
            "  {which:?}: {rtt:.0} us
"
        ));
    }
    let (two, one) = latency_core::ablation::mss_rounding(iters);
    text.push_str(&format!(
        "
MSS rounding at 8000 B: two 4096-byte segments {two:.0} us vs one
         8192-MSS segment {one:.0} us — the page-sized segments WIN by
         pipelining receive processing against wire time.
"
    ));
    println!("{text}");
    report.text("ablation", text);
}

fn switch_exp(report: &mut Report, opts: &Opts) {
    eprintln!("switch: switched vs switchless path...");
    let iters = opts.iterations.min(500);
    let mut text = String::from(
        "ATM switch in the path (the paper's testbed was switchless)
",
    );
    text.push_str(&format!(
        "{:>6} | {:>12} {:>12} {:>8}
",
        "size", "direct(us)", "switched(us)", "delta"
    ));
    for &size in &[4usize, 1400, 8000] {
        let mut d = Experiment::rpc(NetKind::Atm, size);
        d.iterations = iters;
        let mut s =
            Experiment::rpc(NetKind::Atm, size).through_switch(atm::SwitchConfig::default());
        s.iterations = iters;
        let direct = d.plan().seed(opts.seed).execute().mean_rtt_us();
        let switched = s.plan().seed(opts.seed).execute().mean_rtt_us();
        text.push_str(&format!(
            "{size:>6} | {direct:>12.0} {switched:>12.0} {:>8.0}
",
            switched - direct
        ));
    }
    // Fabric corruption is caught end to end even without the TCP
    // checksum (§4.2.1 error source #1).
    let mut e = Experiment::rpc(NetKind::Atm, 1400).without_checksum();
    e.iterations = iters;
    e.switch = Some(atm::SwitchConfig {
        corrupt_prob: 0.001,
        ..atm::SwitchConfig::default()
    });
    let r = e.plan().seed(opts.seed).execute();
    text.push_str(&format!(
        "
fabric corruption, TCP checksum OFF: {} AAL3/4 drops, {} app-visible
         corruptions — the end-to-end AAL CRC covers the switch, as §4.2.1 argues.
",
        r.client_nic.aal_drops + r.server_nic.aal_drops,
        r.verify_failures
    ));
    println!("{text}");
    report.text("switch", text);
}

fn ethernet_errors(report: &mut Report, opts: &Opts) {
    eprintln!("ethernet-errors: the departmental-Ethernet observation...");
    let iters = opts.iterations.min(300);
    let local = faults::departmental_ethernet(1e-5, 0.0, iters, opts.seed.wrapping_add(8));
    let mixed = faults::departmental_ethernet(1e-5, 0.005, iters, opts.seed.wrapping_add(9));
    let text = format!(
        "departmental Ethernet (§4.2.1): errors caught by the FCS vs TCP
         local traffic only : CRC {} / TCP {}  (paper: TCP detected none)
         with WAN traffic   : CRC {} / TCP {}  (paper: TCP ~100x fewer)
",
        local.caught_by_crc, local.caught_by_tcp, mixed.caught_by_crc, mixed.caught_by_tcp
    );
    println!("{text}");
    report.text("ethernet_errors", text);
}

fn udp_exp(report: &mut Report, opts: &Opts) {
    eprintln!("udp: TCP vs UDP RPC latency...");
    let iters = opts.iterations.min(800);
    let mut text = String::from(
        "RPC echo over ATM: TCP vs UDP (extension; the comparison behind
         §1's 'is TCP a viable transport for RPC?')
",
    );
    text.push_str(&format!(
        "{:>6} | {:>9} {:>9} {:>12}
",
        "size", "tcp(us)", "udp(us)", "tcp extra(%)"
    ));
    for &size in &paper::SIZES {
        let mut t = Experiment::rpc(NetKind::Atm, size);
        t.iterations = iters;
        let mut u = Experiment::udp_rpc(NetKind::Atm, size);
        u.iterations = iters;
        let tcp = t.plan().seed(opts.seed).execute().mean_rtt_us();
        let udp = u.plan().seed(opts.seed).execute().mean_rtt_us();
        text.push_str(&format!(
            "{size:>6} | {tcp:>9.0} {udp:>9.0} {:>12.1}
",
            (tcp / udp - 1.0) * 100.0
        ));
    }
    text.push_str(
        "=> TCP costs ~30% over a bare datagram exchange at small sizes — the
         price of reliability state, mcopy and the heavier input path — and
         the gap closes with size until TCP WINS at 8 KB: its two page-sized
         segments pipeline receive processing against wire time, while the
         single large UDP datagram serializes. Same order of magnitude
         throughout, supporting the paper's 'viable for RPC' conclusion.
",
    );
    println!("{text}");
    report.text("udp", text);
}

/// Prints an annotated timeline of one 1400-byte RPC iteration —
/// every probe interval the instrumentation recorded, in order.
fn trace_timeline(opts: &Opts) {
    let mut e = Experiment::rpc(NetKind::Atm, 1400);
    e.iterations = 1;
    e.warmup = 2;
    // Rebuild at the world level to keep the recorder.
    use latency_core::app::{App, Role};
    use latency_core::nic::{AtmNic, Nic};
    use latency_core::world::{run_world, World};
    let costs = e.costs.clone();
    let apps = [
        App::new(Role::RpcClient, e.size, e.iterations, e.warmup),
        App::new(Role::RpcServer, e.size, u64::MAX / 4, 0),
    ];
    let nics = [
        Nic::Atm(AtmNic::new(
            atm::FiberLink::new(atm::LinkConfig::default(), opts.seed),
            costs.clone(),
            42,
            opts.seed,
        )),
        Nic::Atm(AtmNic::new(
            atm::FiberLink::new(atm::LinkConfig::default(), opts.seed.wrapping_add(1)),
            costs.clone(),
            42,
            opts.seed.wrapping_add(1),
        )),
    ];
    let sim = run_world(World::new(e.cfg, costs, nics, apps));
    println!("timeline of one 1400-byte RPC iteration (client side, us relative to write()):");
    let rec = &sim.world.hosts[0].kernel.spans;
    let t0 = rec
        .marks()
        .iter()
        .find(|(m, _)| *m == tcpip::Mark::WriteStart)
        .map_or(simkit::SimTime::ZERO, |&(_, t)| t);
    let mut events: Vec<(f64, String)> = rec
        .spans()
        .iter()
        .map(|s| {
            (
                s.start.saturating_since(t0).as_us_f64(),
                format!(
                    "{:>9.1} ..{:>9.1}  {:?}",
                    s.start.saturating_since(t0).as_us_f64(),
                    s.end.saturating_since(t0).as_us_f64(),
                    s.kind
                ),
            )
        })
        .collect();
    events.extend(rec.marks().iter().map(|&(m, t)| {
        (
            t.saturating_since(t0).as_us_f64(),
            format!(
                "{:>9.1}              * {m:?}",
                t.saturating_since(t0).as_us_f64()
            ),
        )
    }));
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    for (_, line) in events {
        println!("{line}");
    }
}

fn effective_iterations(net: NetKind, opts: &Opts) -> u64 {
    // Ethernet at 8 KB is ~20 ms per iteration of simulated time; cap
    // the slow substrate so full runs stay pleasant.
    if net == NetKind::Ether {
        opts.iterations.min(4_000)
    } else {
        opts.iterations
    }
}

fn rpc(net: NetKind, size: usize, opts: &Opts) -> Experiment {
    let mut e = Experiment::rpc(net, size);
    e.iterations = effective_iterations(net, opts);
    e.warmup = 16;
    e
}

/// The grid key of an RPC cell. Declaration and rendering both go
/// through this, so a key mismatch between the two is impossible.
fn rpc_key(net: NetKind, size: usize, v: Variant, opts: &Opts) -> String {
    sweep::grid::rpc_cell_key(net, size, v, effective_iterations(net, opts), opts.reps)
}

fn declare_rpc(sw: &mut Sweep, net: NetKind, size: usize, v: Variant, opts: &Opts) {
    sw.ensure(
        rpc_key(net, size, v, opts),
        v.apply(rpc(net, size, opts)),
        opts.reps,
    );
}

fn table1(report: &mut Report, opts: &Opts, grid: &SweepResults) {
    eprintln!("table1: ATM vs Ethernet rendering...");
    let mean = |net, size| grid.mean_us(&rpc_key(net, size, Variant::Base, opts));
    let atm: Vec<f64> = paper::SIZES
        .iter()
        .map(|&s| mean(NetKind::Atm, s))
        .collect();
    let eth: Vec<f64> = paper::SIZES
        .iter()
        .map(|&s| mean(NetKind::Ether, s))
        .collect();
    let text = tables::rtt_comparison(
        "Table 1: ATM vs Ethernet round-trip times",
        "Ether",
        "ATM",
        &paper::SIZES,
        &eth,
        &atm,
        &paper::T1_ETHERNET_RTT,
        &paper::T1_ATM_RTT,
    );
    println!("{text}");
    report.series("table1.atm_rtt_us", &atm, &paper::T1_ATM_RTT);
    report.series("table1.ether_rtt_us", &eth, &paper::T1_ETHERNET_RTT);
    report.text("table1", text);
}

fn tables_2_3(report: &mut Report, opts: &Opts, grid: &SweepResults) {
    eprintln!("table2/3: breakdown rendering...");
    let mut txs = Vec::new();
    let mut rxs = Vec::new();
    for &size in &paper::SIZES {
        let r = &grid
            .expect(&rpc_key(NetKind::Atm, size, Variant::Base, opts))
            .result;
        txs.push(r.tx);
        rxs.push(r.rx);
    }
    let t2 = tables::table2(&paper::SIZES, &txs);
    let t3 = tables::table3(&paper::SIZES, &rxs);
    println!("{t2}");
    println!("{t3}");
    report.series(
        "table2.total_us",
        &txs.iter().map(|t| t.total()).collect::<Vec<_>>(),
        &paper::t2::TOTAL,
    );
    report.series(
        "table3.total_us",
        &rxs.iter().map(|t| t.total()).collect::<Vec<_>>(),
        &paper::t3::TOTAL,
    );
    report.text("table2", t2);
    report.text("table3", t3);
}

fn table4(report: &mut Report, opts: &Opts, grid: &SweepResults) {
    eprintln!("table4: header prediction on/off...");
    let mut with = Vec::new();
    let mut without = Vec::new();
    for &size in &paper::SIZES {
        with.push(grid.mean_us(&rpc_key(NetKind::Atm, size, Variant::Base, opts)));
        without.push(grid.mean_us(&rpc_key(NetKind::Atm, size, Variant::NoPrediction, opts)));
    }
    let text = tables::rtt_comparison(
        "Table 4: effect of header prediction",
        "NoPred",
        "Pred",
        &paper::SIZES,
        &without,
        &with,
        &paper::T4_NO_PREDICTION_RTT,
        &paper::T1_ATM_RTT,
    );
    println!("{text}");
    let fig = tables::ascii_figure(
        "Figure 1: Effects of Header Prediction (round-trip time, us)",
        &paper::SIZES,
        &[("with prediction", &with), ("without prediction", &without)],
        16,
    );
    println!("{fig}");
    report.series(
        "table4.no_prediction_rtt_us",
        &without,
        &paper::T4_NO_PREDICTION_RTT,
    );
    report.text("table4", text);
    report.text("figure1", fig);
}

fn table5(report: &mut Report) {
    eprintln!("table5: user-level copy & checksum (modelled DECstation costs)...");
    let costs = decstation::CostModel::calibrated();
    let rows = micro::table5_model(&costs, &paper::SIZES);
    let mut text = String::from("Table 5: copy and checksum costs (modelled us, measured/paper)\n");
    text.push_str(&format!(
        "{:>6} | {:>13} {:>13} {:>13} {:>13} {:>8}\n",
        "size", "ULTRIXcksum", "bcopy", "opt.cksum", "integrated", "save%"
    ));
    let mut integ_series = Vec::new();
    for (i, &size) in paper::SIZES.iter().enumerate() {
        let [u, b, o, g] = rows[i];
        let save = (1.0 - g / (b + o)) * 100.0;
        text.push_str(&format!(
            "{size:>6} | {u:>6.0}/{:<6.0} {b:>6.0}/{:<6.0} {o:>6.0}/{:<6.0} {g:>6.0}/{:<6.0} {save:>8.1}\n",
            paper::t5::ULTRIX_CKSUM[i],
            paper::t5::BCOPY[i],
            paper::t5::OPT_CKSUM[i],
            paper::t5::INTEGRATED[i],
        ));
        integ_series.push(g);
    }
    println!("{text}");
    // Figure 2: the three strategies for copy+checksum.
    let copy_ultrix: Vec<f64> = paper::SIZES
        .iter()
        .enumerate()
        .map(|(i, _)| rows[i][0] + rows[i][1])
        .collect();
    let copy_opt: Vec<f64> = paper::SIZES
        .iter()
        .enumerate()
        .map(|(i, _)| rows[i][2] + rows[i][1])
        .collect();
    let fig = tables::ascii_figure(
        "Figure 2: Copy and Checksum Measurements (us)",
        &paper::SIZES,
        &[
            ("copy & ULTRIX checksum", &copy_ultrix),
            ("copy & optimized checksum", &copy_opt),
            ("integrated copy & checksum", &integ_series),
        ],
        16,
    );
    println!("{fig}");
    // Native shape check: the real routines on this machine.
    let mut native = String::from("Native (this machine) checksum routine times, ns/call:\n");
    native.push_str(&format!(
        "{:>6} {:>12} {:>12} {:>12}\n",
        "size", "ultrix", "optimized", "copy+cksum"
    ));
    for &size in &paper::SIZES {
        let [u, o, i] = micro::native_cksum_ns(size, 2000);
        native.push_str(&format!("{size:>6} {u:>12.0} {o:>12.0} {i:>12.0}\n"));
    }
    println!("{native}");
    report.series(
        "table5.integrated_us",
        &integ_series,
        &paper::t5::INTEGRATED,
    );
    report.text("table5", text);
    report.text("figure2", fig);
    report.text("table5_native", native);
}

fn table6(report: &mut Report, opts: &Opts, grid: &SweepResults) {
    eprintln!("table6: integrated copy-and-checksum kernel...");
    let mut base = Vec::new();
    let mut integ = Vec::new();
    for &size in &paper::SIZES {
        base.push(grid.mean_us(&rpc_key(NetKind::Atm, size, Variant::Base, opts)));
        integ.push(grid.mean_us(&rpc_key(
            NetKind::Atm,
            size,
            Variant::IntegratedChecksum,
            opts,
        )));
    }
    let text = tables::rtt_comparison(
        "Table 6: standard vs combined copy-and-checksum round trips",
        "Std",
        "Combined",
        &paper::SIZES,
        &base,
        &integ,
        &paper::T1_ATM_RTT,
        &paper::T6_COMBINED_RTT,
    );
    println!("{text}");
    report.series("table6.combined_rtt_us", &integ, &paper::T6_COMBINED_RTT);
    report.text("table6", text);
}

fn table7(report: &mut Report, opts: &Opts, grid: &SweepResults) {
    eprintln!("table7: checksum elimination...");
    let mut base = Vec::new();
    let mut none = Vec::new();
    for &size in &paper::SIZES {
        base.push(grid.mean_us(&rpc_key(NetKind::Atm, size, Variant::Base, opts)));
        none.push(grid.mean_us(&rpc_key(NetKind::Atm, size, Variant::NoChecksum, opts)));
    }
    let text = tables::rtt_comparison(
        "Table 7: round trips with and without the TCP checksum",
        "Cksum",
        "NoCksum",
        &paper::SIZES,
        &base,
        &none,
        &paper::T1_ATM_RTT,
        &paper::T7_NO_CKSUM_RTT,
    );
    println!("{text}");
    report.series("table7.no_cksum_rtt_us", &none, &paper::T7_NO_CKSUM_RTT);
    report.text("table7", text);
}

fn pcb(report: &mut Report) {
    eprintln!("pcb: lookup scaling (§3)...");
    let costs = decstation::CostModel::calibrated();
    let lengths = [20usize, 50, 100, 250, 500, 750, 1000];
    let pts = micro::pcb_lookup_sweep(&costs, &lengths);
    let fit = micro::pcb_lookup_fit(&pts).expect("fit");
    let mut text = String::from(
        "PCB linear-search cost (paper: 20 -> 26 us, 1000 -> 1280 us, ~1.3 us/entry)\n",
    );
    text.push_str(&format!(
        "{:>8} {:>12} {:>12}\n",
        "entries", "model(us)", "steps"
    ));
    for p in &pts {
        text.push_str(&format!(
            "{:>8} {:>12.1} {:>12}\n",
            p.entries, p.model_us, p.real_steps
        ));
    }
    text.push_str(&format!(
        "fit: {:.3} us/entry (r^2 = {:.6}); paper: ~{} us/entry\n",
        fit.slope,
        fit.r_squared,
        paper::PCB_PER_ENTRY_US
    ));
    println!("{text}");
    report.scalar("pcb.slope_us_per_entry", fit.slope, paper::PCB_PER_ENTRY_US);
    report.text("pcb", text);
}

fn mbuf_bench(report: &mut Report) {
    eprintln!("mbuf: allocator microbenchmark (§2.2.1)...");
    let costs = decstation::CostModel::calibrated();
    let us = micro::mbuf_pair_cost_us(&costs);
    let text = format!(
        "mbuf allocate+free pair: {us:.1} us (paper: just over {} us)\n",
        paper::MBUF_ALLOC_FREE_US
    );
    println!("{text}");
    report.scalar("mbuf.alloc_free_pair_us", us, paper::MBUF_ALLOC_FREE_US);
    report.text("mbuf", text);
}

fn predict_stats(report: &mut Report, opts: &Opts) {
    eprintln!("predict: fast-path statistics (§3)...");
    let r = rpc(NetKind::Atm, 200, opts)
        .plan()
        .seed(opts.seed)
        .execute();
    let rpc_rate = 100.0 * (r.client_tcp.predict_data_hits + r.client_tcp.predict_ack_hits) as f64
        / r.client_tcp.predict_checks.max(1) as f64;
    let b = Experiment::bulk(NetKind::Atm, 4000, opts.iterations.min(2_000))
        .plan()
        .seed(opts.seed)
        .execute();
    let bulk_rate =
        100.0 * b.server_tcp.predict_data_hits as f64 / b.server_tcp.predict_checks.max(1) as f64;
    let r8k = rpc(NetKind::Atm, 8000, opts)
        .plan()
        .seed(opts.seed)
        .execute();
    let second_seg =
        100.0 * r8k.client_tcp.predict_data_hits as f64 / (2.0 * r8k.rtts.len() as f64);
    let text = format!(
        "header-prediction fast path hit rates:\n\
         RPC 200 B client:         {rpc_rate:>5.1}%  (paper: fails for piggybacked-ACK RPC)\n\
         bulk 4000 B receiver:     {bulk_rate:>5.1}%  (paper: the case it was built for)\n\
         RPC 8000 B data segments: {second_seg:>5.1}%  (paper: succeeds for half: the 2nd of 2)\n"
    );
    println!("{text}");
    report.scalar("predict.rpc_rate_pct", rpc_rate, 0.0);
    report.scalar("predict.bulk_rate_pct", bulk_rate, 100.0);
    report.scalar("predict.second_segment_pct", second_seg, 50.0);
    report.text("predict", text);
}

fn errors(report: &mut Report, opts: &Opts) {
    eprintln!("errors: §4.2.1 detection layering...");
    let iters = opts.iterations.min(300);
    let mut text =
        String::from("fault injection (RPC 1400 B): which layer detects each error class\n");
    text.push_str(&format!(
        "{:<34} {:>8} {:>5} {:>5} {:>5} {:>5} {:>7}\n",
        "class", "injected", "HEC", "AAL", "TCP", "app", "rexmit"
    ));
    let mut row = |name: &str, r: &faults::DetectionReport| {
        text.push_str(&format!(
            "{name:<34} {:>8} {:>5} {:>5} {:>5} {:>5} {:>7}\n",
            r.injected_link,
            r.caught_hec,
            r.caught_aal,
            r.caught_tcp,
            r.reached_app,
            r.retransmissions
        ));
    };
    row(
        "fiber BER 1e-5",
        &faults::link_bit_errors(1e-5, iters, opts.seed.wrapping_add(1)),
    );
    row(
        "fiber BER 1e-4",
        &faults::link_bit_errors(1e-4, iters, opts.seed.wrapping_add(2)),
    );
    row(
        "cell loss 0.2%",
        &faults::cell_loss(0.002, iters, opts.seed.wrapping_add(3)),
    );
    let on = faults::controller_corruption(0.03, true, iters, opts.seed.wrapping_add(4));
    let off = faults::controller_corruption(0.03, false, iters, opts.seed.wrapping_add(5));
    row("controller corruption, cksum ON", &on);
    row("controller corruption, cksum OFF", &off);
    text.push_str(
        "=> link errors never pass AAL3/4; controller corruption passes every\n\
         link CRC and reaches the application once the TCP checksum is off —\n\
         the boundary condition of the paper's elimination argument.\n",
    );
    println!("{text}");
    report.scalar(
        "errors.controller_app_hits_cksum_on",
        on.reached_app as f64,
        0.0,
    );
    report.scalar(
        "errors.controller_app_hits_cksum_off",
        off.reached_app as f64,
        1.0,
    );
    report.text("errors", text);
}

// --------------------------------------------------------------------------
// `repro verify` / `repro invariants` — the oracle subcommands.
// --------------------------------------------------------------------------

/// Golden comparisons run at the CI quick scale regardless of which
/// scale flags accompany the command: the blessed files pin their
/// scale into every cell key, so verifying at any other scale could
/// only ever report "cell missing".
fn golden_scale(opts: &Opts) -> Opts {
    Opts {
        what: Vec::new(),
        iterations: 200,
        reps: 1,
        jobs: opts.jobs,
        // Golden cells are seeded from their keys; the base seed is
        // pinned so `--seed` can never manufacture a drift.
        seed: 1,
        quick: true,
        json: None,
        sweep_json: None,
        out_dir: opts.out_dir.clone(),
        bless: opts.bless,
        dump_live: opts.dump_live,
        golden_dir: opts.golden_dir.clone(),
        // Goldens are blessed in exact mode; verify never sketches.
        sketch: false,
    }
}

/// Comparator tolerance for the µs statistics. Grid-pinned integers
/// (seed, reps, samples, events, verify_failures) always compare
/// exactly; the simulation is deterministic, so this headroom only
/// absorbs float-formatting differences, never behaviour.
const GOLDEN_TOL_US: f64 = 0.05;

/// The two golden grids: every Tables 1–7 cell, and the
/// loss-recovery study.
fn golden_grids(q: &Opts) -> [Sweep; 2] {
    let mut tables = Sweep::new("tables");
    for &size in &paper::SIZES {
        for v in Variant::ALL {
            declare_rpc(&mut tables, NetKind::Atm, size, v, q);
        }
        declare_rpc(&mut tables, NetKind::Ether, size, Variant::Base, q);
    }
    let mut faults = Sweep::new("faults");
    declare_faults(&mut faults, q);
    [tables, faults]
}

fn cmd_verify(opts: &Opts) -> i32 {
    let q = golden_scale(opts);
    let mut code = 0;
    let mut summary: Vec<(String, usize, usize)> = Vec::new();
    for grid in golden_grids(&q) {
        let path = format!("{}/{}_quick.json", q.golden_dir, grid.name);
        // Read the golden before paying for the live grid, so a
        // missing or corrupt file fails fast.
        let golden = if q.bless {
            None
        } else {
            let golden_text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!(
                        "verify: cannot read {path}: {e}\n\
                         verify: run `repro verify --bless` to create the goldens"
                    );
                    return 2;
                }
            };
            match oracle::parse_report(&golden_text) {
                Ok(g) => Some(g),
                Err(e) => {
                    eprintln!("verify: {path}: {e}");
                    return 2;
                }
            }
        };
        eprintln!(
            "verify: {}: running {} cell(s) across {} worker(s)...",
            grid.name,
            grid.len(),
            q.jobs
        );
        let live = grid.run(q.jobs);
        let live_json = live.canonical_json();
        if q.dump_live {
            let p = out_path(opts, &format!("{}_live.json", grid.name));
            std::fs::write(&p, &live_json).expect("write live canonical json");
            eprintln!("verify: live canonical grid written to {}", p.display());
        }
        let Some(golden) = golden else {
            std::fs::create_dir_all(&q.golden_dir).expect("create golden dir");
            std::fs::write(&path, &live_json).expect("write golden file");
            eprintln!(
                "verify: blessed {} cell(s) into {path}",
                live.outcomes.len()
            );
            summary.push((grid.name.to_string(), live.outcomes.len(), 0));
            continue;
        };
        let live_rep = oracle::parse_report(&live_json).expect("live canonical json parses");
        let drifts = oracle::compare_reports(&golden, &live_rep, GOLDEN_TOL_US);
        summary.push((grid.name.to_string(), live.outcomes.len(), drifts.len()));
        if drifts.is_empty() {
            eprintln!(
                "verify: {}: {} cell(s) match {path}",
                grid.name,
                live.outcomes.len()
            );
            continue;
        }
        code = 1;
        eprintln!(
            "verify: {}: {} drift(s) against {path}:",
            grid.name,
            drifts.len()
        );
        for d in &drifts {
            eprintln!("  {d}");
        }
        shrink_fault_drifts(&live, &drifts);
    }
    // The world-crate goldens (datacenter incast, tail-at-scale
    // fan-out) follow the same protocol; their grids come from
    // `crates/world` rather than `Sweep`, but the canonical JSON is
    // schema-compatible so the parser and comparator are shared (the
    // tails report's extra percentile fields ride in the comparator's
    // `extras`).
    {
        let cells = world::dc_quick_grid();
        let count = cells.len();
        if let Some(rc) = verify_world_grid(
            opts,
            &q,
            "dc_quick",
            count,
            || world::canonical_json("dc_quick", &world::run_dc_cells(&cells, q.jobs)),
            &mut summary,
            &mut code,
        ) {
            return rc;
        }
    }
    {
        let cells = world::tails_quick_grid();
        let count = cells.len();
        if let Some(rc) = verify_world_grid(
            opts,
            &q,
            "tails_quick",
            count,
            || {
                let results = world::run_tails_cells(&cells, q.jobs);
                world::tails_canonical_json("tails_quick", &cells, &results)
            },
            &mut summary,
            &mut code,
        ) {
            return rc;
        }
    }
    {
        let cells = world::hedge_quick_grid();
        let count = cells.len();
        if let Some(rc) = verify_world_grid(
            opts,
            &q,
            "hedge_quick",
            count,
            || {
                let results = world::run_hedge_cells(&cells, q.jobs);
                world::hedge_canonical_json("hedge_quick", &cells, &results)
            },
            &mut summary,
            &mut code,
        ) {
            return rc;
        }
    }
    {
        let cells = world::cc_quick_grid();
        let count = cells.len();
        if let Some(rc) = verify_world_grid(
            opts,
            &q,
            "cc_quick",
            count,
            || {
                let results = world::run_cc_cells(&cells, q.jobs);
                world::cc_canonical_json("cc_quick", &cells, &results)
            },
            &mut summary,
            &mut code,
        ) {
            return rc;
        }
    }
    if code == 0 && !q.bless {
        eprintln!("verify: clean");
    }
    if let Some(path) = &opts.json {
        let grids: Vec<String> = summary
            .iter()
            .map(|(name, cells, drifts)| {
                format!("    {{\"grid\": \"{name}\", \"cells\": {cells}, \"drifts\": {drifts}}}")
            })
            .collect();
        let json = format!(
            "{{\n  \"command\": \"verify\",\n  \"clean\": {},\n  \"grids\": [\n{}\n  ]\n}}\n",
            code == 0,
            grids.join(",\n")
        );
        let p = out_path(opts, path);
        std::fs::write(&p, json).expect("write verify json");
        eprintln!("verify summary written to {}", p.display());
    }
    code
}

/// Golden-gates one world-crate grid under the sweep grids' protocol:
/// read (or bless) `<golden_dir>/<name>.json`, produce the live
/// canonical JSON, diff with the shared comparator. The golden is
/// read *before* `live` runs the grid, so a missing or corrupt file
/// fails fast. Returns `Some(2)` on a hard failure the caller must
/// propagate; drift sets `*code = 1` and records into `summary` like
/// every other grid.
fn verify_world_grid(
    opts: &Opts,
    q: &Opts,
    name: &str,
    cells: usize,
    live: impl FnOnce() -> String,
    summary: &mut Vec<(String, usize, usize)>,
    code: &mut i32,
) -> Option<i32> {
    let path = format!("{}/{name}.json", q.golden_dir);
    let golden = if q.bless {
        None
    } else {
        let golden_text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "verify: cannot read {path}: {e}\n\
                     verify: run `repro verify --bless` to create the goldens"
                );
                return Some(2);
            }
        };
        match oracle::parse_report(&golden_text) {
            Ok(g) => Some(g),
            Err(e) => {
                eprintln!("verify: {path}: {e}");
                return Some(2);
            }
        }
    };
    eprintln!(
        "verify: {name}: running {cells} cell(s) across {} worker(s)...",
        q.jobs
    );
    let live_json = live();
    if q.dump_live {
        let p = out_path(opts, &format!("{name}_live.json"));
        std::fs::write(&p, &live_json).expect("write live canonical json");
        eprintln!("verify: live canonical grid written to {}", p.display());
    }
    if let Some(golden) = golden {
        let live_rep = oracle::parse_report(&live_json).expect("live canonical json parses");
        let drifts = oracle::compare_reports(&golden, &live_rep, GOLDEN_TOL_US);
        summary.push((name.to_string(), cells, drifts.len()));
        if drifts.is_empty() {
            eprintln!("verify: {name}: {cells} cell(s) match {path}");
        } else {
            *code = 1;
            eprintln!("verify: {name}: {} drift(s) against {path}:", drifts.len());
            for d in &drifts {
                eprintln!("  {d}");
            }
        }
    } else {
        std::fs::create_dir_all(&q.golden_dir).expect("create golden dir");
        std::fs::write(&path, &live_json).expect("write golden file");
        eprintln!("verify: blessed {cells} cell(s) into {path}");
        summary.push((name.to_string(), cells, 0));
    }
    None
}

/// Integrity anomalies in a drifted fault cell (payload corruption
/// reaching the application) shrink to a minimal reproducing schedule
/// before being reported, so the console shows the smallest injector
/// that still breaks the run rather than the full scenario.
fn shrink_fault_drifts(live: &SweepResults, drifts: &[oracle::Drift]) {
    use latency_core::recovery;
    let mut seen = std::collections::BTreeSet::new();
    for d in drifts {
        if !d.key.starts_with("faults/") || !seen.insert(d.key.clone()) {
            continue;
        }
        let Some(out) = live.get(&d.key) else {
            continue;
        };
        if out.result.verify_failures == 0 {
            continue;
        }
        // Key shape: faults/{scenario}/{size}/i{iters}r{reps}.
        let parts: Vec<&str> = d.key.split('/').collect();
        let (Some(name), Some(size), Some(iters)) = (
            parts.get(1),
            parts.get(2).and_then(|s| s.parse::<usize>().ok()),
            parts
                .get(3)
                .and_then(|s| s.strip_prefix('i'))
                .and_then(|s| s.split('r').next())
                .and_then(|s| s.parse::<u64>().ok()),
        ) else {
            continue;
        };
        let Some(sc) = recovery::scenarios().into_iter().find(|s| s.name == *name) else {
            continue;
        };
        let seed = out.seed;
        let minimal = oracle::shrink_schedule(sc.faults, |cand| {
            let probe = recovery::Scenario {
                name: sc.name,
                blurb: sc.blurb,
                faults: *cand,
            };
            recovery::experiment(&probe, size, iters)
                .plan()
                .seed(seed)
                .execute()
                .verify_failures
                > 0
        });
        eprintln!(
            "  minimal schedule reproducing the corruption in {}: {minimal:?}",
            d.key
        );
    }
}

fn cmd_invariants(opts: &Opts) -> i32 {
    use oracle::InvariantSet;
    let iters = opts.iterations.min(200);
    let mut cells: Vec<(String, Experiment, InvariantSet)> = Vec::new();
    for &size in &[4usize, 1400, 8000] {
        for v in Variant::ALL {
            let mut e = v.apply(Experiment::rpc(NetKind::Atm, size));
            e.iterations = iters;
            e.warmup = 8;
            cells.push((format!("atm/{size}/{}", v.tag()), e, InvariantSet::all()));
        }
    }
    for &size in &[200usize, 8000] {
        let mut e = Experiment::rpc(NetKind::Ether, size);
        e.iterations = iters.min(200);
        e.warmup = 8;
        cells.push((format!("ether/{size}/base"), e, InvariantSet::all()));
    }
    // Faulted runs too: the invariants must hold under injected loss.
    // The capture comparator assumes the clean orbit's frame pairing,
    // so it sits out here; every other checker stays armed.
    let mut faulted = InvariantSet::all();
    faulted.capture_agreement = false;
    for sc in latency_core::recovery::scenarios() {
        let e = latency_core::recovery::experiment(&sc, 1400, iters.min(60));
        cells.push((format!("faults/{}/1400", sc.name), e, faulted));
    }
    eprintln!(
        "invariants: {} run(s) across {} worker(s), checkers armed...",
        cells.len(),
        opts.jobs
    );
    // `--seed N` shifts every run's base seed uniformly (the default
    // of 1 keeps the historical key-derived seeds).
    let offset = opts.seed.wrapping_sub(1);
    let reports = sweep::pool::run_ordered(&cells, opts.jobs, move |_, (name, e, set)| {
        (
            name.clone(),
            oracle::check_experiment(e, sweep::cell_seed(name).wrapping_add(offset), set),
        )
    });
    let mut failures = 0usize;
    // Oracle scope guard: the analytic model must refuse multi-host
    // worlds with a typed error, never extrapolate the two-host fiber
    // path to a shared switch.
    match oracle::predict_dc(&world::Topology::incast(32, 16, 4)) {
        Err(oracle::PredictError::MultiHostWorld { hosts }) => {
            eprintln!(
                "invariants: oracle scope guard: clean (refused the {hosts}-host world with a typed error)"
            );
        }
        Err(e) => {
            failures += 1;
            eprintln!("invariants: oracle scope guard: wrong error: {e}");
        }
        Ok(_) => {
            failures += 1;
            eprintln!("invariants: oracle scope guard: a multi-host world was accepted");
        }
    }
    // Mitigation-enabled worlds get the most specific refusal of all:
    // the tail-tolerance control layer (hedge races, retry budgets,
    // deadlines) shapes completion before topology even matters.
    {
        let mut topo = world::Topology::fanout(4, 16);
        topo.tail = world::mitigation_policy(latency_core::hedge::Mitigation::Hedge, 16);
        match oracle::predict_dc(&topo) {
            Err(oracle::PredictError::MitigatedWorld { .. }) => {
                eprintln!(
                    "invariants: oracle scope guard: clean (refused the tail-mitigated world with a typed error)"
                );
            }
            Err(e) => {
                failures += 1;
                eprintln!("invariants: oracle mitigation scope guard: wrong error: {e}");
            }
            Ok(_) => {
                failures += 1;
                eprintln!(
                    "invariants: oracle mitigation scope guard: a mitigated world was accepted"
                );
            }
        }
    }
    // Fan-out worlds get the more specific refusal: completion is the
    // max over N coupled sub-requests (an order statistic), wrong for
    // the per-connection orbit regardless of host count.
    match oracle::predict_dc(&world::Topology::fanout(4, 16)) {
        Err(oracle::PredictError::FanoutWorld { width }) => {
            eprintln!(
                "invariants: oracle scope guard: clean (refused the width-{width} fan-out world with a typed error)"
            );
        }
        Err(e) => {
            failures += 1;
            eprintln!("invariants: oracle fan-out scope guard: wrong error: {e}");
        }
        Ok(_) => {
            failures += 1;
            eprintln!("invariants: oracle fan-out scope guard: a fan-out world was accepted");
        }
    }
    let mut rows: Vec<String> = Vec::new();
    for (name, rep) in reports {
        if let Some(msg) = &rep.capture_skipped {
            eprintln!("invariants: {name}: capture comparison skipped ({msg})");
        }
        rows.push(format!(
            "    {{\"cell\": \"{name}\", \"clean\": {}, \"events_checked\": {}, \"violations\": {}}}",
            rep.is_clean(),
            rep.events_checked,
            rep.violations.len()
        ));
        if rep.is_clean() {
            eprintln!(
                "invariants: {name}: clean ({} event(s) checked)",
                rep.events_checked
            );
        } else {
            failures += rep.violations.len();
            eprintln!("invariants: {name}: {} violation(s):", rep.violations.len());
            for v in &rep.violations {
                eprintln!("  [{}] {}", v.invariant, v.detail);
            }
        }
    }
    if let Some(path) = &opts.json {
        let json = format!(
            "{{\n  \"command\": \"invariants\",\n  \"clean\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
            failures == 0,
            rows.join(",\n")
        );
        let p = out_path(opts, path);
        std::fs::write(&p, json).expect("write invariants json");
        eprintln!("invariants summary written to {}", p.display());
    }
    if failures == 0 {
        eprintln!("invariants: all clean");
        0
    } else {
        eprintln!("invariants: {failures} violation(s) total");
        1
    }
}

/// `repro bench`: the perfkit benchmark suite. Measures engine
/// events/sec against the frozen pre-calendar-queue engine,
/// end-to-end simulated-RTT throughput, and whole-grid wall-clock at
/// several worker counts, then writes `BENCH_5.json` under
/// `--out-dir` (or to `--json FILE`). `--quick` is the CI scale.
fn cmd_bench(opts: &Opts) -> i32 {
    let events = if opts.quick { 400_000 } else { 4_000_000 };
    eprintln!("bench: engine microbenchmark ({events} events, both engines)...");
    let engine = perfkit::engine_bench(events, opts.seed);

    let rtt_iters = if opts.quick { 400 } else { 4_000 };
    eprintln!("bench: end-to-end RTT throughput ({rtt_iters} iterations)...");
    let rtt = vec![
        perfkit::measure_rtt(NetKind::Atm, 200, rtt_iters, opts.seed),
        perfkit::measure_rtt(NetKind::Atm, 8000, rtt_iters / 4, opts.seed),
        perfkit::measure_rtt(NetKind::Ether, 200, rtt_iters.min(400), opts.seed),
    ];

    // The Tables 1-7 grid and the faults grid, at several worker
    // counts up to --jobs. Golden scale pins the cell keys (and thus
    // the key-derived seeds) regardless of --seed.
    let mut scale = golden_scale(opts);
    if !opts.quick {
        scale.iterations = opts.iterations.min(1_500);
        scale.reps = opts.reps;
        scale.quick = false;
    }
    let mut jobs_list = vec![1usize];
    for j in [2, 4, opts.jobs] {
        if j <= opts.jobs && !jobs_list.contains(&j) {
            jobs_list.push(j);
        }
    }
    jobs_list.sort_unstable();
    let mut sweeps = Vec::new();
    for grid in golden_grids(&scale) {
        for &jobs in &jobs_list {
            eprintln!(
                "bench: sweep '{}' ({} cells) across {} worker(s)...",
                grid.name,
                grid.len(),
                jobs
            );
            sweeps.push(perfkit::measure_sweep(&grid, jobs));
        }
    }

    let sketch = if opts.sketch {
        let samples = if opts.quick { 100_000 } else { 1_000_000 };
        eprintln!("bench: sketch-mode observability ({samples} samples, 16 shards)...");
        Some(perfkit::sketch_bench(samples, 16, opts.seed))
    } else {
        None
    };

    let report = perfkit::BenchReport {
        series: perfkit::BENCH_SERIES,
        quick: opts.quick,
        seed: opts.seed,
        engine,
        rtt,
        sweeps,
        sketch,
    };
    println!(
        "bench: engine          {:>12.0} events/s (heap baseline)",
        report.engine.heap_events_per_sec()
    );
    println!(
        "bench: engine          {:>12.0} events/s (calendar queue)",
        report.engine.calendar_events_per_sec()
    );
    println!(
        "bench: engine speedup  {:>12.2}x vs the pre-overhaul engine",
        report.engine.speedup()
    );
    for r in &report.rtt {
        println!(
            "bench: {:>5} {:>5}B    {:>12.0} RTT/s  {:>12.0} events/s",
            r.net,
            r.size,
            r.rtts_per_sec(),
            r.events_per_sec()
        );
    }
    for b in &report.sweeps {
        println!(
            "bench: {:>6} grid x{} {:>12.3} s     {:>12.0} events/s",
            b.grid,
            b.jobs,
            b.wall_s,
            b.events_per_sec()
        );
    }
    if let Some(sk) = &report.sketch {
        println!(
            "bench: sketch {:>7} samples {:>12.0} samples/s  {:>7} B retained",
            sk.samples,
            sk.samples_per_sec(),
            sk.memory_bytes
        );
        println!(
            "bench: sketch p99 {} ns vs exact {} ns ({:.3}% drift), jobs 1==4: {}",
            sk.sketch_p99_ns,
            sk.exact_p99_ns,
            sk.p99_drift() * 100.0,
            sk.jobs_byte_identical
        );
    }
    let file = opts
        .json
        .clone()
        .unwrap_or_else(|| format!("BENCH_{}.json", perfkit::BENCH_SERIES));
    let p = out_path(opts, &file);
    std::fs::write(&p, report.to_json()).expect("write bench json");
    eprintln!("bench report written to {}", p.display());
    if report.engine.speedup() < 1.5 {
        eprintln!(
            "bench: WARNING: engine speedup {:.2}x is below the 1.5x floor this tree claims",
            report.engine.speedup()
        );
        return 1;
    }
    // The --sketch gates: bounded memory, bounded p99 drift, and
    // worker-count independence — the three claims DESIGN.md §2.19
    // makes for sketch-mode observability.
    if let Some(sk) = &report.sketch {
        let mut bad = false;
        // MAX_MEMORY_BYTES bounds the bucket arrays; the recorder adds
        // fixed-size struct overhead on top, so allow a small slack.
        let ceiling = simcap::MAX_MEMORY_BYTES + 1024;
        if sk.memory_bytes > ceiling {
            eprintln!(
                "bench: FAIL: sketch retained {} B, over the {} B ceiling",
                sk.memory_bytes, ceiling
            );
            bad = true;
        }
        if sk.p99_drift() >= 0.01 {
            eprintln!(
                "bench: FAIL: sketch p99 drift {:.4} exceeds the 1% gate",
                sk.p99_drift()
            );
            bad = true;
        }
        if !sk.jobs_byte_identical {
            eprintln!("bench: FAIL: sketch merge differs between --jobs 1 and --jobs 4");
            bad = true;
        }
        if bad {
            return 1;
        }
    }
    0
}

// --------------------------------------------------------------------------
// `repro dc` — the datacenter incast study (crates/world).
// --------------------------------------------------------------------------

/// `repro dc`: the switch-centered datacenter study. Sweeps client
/// hosts x connections/host x PCB lookup strategy x incast fan-in,
/// reporting per-cell RTT distributions next to the server-side PCB
/// counters the paper's §3 cost model predicts. `--quick` runs the CI
/// grid whose canonical JSON is blessed as `tests/golden/dc_quick.json`
/// and gated by `repro verify`; `--sweep-json FILE` writes the same
/// canonical report for either scale.
fn cmd_dc(opts: &Opts) -> i32 {
    let (name, cells) = if opts.quick {
        ("dc_quick", world::dc_quick_grid())
    } else {
        ("dc", world::dc_grid())
    };
    eprintln!(
        "dc: {} cell(s) across {} worker(s)...",
        cells.len(),
        opts.jobs
    );
    let results = world::run_dc_cells_with(&cells, opts.jobs, obs_mode(opts));
    let mut code = 0;
    println!(
        "{:<28} {:>7} {:>9} {:>9} {:>9} {:>7} {:>6} {:>6} {:>8}",
        "cell", "samples", "mean_us", "p50_us", "p99_us", "search", "hit%", "drops", "backlog"
    );
    for r in &results {
        let rec = r.rtts.recorder();
        println!(
            "{:<28} {:>7} {:>9.1} {:>9.1} {:>9.1} {:>7.2} {:>6.1} {:>6} {:>8}",
            r.key.trim_start_matches("dc/"),
            r.rtts.len(),
            rec.mean_us(),
            rec.percentile_ns(50.0).unwrap_or(0) as f64 / 1_000.0,
            rec.p99_ns().unwrap_or(0) as f64 / 1_000.0,
            r.search_len(),
            r.cache_hit_rate() * 100.0,
            r.switch_drops,
            r.max_backlog_cells
        );
        if r.rtts.is_empty() || r.verify_failures > 0 || r.aborted_conns > 0 {
            code = 1;
            eprintln!(
                "dc: {}: FAILED ({} sample(s), {} verify failure(s), {} aborted connection(s))",
                r.key,
                r.rtts.len(),
                r.verify_failures,
                r.aborted_conns
            );
        }
    }
    // The §3 ordering, made visible: per (clients, conns, fan-in)
    // group, the mean server-side search length under each strategy.
    // The single-entry cache's list degrades as the PCB table grows;
    // the hash table stays flat.
    let groups: std::collections::BTreeSet<(usize, usize, usize)> = cells
        .iter()
        .map(|c| {
            (
                c.topo.clients,
                c.topo.conns_per_host,
                c.topo.effective_fanin(),
            )
        })
        .collect();
    println!("\nserver-side mean search length by strategy (PCB lookup, §3):");
    println!(
        "{:<20} {:>8} {:>8} {:>8}",
        "clients x conns x fanin", "mtf", "cache", "hash"
    );
    for (h, c, f) in groups {
        let of = |tag: &str| {
            results
                .iter()
                .find(|r| {
                    r.key == format!("dc/h{h}/c{c}/{tag}/f{f}/i{}r1", cells[0].topo.iterations)
                })
                .map_or(f64::NAN, world::DcCellResult::search_len)
        };
        println!(
            "h{h:<4} c{c:<4} f{f:<6} {:>8.2} {:>8.2} {:>8.2}",
            of("mtf"),
            of("cache"),
            of("hash")
        );
    }
    if let Some(path) = &opts.sweep_json {
        let p = out_path(opts, path);
        std::fs::write(&p, world::canonical_json(name, &results)).expect("write dc sweep json");
        eprintln!("dc canonical report written to {}", p.display());
    }
    if code == 0 {
        eprintln!("dc: {} cell(s) clean", results.len());
    }
    code
}

// --------------------------------------------------------------------------
// `repro tails` — the tail-at-scale fan-out study (crates/world).
// --------------------------------------------------------------------------

/// `repro tails`: the fan-out/wait-for-all completion-tail study. Each
/// client issues one logical request as N parallel sub-requests to N
/// distinct servers and completes on the slowest reply; the table
/// reports completion p50/p99/p999 and the tail-amplification ratio
/// (p99 at fan-out N over p99 at fan-out 1) per faultkit scenario,
/// with and without background churn traffic. `--quick` runs the CI
/// grid whose canonical JSON is blessed as
/// `tests/golden/tails_quick.json` and gated by `repro verify`;
/// `--sweep-json FILE` writes the canonical report for either scale.
///
/// Unlike `repro dc`, retransmit-limit aborts are *data*, not
/// failures: the mbuf-exhaustion regime is expected to kill client
/// rounds, and the table flags such cells with `!`. Only payload
/// corruption or a cell that silently produced nothing fail the run.
fn cmd_tails(opts: &Opts) -> i32 {
    let (name, cells) = if opts.quick {
        ("tails_quick", world::tails_quick_grid())
    } else {
        ("tails", world::tails_grid())
    };
    eprintln!(
        "tails: {} cell(s) across {} worker(s)...",
        cells.len(),
        opts.jobs
    );
    let results = world::run_tails_cells_with(&cells, opts.jobs, obs_mode(opts));
    let rows = world::tails_rows(&cells, &results);
    print!("{}", latency_core::tails::format_table(&rows));
    let mut code = 0;
    for (c, r) in cells.iter().zip(&results) {
        if r.verify_failures > 0 || (r.completions.is_empty() && r.fanout_aborts == 0) {
            code = 1;
            eprintln!(
                "tails: {}: FAILED ({} completion(s), {} verify failure(s), {} abort(s))",
                c.cell.key,
                r.completions.len(),
                r.verify_failures,
                r.fanout_aborts
            );
        }
    }
    if let Some(path) = &opts.sweep_json {
        let p = out_path(opts, path);
        std::fs::write(&p, world::tails_canonical_json(name, &cells, &results))
            .expect("write tails sweep json");
        eprintln!("tails canonical report written to {}", p.display());
    }
    if code == 0 {
        eprintln!("tails: {} cell(s) clean", results.len());
    }
    code
}

// --------------------------------------------------------------------------
// `repro hedge` — the tail-tolerance study (crates/world).
// --------------------------------------------------------------------------

/// `repro hedge`: the tail-tolerant RPC study. Every cell runs the
/// fan-out-16 world under one fault regime (clean, burst-loss, host
/// pause windows, link flap) and one mitigation (none, deadline,
/// budgeted retries, hedged requests, hedge + first-K-of-N), and the
/// table prices each mitigation's p50/p99/p999 against the
/// unmitigated baseline — `amp(p99) < 1` means the mitigation cut the
/// tail — next to its cost counters (hedges won/wasted, retries
/// issued/suppressed, deadline busts). `--quick` runs the CI grid
/// blessed as `tests/golden/hedge_quick.json` and gated by `repro
/// verify`; `--sweep-json FILE` writes the canonical report.
///
/// Like `repro tails`, retransmit-limit aborts are data (`!` rows);
/// payload corruption, an empty un-aborted cell, or a leaked mbuf
/// after teardown (cancelled/hedged requests must clean up) fail the
/// run.
fn cmd_hedge(opts: &Opts) -> i32 {
    let (name, cells) = if opts.quick {
        ("hedge_quick", world::hedge_quick_grid())
    } else {
        ("hedge", world::hedge_grid())
    };
    eprintln!(
        "hedge: {} cell(s) across {} worker(s)...",
        cells.len(),
        opts.jobs
    );
    let results = world::run_hedge_cells_with(&cells, opts.jobs, obs_mode(opts));
    let rows = world::hedge_rows(&cells, &results);
    print!("{}", latency_core::hedge::format_table(&rows));
    let mut code = 0;
    for (c, r) in cells.iter().zip(&results) {
        if r.verify_failures > 0
            || r.mbufs_leaked > 0
            || (r.completions.is_empty() && r.fanout_aborts == 0)
        {
            code = 1;
            eprintln!(
                "hedge: {}: FAILED ({} completion(s), {} verify failure(s), {} abort(s), {} leaked mbuf(s))",
                c.cell.key,
                r.completions.len(),
                r.verify_failures,
                r.fanout_aborts,
                r.mbufs_leaked
            );
        }
    }
    if let Some(path) = &opts.sweep_json {
        let p = out_path(opts, path);
        std::fs::write(&p, world::hedge_canonical_json(name, &cells, &results))
            .expect("write hedge sweep json");
        eprintln!("hedge canonical report written to {}", p.display());
    }
    if code == 0 {
        eprintln!("hedge: {} cell(s) clean", results.len());
    }
    code
}

// --------------------------------------------------------------------------
// `repro cc` — congestion control x UBR drop policy (crates/world).
// --------------------------------------------------------------------------

/// `repro cc`: the congestion-control study. Every cell runs a
/// cold-start 4-client incast (16 kB RPCs into one server port) under
/// one sender variant (Tahoe, Reno, NewReno, SACK), one UBR cell-drop
/// policy (tail, EPD, PPD), and one switch buffer size, and the table
/// reports goodput next to the recovery-latency percentiles and the
/// loss ledger (retransmits, RTO fires, cells dropped per policy).
/// `--quick` runs the CI grid blessed as `tests/golden/cc_quick.json`
/// and gated by `repro verify`; `--sweep-json FILE` writes the
/// canonical report for either scale.
///
/// Retransmissions and RTOs are the study's *data*; only payload
/// corruption, a leaked mbuf, or a cell that produced no samples at
/// all fail the run.
fn cmd_cc(opts: &Opts) -> i32 {
    let (name, cells) = if opts.quick {
        ("cc_quick", world::cc_quick_grid())
    } else {
        ("cc", world::cc_grid())
    };
    eprintln!(
        "cc: {} cell(s) across {} worker(s)...",
        cells.len(),
        opts.jobs
    );
    let results = world::run_cc_cells_with(&cells, opts.jobs, obs_mode(opts));
    let rows = world::cc_rows(&cells, &results);
    println!(
        "{:<8} {:<5} {:>5} {:>7} {:>8} {:>9} {:>9} {:>10} {:>7} {:>4} {:>6} {:>6} {:>6}",
        "variant",
        "drop",
        "queue",
        "samples",
        "goodput",
        "p50_us",
        "p99_us",
        "max_us",
        "rexmit",
        "rto",
        "qdrop",
        "epd",
        "ppd"
    );
    for row in &rows {
        println!(
            "{:<8} {:<5} {:>5} {:>7} {:>8.2} {:>9.1} {:>9.1} {:>10.1} {:>7} {:>4} {:>6} {:>6} {:>6}",
            row.variant,
            row.policy,
            row.queue_cells,
            row.samples,
            row.goodput_mbps,
            row.p50_us,
            row.p99_us,
            row.max_us,
            row.rexmits,
            row.rto_fires,
            row.queue_drops,
            row.epd_drops,
            row.ppd_drops
        );
    }
    let mut code = 0;
    for (c, r) in cells.iter().zip(&results) {
        if r.verify_failures > 0 || r.mbufs_leaked > 0 || r.rtts.is_empty() {
            code = 1;
            eprintln!(
                "cc: {}: FAILED ({} sample(s), {} verify failure(s), {} leaked mbuf(s))",
                c.cell.key,
                r.rtts.len(),
                r.verify_failures,
                r.mbufs_leaked
            );
        }
    }
    if let Some(path) = &opts.sweep_json {
        let p = out_path(opts, path);
        std::fs::write(&p, world::cc_canonical_json(name, &cells, &results))
            .expect("write cc sweep json");
        eprintln!("cc canonical report written to {}", p.display());
    }
    if code == 0 {
        eprintln!("cc: {} cell(s) clean", results.len());
    }
    code
}
