//! The buffer subsystem under the microscope: allocation (§2.2.1's
//! ≈7 µs pair on the DECstation), the socket-layer fill at each paper
//! size, and the `m_copy` asymmetry (deep copy vs refcount) behind
//! the Table 2 mcopy row.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mbuf::chain::ultrix_uses_clusters;
use mbuf::{Chain, Mbuf, MbufPool};
use std::hint::black_box;

fn payload(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i * 13 + 5) as u8).collect()
}

fn bench_alloc_free(c: &mut Criterion) {
    let pool = MbufPool::new();
    c.bench_function("mbuf_alloc_free_pair", |b| {
        b.iter(|| {
            let m = Mbuf::get(black_box(&pool));
            drop(black_box(m));
        })
    });
    c.bench_function("cluster_alloc_free_pair", |b| {
        b.iter(|| {
            let m = Mbuf::getcl(black_box(&pool));
            drop(black_box(m));
        })
    });
}

fn bench_fill(c: &mut Criterion) {
    let pool = MbufPool::new();
    let mut group = c.benchmark_group("sosend_fill");
    for &n in &[200usize, 500, 1400, 4000, 8000] {
        let data = payload(n);
        group.throughput(Throughput::Bytes(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, d| {
            b.iter(|| Chain::from_user_data(&pool, black_box(d), ultrix_uses_clusters(d.len())))
        });
    }
    group.finish();
}

fn bench_mcopy(c: &mut Criterion) {
    let pool = MbufPool::new();
    let mut group = c.benchmark_group("m_copy");
    // The cliff the paper's mcopy row shows: deep copy below 1 KB,
    // refcount above.
    let (small, _) = Chain::from_user_data(&pool, &payload(500), false);
    group.bench_function("small_500B_deep_copy", |b| {
        b.iter(|| small.copy_range(&pool, 0, 500))
    });
    let (big, _) = Chain::from_user_data(&pool, &payload(8000), true);
    group.bench_function("cluster_8000B_refcount", |b| {
        b.iter(|| big.copy_range(&pool, 0, 8000))
    });
    group.finish();
}

fn bench_chain_checksum(c: &mut Criterion) {
    let pool = MbufPool::new();
    let mut group = c.benchmark_group("chain_checksum");
    let (chain, _) = Chain::from_user_data(&pool, &payload(8000), true);
    group.bench_function("walk_8000B", |b| b.iter(|| chain.checksum_walk()));
    let (stored, _) = Chain::from_user_data_cksum(&pool, &payload(8000), true);
    group.bench_function("stored_combine_8000B", |b| {
        b.iter(|| stored.stored_checksum())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_alloc_free,
    bench_fill,
    bench_mcopy,
    bench_chain_checksum
);
criterion_main!(benches);
