//! ATM adaptation layer throughput: segmentation and reassembly with
//! real CRCs, AAL3/4 (the paper's adapter) against AAL5 (cited in
//! §4.2.1 as the other CRC-bearing AAL).

use atm::{aal5_segment, Aal34Reassembler, Aal34Segmenter, Aal5Reassembler};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn payload(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i * 7 + 3) as u8).collect()
}

fn bench_segment(c: &mut Criterion) {
    let mut group = c.benchmark_group("segmentation");
    for &n in &[200usize, 1400, 4040, 8040] {
        let data = payload(n);
        group.throughput(Throughput::Bytes(n as u64));
        group.bench_with_input(BenchmarkId::new("aal34", n), &data, |b, d| {
            let mut seg = Aal34Segmenter::new(0, 42, 1);
            b.iter(|| seg.segment(black_box(d)))
        });
        group.bench_with_input(BenchmarkId::new("aal5", n), &data, |b, d| {
            b.iter(|| aal5_segment(0, 42, black_box(d)))
        });
    }
    group.finish();
}

fn bench_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("sar_roundtrip");
    for &n in &[1400usize, 8040] {
        let data = payload(n);
        group.throughput(Throughput::Bytes(n as u64));
        group.bench_with_input(BenchmarkId::new("aal34", n), &data, |b, d| {
            b.iter(|| {
                let mut seg = Aal34Segmenter::new(0, 42, 1);
                let cells = seg.segment(black_box(d));
                let mut reasm = Aal34Reassembler::new();
                let mut out = None;
                for cell in &cells {
                    if let Some(x) = reasm.push(cell).unwrap() {
                        out = Some(x);
                    }
                }
                black_box(out)
            })
        });
        group.bench_with_input(BenchmarkId::new("aal5", n), &data, |b, d| {
            b.iter(|| {
                let cells = aal5_segment(0, 42, black_box(d));
                let mut reasm = Aal5Reassembler::new(9188);
                let mut out = None;
                for cell in &cells {
                    if let Some(x) = reasm.push(cell).unwrap() {
                        out = Some(x);
                    }
                }
                black_box(out)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_segment, bench_roundtrip);
criterion_main!(benches);
