//! Real PCB demultiplexing cost: the §3 comparison between the BSD
//! linear list (with and without the one-entry cache) and the hash
//! table the paper recommends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tcpip::config::PcbOrg;
use tcpip::pcb::{PcbKey, PcbTable};

fn deep_key(n: usize) -> PcbKey {
    PcbKey {
        laddr: [10, 0, 0, 1],
        lport: 6000 + (n - 1) as u16,
        faddr: [10, 9, 9, 9],
        fport: 7000 + (n - 1) as u16,
    }
}

fn bench_list_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pcb_list_search");
    for n in [20usize, 100, 250, 1000] {
        let mut table = PcbTable::new(PcbOrg::List, false);
        table.add_ambient(n);
        let key = deep_key(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| table.lookup(black_box(&key)))
        });
    }
    group.finish();
}

fn bench_organizations(c: &mut Criterion) {
    let mut group = c.benchmark_group("pcb_orgs_250_entries");
    let key = deep_key(250);

    let mut list = PcbTable::new(PcbOrg::List, false);
    list.add_ambient(250);
    group.bench_function("list_no_cache", |b| b.iter(|| list.lookup(black_box(&key))));

    let mut cached = PcbTable::new(PcbOrg::List, true);
    cached.add_ambient(250);
    let _ = cached.lookup(&key); // Prime the cache.
    group.bench_function("list_with_cache_hit", |b| {
        b.iter(|| cached.lookup(black_box(&key)))
    });

    let mut hash = PcbTable::new(PcbOrg::Hash, false);
    hash.add_ambient(250);
    group.bench_function("hash", |b| b.iter(|| hash.lookup(black_box(&key))));
    group.finish();
}

criterion_group!(benches, bench_list_scaling, bench_organizations);
criterion_main!(benches);
