//! Native execution of the Table 5 routines on this machine.
//!
//! Absolute numbers are of course orders of magnitude faster than a
//! 25 MHz R3000; what must carry over — and what the paper's §4.1
//! argument rests on — is the *shape*: all four routines linear in
//! size, the optimized checksum clearly beating the halfword one, and
//! the integrated copy+checksum beating a copy followed by a separate
//! checksum pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// The paper's transfer sizes.
const SIZES: [usize; 8] = [4, 20, 80, 200, 500, 1400, 4000, 8000];

fn payload(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i * 31 + 7) as u8).collect()
}

fn bench_cksum(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5");
    for &n in &SIZES {
        let data = payload(n);
        group.throughput(Throughput::Bytes(n as u64));
        group.bench_with_input(BenchmarkId::new("ultrix_cksum", n), &data, |b, d| {
            b.iter(|| cksum::ultrix_cksum(black_box(d)))
        });
        group.bench_with_input(BenchmarkId::new("optimized_cksum", n), &data, |b, d| {
            b.iter(|| cksum::optimized_cksum(black_box(d)))
        });
        group.bench_with_input(BenchmarkId::new("bcopy", n), &data, |b, d| {
            let mut dst = vec![0u8; n];
            b.iter(|| {
                dst.copy_from_slice(black_box(d));
                black_box(&dst);
            })
        });
        group.bench_with_input(BenchmarkId::new("copy_then_cksum", n), &data, |b, d| {
            let mut dst = vec![0u8; n];
            b.iter(|| {
                dst.copy_from_slice(black_box(d));
                cksum::optimized_cksum(black_box(&dst))
            })
        });
        group.bench_with_input(
            BenchmarkId::new("integrated_copy_cksum", n),
            &data,
            |b, d| {
                let mut dst = vec![0u8; n];
                b.iter(|| cksum::copy_and_cksum(black_box(d), black_box(&mut dst)))
            },
        );
    }
    group.finish();
}

fn bench_partial_combine(c: &mut Criterion) {
    // The send-side integration's combine step: sum partials of an
    // 8000-byte message split into two clusters.
    let a = cksum::PartialChecksum::over(&payload(4096));
    let b = cksum::PartialChecksum::over(&payload(3904));
    c.bench_function("partial_combine_2_clusters", |bch| {
        bch.iter(|| black_box(a).append(black_box(b)))
    });
}

criterion_group!(benches, bench_cksum, bench_partial_combine);
criterion_main!(benches);
