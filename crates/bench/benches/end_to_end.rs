//! End-to-end experiment benches: one per table, timing how fast the
//! simulator regenerates each configuration. These double as a
//! regression guard — each iteration runs the complete two-host
//! simulation (50 RPC round trips) and asserts payload integrity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use latency_core::experiment::{Experiment, NetKind};
use std::hint::black_box;

fn quick(net: NetKind, size: usize) -> Experiment {
    let mut e = Experiment::rpc(net, size);
    e.iterations = 50;
    e.warmup = 4;
    e
}

fn bench_rtt_atm_vs_ether(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_rtt");
    group.sample_size(10);
    for &size in &[200usize, 8000] {
        group.bench_with_input(BenchmarkId::new("atm", size), &size, |b, &n| {
            b.iter(|| {
                let r = quick(NetKind::Atm, n).plan().seed(black_box(1)).execute();
                assert_eq!(r.verify_failures, 0);
                r.mean_rtt_us()
            })
        });
        group.bench_with_input(BenchmarkId::new("ether", size), &size, |b, &n| {
            b.iter(|| {
                let r = quick(NetKind::Ether, n).plan().seed(black_box(1)).execute();
                assert_eq!(r.verify_failures, 0);
                r.mean_rtt_us()
            })
        });
    }
    group.finish();
}

fn bench_checksum_configs(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables6_7_configs");
    group.sample_size(10);
    group.bench_function("standard", |b| {
        b.iter(|| {
            quick(NetKind::Atm, 8000)
                .plan()
                .seed(1)
                .execute()
                .mean_rtt_us()
        })
    });
    group.bench_function("integrated", |b| {
        b.iter(|| {
            quick(NetKind::Atm, 8000)
                .with_integrated_checksum()
                .plan()
                .seed(1)
                .execute()
                .mean_rtt_us()
        })
    });
    group.bench_function("eliminated", |b| {
        b.iter(|| {
            quick(NetKind::Atm, 8000)
                .without_checksum()
                .plan()
                .seed(1)
                .execute()
                .mean_rtt_us()
        })
    });
    group.finish();
}

fn bench_prediction_configs(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_prediction");
    group.sample_size(10);
    group.bench_function("with", |b| {
        b.iter(|| {
            quick(NetKind::Atm, 200)
                .plan()
                .seed(1)
                .execute()
                .mean_rtt_us()
        })
    });
    group.bench_function("without", |b| {
        b.iter(|| {
            quick(NetKind::Atm, 200)
                .without_prediction()
                .plan()
                .seed(1)
                .execute()
                .mean_rtt_us()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rtt_atm_vs_ether,
    bench_checksum_configs,
    bench_prediction_configs
);
criterion_main!(benches);
