//! Determinism contract of the calendar-queue engine under the
//! parallel sweep runner: worker count must never leak into results.
//!
//! - `repro verify` passes against the blessed goldens at `--jobs 1`
//!   and `--jobs 4` — the reworked engine reproduces the pre-overhaul
//!   numbers cell for cell;
//! - the live canonical sweep JSON of the tables and faults grids is
//!   **byte-identical** to the blessed goldens at both worker counts
//!   (and therefore byte-identical between them).

use std::path::PathBuf;
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// The repo's blessed goldens, independent of the test's working
/// directory.
fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

#[test]
fn goldens_byte_identical_at_one_and_four_workers() {
    let goldens = golden_dir();
    let goldens_s = goldens.to_str().expect("utf8 golden path");
    for jobs in ["1", "4"] {
        let out = std::env::temp_dir().join(format!("repro-determ-j{jobs}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&out);
        // Exit 0 = the comparator found no drift against the goldens.
        let st = repro()
            .args([
                "verify",
                "--jobs",
                jobs,
                "--golden-dir",
                goldens_s,
                "--dump-live",
                "--out-dir",
                out.to_str().expect("utf8 out path"),
            ])
            .status()
            .expect("run repro");
        assert!(st.success(), "verify --jobs {jobs} failed: {st:?}");
        // Stronger than the comparator: the live canonical JSON must
        // match the blessed bytes exactly, at every worker count.
        for grid in ["tables", "faults"] {
            let live =
                std::fs::read(out.join(format!("{grid}_live.json"))).expect("read live dump");
            let blessed =
                std::fs::read(goldens.join(format!("{grid}_quick.json"))).expect("read golden");
            assert!(!live.is_empty());
            assert_eq!(
                live, blessed,
                "{grid} canonical JSON at --jobs {jobs} differs from the blessed golden"
            );
        }
        let _ = std::fs::remove_dir_all(&out);
    }
}
