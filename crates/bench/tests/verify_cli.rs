//! End-to-end exit-code contract of `repro verify`:
//!
//! - `--bless` writes the goldens and succeeds;
//! - a clean re-run verifies with exit 0;
//! - any golden drift makes verification exit non-zero;
//! - missing goldens exit with a distinct code and a hint to bless.

use std::path::PathBuf;
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp_golden_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-golden-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn verify_roundtrip_and_drift_detection() {
    let dir = tmp_golden_dir("roundtrip");
    let dir_s = dir.to_str().expect("utf8 temp path");

    // Bless.
    let st = repro()
        .args(["verify", "--bless", "--golden-dir", dir_s])
        .status()
        .expect("run repro");
    assert!(st.success(), "--bless failed: {st:?}");
    assert!(dir.join("tables_quick.json").is_file());
    assert!(dir.join("faults_quick.json").is_file());

    // Clean re-run: the simulation is deterministic, so the live grid
    // must match what was just blessed.
    let st = repro()
        .args(["verify", "--golden-dir", dir_s])
        .status()
        .expect("run repro");
    assert!(st.success(), "clean verify failed: {st:?}");

    // Drift: perturb one grid-pinned integer in the golden, as a
    // changed cost constant or protocol tweak would perturb the live
    // side. Verification must exit non-zero.
    let path = dir.join("tables_quick.json");
    let text = std::fs::read_to_string(&path).expect("read golden");
    let drifted = text.replacen("\"reps\": 1", "\"reps\": 2", 1);
    assert_ne!(text, drifted, "golden must contain a reps field");
    std::fs::write(&path, drifted).expect("write perturbed golden");
    let st = repro()
        .args(["verify", "--golden-dir", dir_s])
        .status()
        .expect("run repro");
    assert_eq!(
        st.code(),
        Some(1),
        "perturbed golden must fail verification"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn verify_without_goldens_asks_for_bless() {
    let dir = tmp_golden_dir("missing");
    let st = repro()
        .args(["verify", "--golden-dir", dir.to_str().expect("utf8")])
        .status()
        .expect("run repro");
    assert_eq!(
        st.code(),
        Some(2),
        "missing goldens are a setup error, not a drift"
    );
}
