//! Property-based tests of the mbuf subsystem invariants the protocol
//! stack relies on.

use mbuf::chain::{expected_mbuf_count, ultrix_uses_clusters};
use mbuf::{Chain, MbufPool};
use proptest::prelude::*;

fn payload(n: usize, seed: u8) -> Vec<u8> {
    (0..n)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Data survives a fill round-trip regardless of buffer kind, and
    /// mbuf counts match the closed form.
    #[test]
    fn fill_roundtrip(n in 0usize..20_000, seed in any::<u8>()) {
        let pool = MbufPool::new();
        let data = payload(n, seed);
        let use_cl = ultrix_uses_clusters(n);
        let (chain, cost) = Chain::from_user_data(&pool, &data, use_cl);
        prop_assert!(chain.data_equals(&data));
        prop_assert_eq!(chain.len(), n);
        prop_assert_eq!(cost.bytes_copied, n);
        prop_assert_eq!(chain.mbuf_count(), expected_mbuf_count(n));
    }

    /// `copy_range` of any subrange reproduces that subrange and never
    /// copies bytes out of clusters.
    #[test]
    fn copy_range_correct(
        n in 1usize..20_000,
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
        seed in any::<u8>(),
    ) {
        let pool = MbufPool::new();
        let data = payload(n, seed);
        let use_cl = ultrix_uses_clusters(n);
        let (chain, _) = Chain::from_user_data(&pool, &data, use_cl);
        let off = ((n as f64) * a) as usize;
        let len = (((n - off) as f64) * b) as usize;
        let (copy, cost) = chain.copy_range(&pool, off, len);
        prop_assert!(copy.data_equals(&data[off..off + len]));
        if use_cl {
            prop_assert_eq!(cost.bytes_copied, 0, "clusters must share");
        } else {
            prop_assert_eq!(cost.bytes_copied, len, "small mbufs must deep-copy");
        }
    }

    /// Trimming then reading yields the suffix; emptied mbufs are freed.
    #[test]
    fn trim_front_is_suffix(n in 1usize..8_000, frac in 0.0f64..1.0, seed in any::<u8>()) {
        let pool = MbufPool::new();
        let data = payload(n, seed);
        let (mut chain, _) = Chain::from_user_data(&pool, &data, ultrix_uses_clusters(n));
        let cut = ((n as f64) * frac) as usize;
        let _ = chain.trim_front(cut);
        prop_assert_eq!(chain.len(), n - cut);
        prop_assert!(chain.data_equals(&data[cut..]));
    }

    /// copy_out agrees with to_vec on arbitrary windows.
    #[test]
    fn copy_out_window(n in 1usize..8_000, a in 0.0f64..1.0, b in 0.0f64..1.0, seed in any::<u8>()) {
        let pool = MbufPool::new();
        let data = payload(n, seed);
        let (chain, _) = Chain::from_user_data(&pool, &data, ultrix_uses_clusters(n));
        let off = ((n as f64) * a) as usize;
        let len = (((n - off) as f64) * b) as usize;
        let mut dst = vec![0u8; len];
        let _ = chain.copy_out(off, &mut dst);
        prop_assert_eq!(&dst[..], &data[off..off + len]);
    }

    /// The integrated fill stores partial checksums that combine to
    /// the checksum of the whole, for any size.
    #[test]
    fn integrated_fill_checksums(n in 0usize..20_000, seed in any::<u8>()) {
        let pool = MbufPool::new();
        let data = payload(n, seed);
        let (chain, _) = Chain::from_user_data_cksum(&pool, &data, ultrix_uses_clusters(n));
        let stored = chain.stored_checksum().expect("partials present");
        prop_assert_eq!(stored, cksum::optimized_cksum(&data));
        let (walked, bytes) = chain.checksum_walk();
        prop_assert_eq!(walked, stored);
        prop_assert_eq!(bytes, n);
    }

    /// No operation sequence leaks buffers.
    #[test]
    fn no_leaks(n in 1usize..10_000, cut_frac in 0.0f64..1.0, seed in any::<u8>()) {
        let pool = MbufPool::new();
        {
            let data = payload(n, seed);
            let (chain, _) = Chain::from_user_data(&pool, &data, ultrix_uses_clusters(n));
            let (mut copy, _) = chain.copy_range(&pool, 0, n);
            let _ = copy.prepend_header(&pool, &[0u8; 40]);
            let _ = copy.trim_front(((n as f64) * cut_frac) as usize + 40);
            drop(chain);
        }
        let s = pool.stats();
        prop_assert_eq!(s.mbufs_outstanding(), 0);
        prop_assert_eq!(s.clusters_outstanding(), 0);
    }
}
