//! Effort receipts for buffer operations.
//!
//! The simulator charges virtual time for memory traffic and allocator
//! work. Rather than having the buffer layer know about time, every
//! mutating operation returns an [`OpCost`] describing the physical
//! work it performed; the protocol layers convert receipts to time
//! through the calibrated cost model.

use core::ops::{Add, AddAssign};

/// The physical work performed by a buffer operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCost {
    /// Bytes physically copied (memory-to-memory traffic).
    pub bytes_copied: usize,
    /// Ordinary mbufs allocated.
    pub mbufs_allocated: usize,
    /// Ordinary mbufs freed.
    pub mbufs_freed: usize,
    /// Cluster pages allocated.
    pub clusters_allocated: usize,
    /// Cluster pages whose reference count was bumped instead of
    /// copying (the cluster `m_copy` fast case).
    pub clusters_shared: usize,
}

impl OpCost {
    /// The zero receipt.
    pub const ZERO: OpCost = OpCost {
        bytes_copied: 0,
        mbufs_allocated: 0,
        mbufs_freed: 0,
        clusters_allocated: 0,
        clusters_shared: 0,
    };

    /// Receipt for a pure copy of `n` bytes.
    #[must_use]
    pub const fn copy(n: usize) -> OpCost {
        OpCost {
            bytes_copied: n,
            mbufs_allocated: 0,
            mbufs_freed: 0,
            clusters_allocated: 0,
            clusters_shared: 0,
        }
    }

    /// Total buffer-allocator events (allocations plus frees), the
    /// quantity the paper prices at ≈7 µs each.
    #[must_use]
    pub const fn allocator_ops(&self) -> usize {
        self.mbufs_allocated + self.mbufs_freed + self.clusters_allocated
    }
}

impl Add for OpCost {
    type Output = OpCost;

    fn add(self, rhs: OpCost) -> OpCost {
        OpCost {
            bytes_copied: self.bytes_copied + rhs.bytes_copied,
            mbufs_allocated: self.mbufs_allocated + rhs.mbufs_allocated,
            mbufs_freed: self.mbufs_freed + rhs.mbufs_freed,
            clusters_allocated: self.clusters_allocated + rhs.clusters_allocated,
            clusters_shared: self.clusters_shared + rhs.clusters_shared,
        }
    }
}

impl AddAssign for OpCost {
    fn add_assign(&mut self, rhs: OpCost) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receipts_add_componentwise() {
        let a = OpCost {
            bytes_copied: 10,
            mbufs_allocated: 1,
            mbufs_freed: 2,
            clusters_allocated: 3,
            clusters_shared: 4,
        };
        let mut b = OpCost::copy(5);
        b += a;
        assert_eq!(b.bytes_copied, 15);
        assert_eq!(b.mbufs_allocated, 1);
        assert_eq!(b.mbufs_freed, 2);
        assert_eq!(b.clusters_allocated, 3);
        assert_eq!(b.clusters_shared, 4);
        assert_eq!(b.allocator_ops(), 6);
    }

    #[test]
    fn zero_is_identity() {
        let a = OpCost::copy(7);
        assert_eq!(a + OpCost::ZERO, a);
    }
}
