//! The mbuf allocator.
//!
//! BSD allocated mbufs from a dedicated kernel map with free lists;
//! the measured cost to allocate and free one (of either kind) on the
//! DECstation 5000/200 was "just over 7 µs" (§2.2.1). The simulation
//! prices allocator events from the [`OpCost`](crate::OpCost) receipts;
//! this module provides the shared statistics that let tests and the
//! harness assert on allocator behaviour (and on the absence of leaks).
//!
//! The counters are atomics behind an [`Arc`] so a whole simulated
//! world — pools, chains and all — is `Send` and can be fanned out
//! across sweep worker threads. At runtime each pool still belongs to
//! exactly one world on one thread; relaxed ordering is all the
//! statistics need.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::mbuf::{MCLBYTES, MLEN};

/// Typed allocation-failure signal: the pool is at its configured
/// limit. BSD returns `ENOBUFS` from the allocator in this situation;
/// callers on the receive path drop the packet (a counted drop that
/// TCP recovers from by retransmission), never panic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Enobufs;

impl std::fmt::Display for Enobufs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ENOBUFS: mbuf pool exhausted")
    }
}

impl std::error::Error for Enobufs {}

/// Cumulative allocator statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Ordinary mbufs ever allocated.
    pub mbufs_allocated: u64,
    /// Ordinary mbufs ever freed.
    pub mbufs_freed: u64,
    /// Cluster pages ever allocated.
    pub clusters_allocated: u64,
    /// Cluster pages ever freed (last reference dropped).
    pub clusters_freed: u64,
    /// Cluster reference-count bumps (shared copies).
    pub cluster_refs: u64,
    /// Fallible allocations refused because the pool was at its
    /// limit (each is one [`Enobufs`] returned to a caller).
    pub enobufs_drops: u64,
}

impl PoolStats {
    /// Ordinary mbufs currently live.
    #[must_use]
    pub fn mbufs_outstanding(&self) -> u64 {
        self.mbufs_allocated - self.mbufs_freed
    }

    /// Cluster pages currently live.
    #[must_use]
    pub fn clusters_outstanding(&self) -> u64 {
        self.clusters_allocated - self.clusters_freed
    }
}

/// Most recycled buffers kept per free list; beyond this, freed
/// buffers are released to the allocator. Sized for the deepest
/// chains a sweep cell builds (8 KB messages ≈ 76 small mbufs) with
/// ample slack.
const FREE_LIST_CAP: usize = 512;

#[derive(Default)]
pub(crate) struct PoolInner {
    pub(crate) mbufs_allocated: AtomicU64,
    pub(crate) mbufs_freed: AtomicU64,
    pub(crate) clusters_allocated: AtomicU64,
    pub(crate) clusters_freed: AtomicU64,
    pub(crate) cluster_refs: AtomicU64,
    /// Maximum mbufs outstanding for *fallible* allocations; 0 means
    /// unlimited (the default, matching the pre-faultkit behaviour).
    pub(crate) limit: AtomicU64,
    pub(crate) enobufs_drops: AtomicU64,
    /// Recycled small-mbuf buffers: BSD's free list, so the
    /// steady-state RPC fast path allocates no heap memory. The
    /// statistics above are unaffected — accounting (and the ≈7 µs
    /// simulated allocator cost) is identical whether a buffer came
    /// off the free list or from the host allocator.
    /// (The `Box` indirection is the point: the list recycles the
    /// heap allocations themselves, so push/pop moves a pointer, not
    /// `MLEN` bytes.)
    #[allow(clippy::vec_box)]
    small_free: Mutex<Vec<Box<[u8; MLEN]>>>,
    /// Recycled cluster pages.
    #[allow(clippy::vec_box)]
    cluster_free: Mutex<Vec<Box<[u8; MCLBYTES]>>>,
}

/// Handle to a host's mbuf allocator.
///
/// Cloning the handle shares the same statistics; each simulated host
/// owns one pool.
///
/// # Examples
///
/// ```
/// use mbuf::{Mbuf, MbufPool};
///
/// let pool = MbufPool::new();
/// {
///     let _m = Mbuf::get(&pool);
///     assert_eq!(pool.stats().mbufs_outstanding(), 1);
/// }
/// // Dropping the mbuf returns it to the pool.
/// assert_eq!(pool.stats().mbufs_outstanding(), 0);
/// ```
#[derive(Clone, Default)]
pub struct MbufPool {
    pub(crate) inner: Arc<PoolInner>,
}

impl MbufPool {
    /// Creates a fresh pool.
    #[must_use]
    pub fn new() -> Self {
        MbufPool::default()
    }

    /// Snapshot of the allocator statistics.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            mbufs_allocated: self.inner.mbufs_allocated.load(Ordering::Relaxed),
            mbufs_freed: self.inner.mbufs_freed.load(Ordering::Relaxed),
            clusters_allocated: self.inner.clusters_allocated.load(Ordering::Relaxed),
            clusters_freed: self.inner.clusters_freed.load(Ordering::Relaxed),
            cluster_refs: self.inner.cluster_refs.load(Ordering::Relaxed),
            enobufs_drops: self.inner.enobufs_drops.load(Ordering::Relaxed),
        }
    }

    /// Caps the number of outstanding mbufs that *fallible*
    /// allocations ([`crate::Mbuf::try_get`] and friends) may reach;
    /// `None` removes the cap. The infallible allocators are
    /// unaffected — they model BSD's reserved kernel map, so the
    /// transmit path (which already holds its data) never fails, while
    /// the receive/interrupt path sheds load with [`Enobufs`].
    pub fn set_limit(&self, limit: Option<u64>) {
        self.inner
            .limit
            .store(limit.unwrap_or(0), Ordering::Relaxed);
    }

    /// The configured cap, if any.
    #[must_use]
    pub fn limit(&self) -> Option<u64> {
        match self.inner.limit.load(Ordering::Relaxed) {
            0 => None,
            n => Some(n),
        }
    }

    /// Records one refused allocation (used when a caller detects
    /// exhaustion for a multi-mbuf request before allocating).
    pub(crate) fn note_enobufs(&self) {
        PoolInner::bump(&self.inner.enobufs_drops);
    }

    /// Whether a fallible allocation may proceed right now. On refusal
    /// the `enobufs_drops` counter is bumped.
    pub(crate) fn admit(&self) -> Result<(), Enobufs> {
        let limit = self.inner.limit.load(Ordering::Relaxed);
        if limit == 0 {
            return Ok(());
        }
        let allocated = self.inner.mbufs_allocated.load(Ordering::Relaxed);
        let freed = self.inner.mbufs_freed.load(Ordering::Relaxed);
        if allocated - freed < limit {
            Ok(())
        } else {
            PoolInner::bump(&self.inner.enobufs_drops);
            Err(Enobufs)
        }
    }
}

impl PoolInner {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Hands out a zeroed small-mbuf buffer, reusing a recycled one
    /// when available. Zeroing on reuse keeps recycled buffers
    /// indistinguishable from fresh allocations.
    pub(crate) fn alloc_small(&self) -> Box<[u8; MLEN]> {
        match self.small_free.lock().unwrap().pop() {
            Some(mut buf) => {
                buf.fill(0);
                buf
            }
            None => Box::new([0; MLEN]),
        }
    }

    /// Hands out a zeroed cluster page, reusing a recycled one when
    /// available.
    pub(crate) fn alloc_cluster(&self) -> Box<[u8; MCLBYTES]> {
        match self.cluster_free.lock().unwrap().pop() {
            Some(mut buf) => {
                buf.fill(0);
                buf
            }
            None => Box::new([0; MCLBYTES]),
        }
    }

    /// Returns a small-mbuf buffer to the free list (dropped past the
    /// cap).
    pub(crate) fn recycle_small(&self, buf: Box<[u8; MLEN]>) {
        let mut free = self.small_free.lock().unwrap();
        if free.len() < FREE_LIST_CAP {
            free.push(buf);
        }
    }

    /// Returns a cluster page to the free list (dropped past the cap).
    pub(crate) fn recycle_cluster(&self, buf: Box<[u8; MCLBYTES]>) {
        let mut free = self.cluster_free.lock().unwrap();
        if free.len() < FREE_LIST_CAP {
            free.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_start_at_zero() {
        let pool = MbufPool::new();
        assert_eq!(pool.stats(), PoolStats::default());
        assert_eq!(pool.stats().mbufs_outstanding(), 0);
        assert_eq!(pool.stats().clusters_outstanding(), 0);
    }

    #[test]
    fn pools_mbufs_and_chains_are_send() {
        // Sweep workers move whole worlds (pools and chains included)
        // across threads; this must keep compiling.
        fn check<T: Send>() {}
        check::<MbufPool>();
        check::<crate::Mbuf>();
        check::<crate::Chain>();
    }

    #[test]
    fn clones_share_counters() {
        let pool = MbufPool::new();
        let alias = pool.clone();
        PoolInner::bump(&pool.inner.mbufs_allocated);
        assert_eq!(alias.stats().mbufs_allocated, 1);
    }

    #[test]
    fn unlimited_pool_always_admits() {
        let pool = MbufPool::new();
        assert_eq!(pool.limit(), None);
        for _ in 0..1000 {
            assert_eq!(pool.admit(), Ok(()));
        }
        assert_eq!(pool.stats().enobufs_drops, 0);
    }

    #[test]
    fn limited_pool_refuses_at_the_cap_and_counts() {
        let pool = MbufPool::new();
        pool.set_limit(Some(2));
        assert_eq!(pool.limit(), Some(2));
        let Ok(a) = crate::Mbuf::try_get(&pool) else {
            panic!("first allocation fits under the limit");
        };
        let Ok(_b) = crate::Mbuf::try_get(&pool) else {
            panic!("second allocation fits under the limit");
        };
        assert!(crate::Mbuf::try_get(&pool).is_err());
        assert_eq!(pool.stats().enobufs_drops, 1);
        // Freeing makes room again.
        drop(a);
        assert!(crate::Mbuf::try_get(&pool).is_ok());
        // Lifting the cap restores unlimited behaviour.
        pool.set_limit(None);
        for _ in 0..10 {
            assert!(pool.admit().is_ok());
        }
        assert_eq!(pool.stats().enobufs_drops, 1);
    }
}
