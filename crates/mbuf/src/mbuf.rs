//! The mbuf itself: a small fixed buffer or a reference-counted
//! cluster page.
//!
//! Sizes match the system the paper measured: `MSIZE` = 128 with 108
//! data bytes (100 when a packet header is present), and 4096-byte
//! cluster pages — "they hold 4 KB of data, the size of a memory page,
//! whereas normal mbufs hold only 108 bytes" (§2.2.1).

use std::sync::Arc;

use cksum::PartialChecksum;

use crate::pool::{Enobufs, MbufPool, PoolInner};

/// Total size of an mbuf including its header (BSD `MSIZE`).
pub const MSIZE: usize = 128;

/// Data bytes in an ordinary mbuf (BSD `MLEN`).
pub const MLEN: usize = 108;

/// Data bytes in an mbuf that carries a packet header (BSD `MHLEN`).
pub const MHLEN: usize = 100;

/// Bytes in a cluster page (BSD `MCLBYTES`, one VM page on the
/// DECstation).
pub const MCLBYTES: usize = 4096;

/// The kind of storage behind an mbuf.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MbufKind {
    /// Inline storage of up to [`MLEN`] (or [`MHLEN`]) bytes.
    Small,
    /// A shared 4096-byte cluster page.
    Cluster,
}

/// A reference-counted cluster page. Dropping the last reference
/// returns the page to the pool statistics.
struct ClusterPage {
    /// `Some` for the page's whole life; taken only inside `Drop`,
    /// when the buffer moves to the pool's free list.
    data: Option<Box<[u8; MCLBYTES]>>,
    pool: Arc<PoolInner>,
}

impl ClusterPage {
    #[inline]
    fn data(&self) -> &[u8; MCLBYTES] {
        self.data.as_ref().expect("cluster page alive")
    }

    #[inline]
    fn data_mut(&mut self) -> &mut [u8; MCLBYTES] {
        self.data.as_mut().expect("cluster page alive")
    }
}

impl Drop for ClusterPage {
    fn drop(&mut self) {
        PoolInner::bump(&self.pool.clusters_freed);
        if let Some(buf) = self.data.take() {
            self.pool.recycle_cluster(buf);
        }
    }
}

enum Storage {
    Small {
        buf: Box<[u8; MLEN]>,
        /// First valid byte (leading space supports header prepends).
        off: usize,
        len: usize,
    },
    Cluster {
        page: Arc<ClusterPage>,
        off: usize,
        len: usize,
    },
    /// Transient state seen only inside `Drop`, after the buffer has
    /// moved to the pool's free list.
    Reclaimed,
}

/// Packet-header metadata carried by the first mbuf of a chain.
#[derive(Clone, Copy, Debug, Default)]
pub struct PktHdr {
    /// Total length of the packet the chain describes.
    pub len: usize,
}

/// One memory buffer.
///
/// Allocation and drop are accounted against the owning
/// [`MbufPool`]'s statistics; the simulation converts those counts to
/// the ≈7 µs DECstation allocator cost.
///
/// # Examples
///
/// ```
/// use mbuf::{Mbuf, MbufKind, MbufPool, MLEN};
///
/// let pool = MbufPool::new();
/// let mut m = Mbuf::get(&pool);
/// assert_eq!(m.kind(), MbufKind::Small);
/// let took = m.append_from(&[1, 2, 3]);
/// assert_eq!(took, 3);
/// assert_eq!(m.data(), &[1, 2, 3]);
/// assert_eq!(m.capacity_remaining(), MLEN - 3);
/// ```
pub struct Mbuf {
    storage: Storage,
    /// Present on the first mbuf of a packet chain.
    pub pkthdr: Option<PktHdr>,
    /// Partial checksum of this mbuf's data, stored by the socket
    /// layer under the integrated copy-and-checksum scheme (§4.1.1).
    /// Valid only while the data is unchanged; every mutating
    /// operation clears it.
    pub partial_cksum: Option<PartialChecksum>,
    pool: Arc<PoolInner>,
}

impl Drop for Mbuf {
    fn drop(&mut self) {
        PoolInner::bump(&self.pool.mbufs_freed);
        match core::mem::replace(&mut self.storage, Storage::Reclaimed) {
            // Small buffers go straight to the free list; cluster
            // pages recycle when their last reference drops (in
            // `ClusterPage::drop`).
            Storage::Small { buf, .. } => self.pool.recycle_small(buf),
            Storage::Cluster { .. } | Storage::Reclaimed => {}
        }
    }
}

impl Mbuf {
    /// Allocates an ordinary mbuf (BSD `MGET`).
    #[must_use]
    pub fn get(pool: &MbufPool) -> Mbuf {
        PoolInner::bump(&pool.inner.mbufs_allocated);
        Mbuf {
            storage: Storage::Small {
                buf: pool.inner.alloc_small(),
                off: 0,
                len: 0,
            },
            pkthdr: None,
            partial_cksum: None,
            pool: Arc::clone(&pool.inner),
        }
    }

    /// Allocates an mbuf with a packet header (BSD `MGETHDR`). Its
    /// data capacity is [`MHLEN`]; the 8 reserved bytes are counted as
    /// leading space so headers can be prepended in place.
    #[must_use]
    pub fn gethdr(pool: &MbufPool) -> Mbuf {
        let mut m = Mbuf::get(pool);
        // Model the pkthdr by reserving MLEN - MHLEN bytes at the
        // front; this doubles as prepend room.
        if let Storage::Small { off, .. } = &mut m.storage {
            *off = MLEN - MHLEN;
        }
        m.pkthdr = Some(PktHdr::default());
        m
    }

    /// Allocates an mbuf backed by a fresh cluster page (BSD `MGET` +
    /// `MCLGET`).
    #[must_use]
    pub fn getcl(pool: &MbufPool) -> Mbuf {
        PoolInner::bump(&pool.inner.mbufs_allocated);
        PoolInner::bump(&pool.inner.clusters_allocated);
        Mbuf {
            storage: Storage::Cluster {
                page: Arc::new(ClusterPage {
                    data: Some(pool.inner.alloc_cluster()),
                    pool: Arc::clone(&pool.inner),
                }),
                off: 0,
                len: 0,
            },
            pkthdr: None,
            partial_cksum: None,
            pool: Arc::clone(&pool.inner),
        }
    }

    /// Fallible [`Mbuf::get`]: refuses with [`Enobufs`] when the pool
    /// is at its configured limit. Used by the receive/interrupt path,
    /// which in BSD sheds load rather than blocking.
    pub fn try_get(pool: &MbufPool) -> Result<Mbuf, Enobufs> {
        pool.admit()?;
        Ok(Mbuf::get(pool))
    }

    /// Fallible [`Mbuf::gethdr`].
    pub fn try_gethdr(pool: &MbufPool) -> Result<Mbuf, Enobufs> {
        pool.admit()?;
        Ok(Mbuf::gethdr(pool))
    }

    /// Fallible [`Mbuf::getcl`].
    pub fn try_getcl(pool: &MbufPool) -> Result<Mbuf, Enobufs> {
        pool.admit()?;
        Ok(Mbuf::getcl(pool))
    }

    /// The storage kind.
    #[must_use]
    pub fn kind(&self) -> MbufKind {
        match self.storage {
            Storage::Small { .. } => MbufKind::Small,
            Storage::Cluster { .. } => MbufKind::Cluster,
            Storage::Reclaimed => unreachable!("reclaimed mbuf"),
        }
    }

    /// Whether this mbuf references a cluster page.
    #[must_use]
    pub fn is_cluster(&self) -> bool {
        self.kind() == MbufKind::Cluster
    }

    /// Whether a cluster page is shared with another mbuf.
    #[must_use]
    pub fn is_shared(&self) -> bool {
        match &self.storage {
            Storage::Small { .. } => false,
            Storage::Cluster { page, .. } => Arc::strong_count(page) > 1,
            Storage::Reclaimed => unreachable!("reclaimed mbuf"),
        }
    }

    /// The valid data bytes.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        match &self.storage {
            Storage::Small { buf, off, len } => &buf[*off..*off + *len],
            Storage::Cluster { page, off, len } => &page.data()[*off..*off + *len],
            Storage::Reclaimed => unreachable!("reclaimed mbuf"),
        }
    }

    /// Number of valid data bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.storage {
            Storage::Small { len, .. } | Storage::Cluster { len, .. } => *len,
            Storage::Reclaimed => unreachable!("reclaimed mbuf"),
        }
    }

    /// Whether the mbuf holds no data.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes that can still be appended.
    #[must_use]
    pub fn capacity_remaining(&self) -> usize {
        match &self.storage {
            Storage::Small { off, len, .. } => MLEN - off - len,
            Storage::Cluster { off, len, .. } => MCLBYTES - off - len,
            Storage::Reclaimed => unreachable!("reclaimed mbuf"),
        }
    }

    /// Unused bytes before the data (room for header prepends).
    #[must_use]
    pub fn leading_space(&self) -> usize {
        match &self.storage {
            Storage::Small { off, .. } | Storage::Cluster { off, .. } => *off,
            Storage::Reclaimed => unreachable!("reclaimed mbuf"),
        }
    }

    /// Appends as many bytes of `src` as fit; returns how many were
    /// taken. The copy is real.
    ///
    /// # Panics
    ///
    /// Panics if the mbuf is a shared cluster: BSD cluster sharing is
    /// copy-free precisely because shared pages are never written, and
    /// a write here would silently corrupt the other reference.
    pub fn append_from(&mut self, src: &[u8]) -> usize {
        self.partial_cksum = None;
        let n = src.len().min(self.capacity_remaining());
        match &mut self.storage {
            Storage::Small { buf, off, len } => {
                buf[*off + *len..*off + *len + n].copy_from_slice(&src[..n]);
                *len += n;
            }
            Storage::Cluster { page, off, len } => {
                let page = Arc::get_mut(page)
                    .expect("append to a shared cluster page would corrupt peer data");
                page.data_mut()[*off + *len..*off + *len + n].copy_from_slice(&src[..n]);
                *len += n;
            }
            Storage::Reclaimed => unreachable!("reclaimed mbuf"),
        }
        n
    }

    /// Prepends `src` into leading space.
    ///
    /// # Panics
    ///
    /// Panics if the leading space is insufficient (callers check
    /// [`Mbuf::leading_space`], mirroring BSD `M_PREPEND`'s fall-back
    /// to a fresh mbuf) or if the mbuf is a shared cluster.
    pub fn prepend_from(&mut self, src: &[u8]) {
        self.partial_cksum = None;
        let n = src.len();
        assert!(
            self.leading_space() >= n,
            "prepend of {n} bytes exceeds leading space {}",
            self.leading_space()
        );
        match &mut self.storage {
            Storage::Small { buf, off, len } => {
                *off -= n;
                *len += n;
                buf[*off..*off + n].copy_from_slice(src);
            }
            Storage::Cluster { page, off, len } => {
                let page = Arc::get_mut(page)
                    .expect("prepend to a shared cluster page would corrupt peer data");
                *off -= n;
                *len += n;
                page.data_mut()[*off..*off + n].copy_from_slice(src);
            }
            Storage::Reclaimed => unreachable!("reclaimed mbuf"),
        }
    }

    /// Drops `n` bytes from the front (BSD `m_adj` with positive
    /// argument). `n` may exceed the length; the mbuf then empties.
    pub fn trim_front(&mut self, n: usize) {
        self.partial_cksum = None;
        match &mut self.storage {
            Storage::Small { off, len, .. } | Storage::Cluster { off, len, .. } => {
                let n = n.min(*len);
                *off += n;
                *len -= n;
            }
            Storage::Reclaimed => unreachable!("reclaimed mbuf"),
        }
    }

    /// Drops `n` bytes from the back (BSD `m_adj` with negative
    /// argument).
    pub fn trim_back(&mut self, n: usize) {
        self.partial_cksum = None;
        match &mut self.storage {
            Storage::Small { len, .. } | Storage::Cluster { len, .. } => {
                *len -= n.min(*len);
            }
            Storage::Reclaimed => unreachable!("reclaimed mbuf"),
        }
    }

    /// Produces a zero-copy reference to a sub-range of a cluster
    /// mbuf: the cluster `m_copy` fast case. The pool's share counter
    /// is bumped; no bytes move.
    ///
    /// # Panics
    ///
    /// Panics if this is not a cluster mbuf or the range is out of
    /// bounds.
    #[must_use]
    pub fn share_cluster_range(&self, pool: &MbufPool, start: usize, len: usize) -> Mbuf {
        match &self.storage {
            Storage::Small { .. } | Storage::Reclaimed => {
                panic!("share_cluster_range on an ordinary mbuf")
            }
            Storage::Cluster {
                page,
                off,
                len: mlen,
            } => {
                assert!(start + len <= *mlen, "share range out of bounds");
                PoolInner::bump(&pool.inner.mbufs_allocated);
                PoolInner::bump(&pool.inner.cluster_refs);
                Mbuf {
                    storage: Storage::Cluster {
                        page: Arc::clone(page),
                        off: off + start,
                        len,
                    },
                    pkthdr: None,
                    partial_cksum: None,
                    pool: Arc::clone(&pool.inner),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_the_paper() {
        assert_eq!(MLEN, 108);
        assert_eq!(MHLEN, 100);
        assert_eq!(MCLBYTES, 4096);
        assert_eq!(MSIZE, 128);
    }

    #[test]
    fn small_mbuf_roundtrip() {
        let pool = MbufPool::new();
        let mut m = Mbuf::get(&pool);
        assert_eq!(m.capacity_remaining(), MLEN);
        let data: Vec<u8> = (0..200u8).collect();
        let took = m.append_from(&data);
        assert_eq!(took, MLEN);
        assert_eq!(m.data(), &data[..MLEN]);
        assert_eq!(m.capacity_remaining(), 0);
        assert!(!m.is_cluster());
        assert!(!m.is_shared());
    }

    #[test]
    fn pkthdr_mbuf_has_leading_space() {
        let pool = MbufPool::new();
        let m = Mbuf::gethdr(&pool);
        assert_eq!(m.capacity_remaining(), MHLEN);
        assert_eq!(m.leading_space(), MLEN - MHLEN);
        assert!(m.pkthdr.is_some());
    }

    #[test]
    fn cluster_holds_a_page() {
        let pool = MbufPool::new();
        let mut m = Mbuf::getcl(&pool);
        assert_eq!(m.capacity_remaining(), MCLBYTES);
        let data = vec![0x5au8; MCLBYTES + 10];
        assert_eq!(m.append_from(&data), MCLBYTES);
        assert_eq!(m.len(), MCLBYTES);
        let stats = pool.stats();
        assert_eq!(stats.clusters_allocated, 1);
        assert_eq!(stats.mbufs_allocated, 1);
    }

    #[test]
    fn cluster_share_is_zero_copy_and_reads_same_bytes() {
        let pool = MbufPool::new();
        let mut m = Mbuf::getcl(&pool);
        m.append_from(&[1, 2, 3, 4, 5, 6]);
        let shared = m.share_cluster_range(&pool, 2, 3);
        assert_eq!(shared.data(), &[3, 4, 5]);
        assert!(m.is_shared());
        assert!(shared.is_shared());
        assert_eq!(pool.stats().cluster_refs, 1);
        // Only one page was ever allocated.
        assert_eq!(pool.stats().clusters_allocated, 1);
        drop(shared);
        assert!(!m.is_shared());
        // The page is freed only when the last reference drops.
        assert_eq!(pool.stats().clusters_freed, 0);
        drop(m);
        assert_eq!(pool.stats().clusters_freed, 1);
    }

    #[test]
    #[should_panic(expected = "shared cluster")]
    fn writing_a_shared_cluster_panics() {
        let pool = MbufPool::new();
        let mut m = Mbuf::getcl(&pool);
        m.append_from(&[1, 2, 3]);
        let _shared = m.share_cluster_range(&pool, 0, 3);
        m.append_from(&[4]);
    }

    #[test]
    fn prepend_uses_leading_space() {
        let pool = MbufPool::new();
        let mut m = Mbuf::gethdr(&pool);
        m.append_from(&[10, 11]);
        m.prepend_from(&[1, 2, 3]);
        assert_eq!(m.data(), &[1, 2, 3, 10, 11]);
        assert_eq!(m.leading_space(), MLEN - MHLEN - 3);
    }

    #[test]
    #[should_panic(expected = "exceeds leading space")]
    fn oversized_prepend_panics() {
        let pool = MbufPool::new();
        let mut m = Mbuf::get(&pool);
        m.prepend_from(&[0; 4]);
    }

    #[test]
    fn trim_front_and_back() {
        let pool = MbufPool::new();
        let mut m = Mbuf::get(&pool);
        m.append_from(&[1, 2, 3, 4, 5]);
        m.trim_front(2);
        assert_eq!(m.data(), &[3, 4, 5]);
        m.trim_back(1);
        assert_eq!(m.data(), &[3, 4]);
        // Over-trim empties without panicking.
        m.trim_front(100);
        assert!(m.is_empty());
        m.trim_back(100);
        assert!(m.is_empty());
    }

    #[test]
    fn drop_accounting_balances() {
        let pool = MbufPool::new();
        {
            let _a = Mbuf::get(&pool);
            let _b = Mbuf::gethdr(&pool);
            let _c = Mbuf::getcl(&pool);
            assert_eq!(pool.stats().mbufs_outstanding(), 3);
            assert_eq!(pool.stats().clusters_outstanding(), 1);
        }
        let s = pool.stats();
        assert_eq!(s.mbufs_outstanding(), 0);
        assert_eq!(s.clusters_outstanding(), 0);
    }
}
