//! `mbuf` — a faithful model of the BSD memory-buffer subsystem as it
//! existed in ULTRIX 4.2A / BSD 4.4 alpha, with real byte storage.
//!
//! §2.2.1 of the paper turns on three properties of this subsystem, all
//! reproduced here:
//!
//! - **Two buffer kinds.** Ordinary mbufs hold 108 bytes of data (100
//!   when they carry a packet header); *cluster* mbufs reference a
//!   4096-byte page. The ULTRIX socket layer switches from ordinary
//!   mbufs to clusters once a transfer exceeds 1 KB — the cause of the
//!   nonlinearity between the 500- and 1400-byte rows of the paper's
//!   Table 2.
//! - **Copy semantics.** `m_copy` on ordinary mbufs allocates fresh
//!   mbufs and copies the bytes; on cluster mbufs it merely bumps a
//!   reference count. TCP `m_copy`s every segment it transmits (to
//!   keep data for retransmission), so this difference shows up
//!   directly in the *mcopy* row of Table 2.
//! - **Cheap allocation.** Allocating and freeing an mbuf of either
//!   kind costs just over 7 µs on the DECstation — "a small cost
//!   relative to the overall cost of sending or receiving data".
//!
//! Every operation that touches memory returns an [`OpCost`] receipt
//! (bytes copied, buffers allocated/freed, clusters shared) which the
//! simulation layers convert into DECstation time via the `decstation`
//! cost model. The bytes themselves are real: payload data round-trips
//! through this subsystem and is verified end-to-end by the stack.
//!
//! # Examples
//!
//! ```
//! use mbuf::{Chain, MbufPool, MCLBYTES};
//!
//! let pool = MbufPool::new();
//! // Socket-layer style fill: over 1 KB, so clusters are used.
//! let (chain, cost) = Chain::from_user_data(&pool, &vec![7u8; 4000], true);
//! assert_eq!(chain.len(), 4000);
//! assert_eq!(cost.clusters_allocated, 1);
//!
//! // TCP-style m_copy: clusters are shared, not copied.
//! let (copy, ccost) = chain.copy_range(&pool, 0, 4000);
//! assert_eq!(copy.to_vec(), chain.to_vec());
//! assert_eq!(ccost.bytes_copied, 0);
//! assert_eq!(ccost.clusters_shared, 1);
//! ```

#![warn(missing_docs)]

pub mod chain;
pub mod cost;
pub mod mbuf;
pub mod pool;

pub use chain::Chain;
pub use cost::OpCost;
pub use mbuf::{Mbuf, MbufKind, MCLBYTES, MHLEN, MLEN, MSIZE};
pub use pool::{Enobufs, MbufPool, PoolStats};
