//! Mbuf chains: packets and socket buffers.
//!
//! A [`Chain`] models BSD's `m_next`-linked list of mbufs. The
//! operations mirror the kernel primitives the paper's code paths use:
//!
//! - the ULTRIX socket-layer fill (`sosend`'s uiomove loop), including
//!   the 1 KB switch from ordinary mbufs to clusters;
//! - `m_copy`, with the deep-copy vs reference-count split that
//!   produces the *mcopy* row of Table 2;
//! - `M_PREPEND` for the 40-byte TCP/IP header;
//! - `sbdrop`-style front trimming for socket buffers;
//! - checksum over a chain, both by walking the data and by combining
//!   per-mbuf partial checksums stored at fill time (§4.1.1).
//!
//! Every operation returns an [`OpCost`] receipt so the simulator can
//! charge calibrated DECstation time for the memory traffic.

use std::collections::VecDeque;

use cksum::{PartialChecksum, Sum16};

use crate::cost::OpCost;
use crate::mbuf::{Mbuf, PktHdr, MCLBYTES, MHLEN, MLEN};
use crate::pool::{Enobufs, MbufPool};

/// The ULTRIX 4.2A socket layer switches from ordinary mbufs to
/// cluster mbufs once the transfer exceeds 1 KB (§2.2.1).
pub const CLUSTER_THRESHOLD: usize = 1024;

/// A chain of mbufs representing a packet or a socket buffer.
///
/// # Examples
///
/// ```
/// use mbuf::{Chain, MbufPool};
///
/// let pool = MbufPool::new();
/// let (chain, cost) = Chain::from_user_data(&pool, b"hello", false);
/// assert_eq!(chain.to_vec(), b"hello");
/// assert_eq!(cost.bytes_copied, 5);
/// assert_eq!(cost.mbufs_allocated, 1);
/// ```
#[derive(Default)]
pub struct Chain {
    mbufs: VecDeque<Mbuf>,
}

impl Chain {
    /// An empty chain.
    #[must_use]
    pub fn new() -> Self {
        Chain::default()
    }

    /// Builds a chain from a single pre-allocated mbuf.
    #[must_use]
    pub fn from_mbuf(m: Mbuf) -> Self {
        let mut c = Chain::new();
        c.mbufs.push_back(m);
        c
    }

    /// Fills a chain from user data the way the ULTRIX socket layer
    /// does: cluster mbufs when `use_clusters` (the caller applies the
    /// [`CLUSTER_THRESHOLD`] policy), otherwise a packet-header mbuf
    /// (100 bytes) followed by ordinary mbufs (108 bytes each).
    ///
    /// Returns the chain and the work receipt (real copy of every
    /// byte plus the allocations).
    #[must_use]
    pub fn from_user_data(pool: &MbufPool, data: &[u8], use_clusters: bool) -> (Chain, OpCost) {
        Self::fill(pool, data, use_clusters, false)
    }

    /// Like [`Chain::from_user_data`], but also computes and stores a
    /// partial checksum in each mbuf as the data is copied in — the
    /// paper's send-side integrated copy-and-checksum (§4.1.1).
    ///
    /// The copy receipt is identical; the *checksum* work is implied
    /// by `integrated = true` and priced differently by the cost
    /// model (one integrated pass instead of copy + separate sum).
    #[must_use]
    pub fn from_user_data_cksum(
        pool: &MbufPool,
        data: &[u8],
        use_clusters: bool,
    ) -> (Chain, OpCost) {
        Self::fill(pool, data, use_clusters, true)
    }

    /// Fallible [`Chain::from_user_data`]: checks the pool's limit
    /// before each allocation and returns [`Enobufs`] when exhausted.
    /// A partially built chain is dropped (its mbufs return to the
    /// pool), so the receive path's failure mode is one counted drop,
    /// never a leak or a panic.
    pub fn try_from_user_data(
        pool: &MbufPool,
        data: &[u8],
        use_clusters: bool,
    ) -> Result<(Chain, OpCost), Enobufs> {
        let needed = expected_mbuf_count(data.len()) as u64;
        if let Some(limit) = pool.limit() {
            let outstanding = pool.stats().mbufs_outstanding();
            if outstanding + needed > limit {
                // Single counted refusal for the whole packet.
                pool.note_enobufs();
                return Err(Enobufs);
            }
        }
        Ok(Self::fill(pool, data, use_clusters, false))
    }

    fn fill(pool: &MbufPool, data: &[u8], use_clusters: bool, cksum: bool) -> (Chain, OpCost) {
        let mut chain = Chain::new();
        let mut cost = OpCost::ZERO;
        let mut remaining = data;
        let mut first = true;
        while !remaining.is_empty() || first {
            let mut m = if use_clusters {
                cost.clusters_allocated += 1;
                cost.mbufs_allocated += 1;
                let mut m = Mbuf::getcl(pool);
                if first {
                    m.pkthdr = Some(PktHdr::default());
                }
                m
            } else if first {
                cost.mbufs_allocated += 1;
                Mbuf::gethdr(pool)
            } else {
                cost.mbufs_allocated += 1;
                Mbuf::get(pool)
            };
            first = false;
            let taken = m.append_from(remaining);
            cost.bytes_copied += taken;
            if cksum {
                m.partial_cksum = Some(PartialChecksum::over(m.data()));
            }
            remaining = &remaining[taken..];
            chain.mbufs.push_back(m);
            if remaining.is_empty() {
                break;
            }
        }
        let total = data.len();
        if let Some(front) = chain.mbufs.front_mut() {
            if let Some(hdr) = front.pkthdr.as_mut() {
                hdr.len = total;
            }
        }
        (chain, cost)
    }

    /// Total data bytes in the chain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.mbufs.iter().map(Mbuf::len).sum()
    }

    /// Whether the chain holds no data.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of mbufs in the chain.
    #[must_use]
    pub fn mbuf_count(&self) -> usize {
        self.mbufs.len()
    }

    /// Iterates over the mbufs.
    pub fn iter(&self) -> impl Iterator<Item = &Mbuf> {
        self.mbufs.iter()
    }

    /// Flattens the chain into a vector (test/verification helper; the
    /// stack never does this on the data path).
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len());
        for m in &self.mbufs {
            out.extend_from_slice(m.data());
        }
        out
    }

    /// Copies `len` bytes starting at byte offset `off` into `dst`,
    /// returning the receipt. This is the `uiomove`-style copy used on
    /// the receive side (kernel → user) and by drivers (mbuf → device
    /// FIFO).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn copy_out(&self, off: usize, dst: &mut [u8]) -> OpCost {
        let len = dst.len();
        assert!(off + len <= self.len(), "copy_out range out of bounds");
        let mut skipped = 0usize;
        let mut written = 0usize;
        for m in &self.mbufs {
            if written == len {
                break;
            }
            let d = m.data();
            let start = off.saturating_sub(skipped).min(d.len());
            let take = (d.len() - start).min(len - written);
            dst[written..written + take].copy_from_slice(&d[start..start + take]);
            written += take;
            skipped += d.len();
        }
        OpCost::copy(len)
    }

    /// BSD `m_copy(m, off, len)`: a copy of the byte range for
    /// retransmission-safe transmission. Cluster mbufs are *shared*
    /// (reference count bump, no bytes move); ordinary mbufs are
    /// deep-copied into fresh mbufs. This asymmetry is the paper's
    /// *mcopy* row.
    ///
    /// Stored partial checksums transfer to the copy only when the
    /// copy covers the entire source mbuf (otherwise the partial sum
    /// no longer describes the copied bytes).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn copy_range(&self, pool: &MbufPool, off: usize, len: usize) -> (Chain, OpCost) {
        assert!(off + len <= self.len(), "copy_range out of bounds");
        let mut out = Chain::new();
        let mut cost = OpCost::ZERO;
        if len == 0 {
            return (out, cost);
        }
        let mut skipped = 0usize;
        let mut remaining = len;
        for m in &self.mbufs {
            if remaining == 0 {
                break;
            }
            let d_len = m.len();
            let start = off.saturating_sub(skipped).min(d_len);
            skipped += d_len;
            if start == d_len {
                continue;
            }
            let take = (d_len - start).min(remaining);
            remaining -= take;
            if m.is_cluster() {
                // Reference-count copy: "no storage is allocated or
                // data copied" (§2.2.1).
                let mut shared = m.share_cluster_range(pool, start, take);
                cost.mbufs_allocated += 1;
                cost.clusters_shared += 1;
                if take == d_len {
                    shared.partial_cksum = m.partial_cksum;
                }
                out.mbufs.push_back(shared);
            } else {
                // Deep copy through fresh ordinary mbufs.
                let src = &m.data()[start..start + take];
                let mut rest = src;
                while !rest.is_empty() {
                    let mut fresh = Mbuf::get(pool);
                    cost.mbufs_allocated += 1;
                    let n = fresh.append_from(rest);
                    cost.bytes_copied += n;
                    if n == d_len && take == d_len {
                        fresh.partial_cksum = m.partial_cksum;
                    }
                    rest = &rest[n..];
                    out.mbufs.push_back(fresh);
                }
            }
        }
        (out, cost)
    }

    /// Appends another chain (BSD `m_cat` without compaction).
    pub fn append(&mut self, mut other: Chain) {
        self.mbufs.append(&mut other.mbufs);
    }

    /// Appends raw bytes, filling trailing capacity of the last mbuf
    /// and then new mbufs (clusters iff `use_clusters`). Used by
    /// socket buffers. Returns the receipt.
    #[must_use]
    pub fn append_bytes(&mut self, pool: &MbufPool, data: &[u8], use_clusters: bool) -> OpCost {
        let mut cost = OpCost::ZERO;
        let mut remaining = data;
        if let Some(last) = self.mbufs.back_mut() {
            if !last.is_shared() && last.capacity_remaining() > 0 {
                let n = last.append_from(remaining);
                cost.bytes_copied += n;
                remaining = &remaining[n..];
            }
        }
        while !remaining.is_empty() {
            let mut m = if use_clusters {
                cost.clusters_allocated += 1;
                cost.mbufs_allocated += 1;
                Mbuf::getcl(pool)
            } else {
                cost.mbufs_allocated += 1;
                Mbuf::get(pool)
            };
            let n = m.append_from(remaining);
            cost.bytes_copied += n;
            remaining = &remaining[n..];
            self.mbufs.push_back(m);
        }
        cost
    }

    /// Drops `n` bytes from the front, freeing emptied mbufs (BSD
    /// `sbdrop`). No bytes are copied.
    #[must_use]
    pub fn trim_front(&mut self, mut n: usize) -> OpCost {
        let mut cost = OpCost::ZERO;
        while n > 0 {
            let Some(front) = self.mbufs.front_mut() else {
                break;
            };
            if front.len() <= n {
                n -= front.len();
                self.mbufs.pop_front();
                cost.mbufs_freed += 1;
            } else {
                front.trim_front(n);
                n = 0;
            }
        }
        cost
    }

    /// Drops `n` bytes from the back, freeing emptied mbufs (BSD
    /// `m_adj` with a negative count). Used to strip link-layer
    /// padding. No bytes are copied.
    pub fn trim_back_bytes(&mut self, mut n: usize) {
        while n > 0 {
            let Some(back) = self.mbufs.back_mut() else {
                break;
            };
            if back.len() <= n {
                n -= back.len();
                self.mbufs.pop_back();
            } else {
                back.trim_back(n);
                n = 0;
            }
        }
    }

    /// Prepends a protocol header (BSD `M_PREPEND`): in place when the
    /// first mbuf has leading space and exclusive storage, otherwise
    /// via a fresh header mbuf.
    #[must_use]
    pub fn prepend_header(&mut self, pool: &MbufPool, header: &[u8]) -> OpCost {
        let mut cost = OpCost::copy(header.len());
        let total = self.len() + header.len();
        let in_place = self
            .mbufs
            .front()
            .is_some_and(|m| !m.is_shared() && m.leading_space() >= header.len());
        if in_place {
            let front = self.mbufs.front_mut().expect("nonempty checked");
            front.prepend_from(header);
        } else {
            let mut m = Mbuf::gethdr(pool);
            cost.mbufs_allocated += 1;
            let took = m.append_from(header);
            assert_eq!(took, header.len(), "header exceeds MHLEN");
            self.mbufs.push_front(m);
        }
        if let Some(front) = self.mbufs.front_mut() {
            let hdr = front.pkthdr.get_or_insert(PktHdr::default());
            hdr.len = total;
        }
        cost
    }

    /// Computes the ones-complement sum by walking all data in the
    /// chain (the non-integrated checksum path). The receipt is the
    /// number of bytes summed, which the cost model prices at the
    /// in-kernel checksum rate.
    #[must_use]
    pub fn checksum_walk(&self) -> (Sum16, usize) {
        let mut acc = PartialChecksum::EMPTY;
        for m in &self.mbufs {
            acc = acc.append(PartialChecksum::over(m.data()));
        }
        (acc.sum(), acc.len())
    }

    /// Combines the partial checksums stored in the mbuf headers, if
    /// *every* mbuf carries one. Returns `None` when any mbuf lacks a
    /// stored sum — the TCP layer then falls back to
    /// [`Chain::checksum_walk`], exactly as the paper describes for
    /// chunks that straddle segment boundaries.
    #[must_use]
    pub fn stored_checksum(&self) -> Option<Sum16> {
        let mut acc = PartialChecksum::EMPTY;
        for m in &self.mbufs {
            let p = m.partial_cksum?;
            debug_assert_eq!(p.len(), m.len(), "stale partial checksum");
            acc = acc.append(p);
        }
        Some(acc.sum())
    }

    /// Recomputes and stores the partial checksum of every mbuf (used
    /// by the receive-side integration where the driver checksums
    /// during the device→mbuf copy).
    pub fn store_partial_checksums(&mut self) {
        for m in &mut self.mbufs {
            m.partial_cksum = Some(PartialChecksum::over(m.data()));
        }
    }

    /// Verifies the chain's data equals `expect` (end-to-end payload
    /// integrity check used by tests and the harness).
    #[must_use]
    pub fn data_equals(&self, expect: &[u8]) -> bool {
        if self.len() != expect.len() {
            return false;
        }
        let mut off = 0;
        for m in &self.mbufs {
            if m.data() != &expect[off..off + m.len()] {
                return false;
            }
            off += m.len();
        }
        true
    }
}

/// Decides whether a transfer of `len` bytes uses cluster mbufs under
/// the ULTRIX policy the paper observed (switch above 1 KB).
#[must_use]
pub fn ultrix_uses_clusters(len: usize) -> bool {
    len > CLUSTER_THRESHOLD
}

/// Expected mbuf count for a transfer under the ULTRIX fill policy —
/// the "one to eight mbufs ... for transfers of less than 1 KB"
/// arithmetic of §2.2.1. Exposed for tests and the harness.
#[must_use]
pub fn expected_mbuf_count(len: usize) -> usize {
    if ultrix_uses_clusters(len) {
        len.div_ceil(MCLBYTES)
    } else if len <= MHLEN {
        1
    } else {
        1 + (len - MHLEN).div_ceil(MLEN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cksum::optimized_cksum;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 13 + 5) as u8).collect()
    }

    #[test]
    fn small_fill_matches_paper_mbuf_counts() {
        let pool = MbufPool::new();
        // §2.2.1: 500 bytes -> 100 + 4×108-ish = 5 mbufs.
        let (chain, cost) = Chain::from_user_data(&pool, &payload(500), false);
        assert_eq!(chain.mbuf_count(), 5);
        assert_eq!(chain.mbuf_count(), expected_mbuf_count(500));
        assert_eq!(cost.bytes_copied, 500);
        assert_eq!(cost.mbufs_allocated, 5);
        assert_eq!(cost.clusters_allocated, 0);
        assert!(chain.data_equals(&payload(500)));
    }

    #[test]
    fn tiny_fill_uses_one_mbuf() {
        let pool = MbufPool::new();
        for n in [0usize, 1, 4, 20, 80, 100] {
            let (chain, _) = Chain::from_user_data(&pool, &payload(n), false);
            assert_eq!(chain.mbuf_count(), 1, "{n} bytes");
            assert_eq!(chain.len(), n);
        }
    }

    #[test]
    fn cluster_fill_counts() {
        let pool = MbufPool::new();
        let (chain, cost) = Chain::from_user_data(&pool, &payload(8000), true);
        assert_eq!(chain.mbuf_count(), 2);
        assert_eq!(cost.clusters_allocated, 2);
        assert_eq!(cost.bytes_copied, 8000);
        assert!(chain.data_equals(&payload(8000)));
        assert_eq!(expected_mbuf_count(8000), 2);
        assert_eq!(expected_mbuf_count(1400), 1);
        assert_eq!(expected_mbuf_count(4000), 1);
    }

    #[test]
    fn ultrix_cluster_policy() {
        assert!(!ultrix_uses_clusters(500));
        assert!(!ultrix_uses_clusters(1024));
        assert!(ultrix_uses_clusters(1025));
        assert!(ultrix_uses_clusters(1400));
    }

    #[test]
    fn pkthdr_len_is_total() {
        let pool = MbufPool::new();
        let (chain, _) = Chain::from_user_data(&pool, &payload(500), false);
        assert_eq!(chain.iter().next().unwrap().pkthdr.unwrap().len, 500);
    }

    #[test]
    fn copy_range_shares_clusters() {
        let pool = MbufPool::new();
        let data = payload(8000);
        let (chain, _) = Chain::from_user_data(&pool, &data, true);
        let (copy, cost) = chain.copy_range(&pool, 0, 8000);
        assert_eq!(cost.bytes_copied, 0, "cluster copy must be zero-copy");
        assert_eq!(cost.clusters_shared, 2);
        assert_eq!(cost.mbufs_allocated, 2);
        assert!(copy.data_equals(&data));
    }

    #[test]
    fn copy_range_deep_copies_small_mbufs() {
        let pool = MbufPool::new();
        let data = payload(500);
        let (chain, _) = Chain::from_user_data(&pool, &data, false);
        let (copy, cost) = chain.copy_range(&pool, 0, 500);
        assert_eq!(cost.bytes_copied, 500);
        assert_eq!(cost.clusters_shared, 0);
        assert!(copy.data_equals(&data));
    }

    #[test]
    fn copy_range_subrange() {
        let pool = MbufPool::new();
        let data = payload(6000);
        let (chain, _) = Chain::from_user_data(&pool, &data, true);
        let (copy, _) = chain.copy_range(&pool, 4096, 1500);
        assert!(copy.data_equals(&data[4096..4096 + 1500]));
        // A misaligned range spanning both clusters.
        let (copy2, _) = chain.copy_range(&pool, 4000, 200);
        assert!(copy2.data_equals(&data[4000..4200]));
    }

    #[test]
    fn copy_out_arbitrary_ranges() {
        let pool = MbufPool::new();
        let data = payload(777);
        let (chain, _) = Chain::from_user_data(&pool, &data, false);
        let mut dst = vec![0u8; 300];
        let cost = chain.copy_out(111, &mut dst);
        assert_eq!(cost.bytes_copied, 300);
        assert_eq!(&dst[..], &data[111..411]);
    }

    #[test]
    fn trim_front_frees_mbufs() {
        let pool = MbufPool::new();
        let (mut chain, _) = Chain::from_user_data(&pool, &payload(500), false);
        // Drop the first 250 bytes: mbuf sizes are 100 + 108 + ...; two
        // mbufs empty completely, the third is trimmed.
        let cost = chain.trim_front(250);
        assert_eq!(cost.mbufs_freed, 2);
        assert_eq!(chain.len(), 250);
        assert!(chain.data_equals(&payload(500)[250..]));
    }

    #[test]
    fn prepend_uses_leading_space_or_new_mbuf() {
        let pool = MbufPool::new();
        let (mut chain, _) = Chain::from_user_data(&pool, &payload(50), false);
        // gethdr leaves MLEN-MHLEN = 8 bytes of space.
        let cost = chain.prepend_header(&pool, &[0xaa; 8]);
        assert_eq!(cost.mbufs_allocated, 0, "8 bytes fit in leading space");
        assert_eq!(chain.len(), 58);
        // A 40-byte TCP/IP header no longer fits: a new mbuf appears.
        let cost = chain.prepend_header(&pool, &[0xbb; 40]);
        assert_eq!(cost.mbufs_allocated, 1);
        assert_eq!(chain.len(), 98);
        let flat = chain.to_vec();
        assert_eq!(&flat[..40], &[0xbb; 40]);
        assert_eq!(&flat[40..48], &[0xaa; 8]);
        assert_eq!(chain.iter().next().unwrap().pkthdr.unwrap().len, 98);
    }

    #[test]
    fn checksum_walk_matches_flat() {
        let pool = MbufPool::new();
        for n in [4usize, 500, 1400, 8000] {
            let data = payload(n);
            let use_cl = ultrix_uses_clusters(n);
            let (chain, _) = Chain::from_user_data(&pool, &data, use_cl);
            let (sum, bytes) = chain.checksum_walk();
            assert_eq!(bytes, n);
            assert_eq!(sum, optimized_cksum(&data), "{n} bytes");
        }
    }

    #[test]
    fn stored_checksums_combine() {
        let pool = MbufPool::new();
        let data = payload(5000);
        let (chain, _) = Chain::from_user_data_cksum(&pool, &data, true);
        let stored = chain.stored_checksum().expect("all mbufs have partials");
        assert_eq!(stored, optimized_cksum(&data));
    }

    #[test]
    fn stored_checksum_absent_without_integration() {
        let pool = MbufPool::new();
        let (chain, _) = Chain::from_user_data(&pool, &payload(100), false);
        assert!(chain.stored_checksum().is_none());
    }

    #[test]
    fn stored_checksums_survive_full_mbuf_copy() {
        let pool = MbufPool::new();
        let data = payload(5000);
        let (chain, _) = Chain::from_user_data_cksum(&pool, &data, true);
        let (copy, _) = chain.copy_range(&pool, 0, 5000);
        let stored = copy
            .stored_checksum()
            .expect("cluster shares keep partials");
        assert_eq!(stored, optimized_cksum(&data));
    }

    #[test]
    fn partial_checksums_cleared_by_mutation() {
        let pool = MbufPool::new();
        let (mut chain, _) = Chain::from_user_data_cksum(&pool, &payload(500), false);
        let _ = chain.trim_front(10);
        assert!(
            chain.stored_checksum().is_none(),
            "trim invalidates partials"
        );
    }

    #[test]
    fn append_bytes_fills_tail_capacity() {
        let pool = MbufPool::new();
        let (mut chain, _) = Chain::from_user_data(&pool, &payload(50), false);
        let cost = chain.append_bytes(&pool, &payload(30), false);
        assert_eq!(
            cost.mbufs_allocated, 0,
            "50+30 fits in the 100-byte header mbuf"
        );
        assert_eq!(chain.len(), 80);
        let cost = chain.append_bytes(&pool, &payload(200), false);
        assert!(cost.mbufs_allocated >= 1);
        assert_eq!(chain.len(), 280);
    }

    #[test]
    fn try_from_user_data_respects_the_pool_limit() {
        let pool = MbufPool::new();
        pool.set_limit(Some(3));
        // 500 bytes needs 5 small mbufs: refused, nothing allocated.
        assert!(Chain::try_from_user_data(&pool, &payload(500), false).is_err());
        let s = pool.stats();
        assert_eq!(s.mbufs_outstanding(), 0);
        assert_eq!(s.enobufs_drops, 1);
        // A small packet still fits.
        let (chain, _) = Chain::try_from_user_data(&pool, &payload(50), false).expect("fits");
        assert!(chain.data_equals(&payload(50)));
        drop(chain);
        assert_eq!(pool.stats().mbufs_outstanding(), 0);
    }

    #[test]
    fn no_leaks_after_mixed_workload() {
        let pool = MbufPool::new();
        {
            let data = payload(8000);
            let (chain, _) = Chain::from_user_data(&pool, &data, true);
            let (copy, _) = chain.copy_range(&pool, 100, 7000);
            let mut sb = Chain::new();
            sb.append(copy);
            let _ = sb.trim_front(5000);
            let (small, _) = Chain::from_user_data(&pool, &payload(300), false);
            drop(small);
        }
        let s = pool.stats();
        assert_eq!(s.mbufs_outstanding(), 0, "{s:?}");
        assert_eq!(s.clusters_outstanding(), 0, "{s:?}");
    }
}
