//! Fletcher checksums — the alternate algorithms of RFC 1146.
//!
//! §4.2 adopts the Alternate Checksum Option as the negotiation
//! vehicle for checksum *elimination*; RFC 1146 itself defines two
//! positive alternatives, the 8-bit and 16-bit Fletcher checksums.
//! They are implemented here so the negotiation machinery has real
//! algorithms to negotiate, and because they make an instructive
//! comparison point: Fletcher's sums are position-sensitive (they
//! catch the byte-swap and reordering errors the ones-complement sum
//! is blind to) at a cost of two accumulators per byte.
//!
//! Both follow RFC 1146's formulation: two mod-255 (or mod-65535)
//! accumulators, with the check bytes chosen so a verifier summing
//! the whole segment (data plus check bytes) gets zero in both
//! accumulators.

/// The 8-bit Fletcher state: `a` is the running byte sum, `b` the
/// running sum of `a` (both mod 255).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Fletcher8 {
    a: u32,
    b: u32,
}

impl Fletcher8 {
    /// Fresh state.
    #[must_use]
    pub fn new() -> Self {
        Fletcher8::default()
    }

    /// Absorbs bytes.
    pub fn update(&mut self, data: &[u8]) {
        // Defer the mod-255 reduction: with a,b < 255 and chunks of
        // ≤ 5802 bytes, b stays below 2^32 (255·n + 255·n·(n+1)/2).
        for chunk in data.chunks(4096) {
            for &byte in chunk {
                self.a += u32::from(byte);
                self.b += self.a;
            }
            self.a %= 255;
            self.b %= 255;
        }
    }

    /// The two check bytes to append so the whole verifies to zero.
    ///
    /// Absorbing bytes `x` then `y` gives `a' = a + x + y` and
    /// `b' = b + (a + x) + a'`; requiring both ≡ 0 (mod 255) yields
    /// `x ≡ −(a + b)` and `y ≡ −(a + x)`.
    #[must_use]
    pub fn check_bytes(mut self) -> [u8; 2] {
        self.a %= 255;
        self.b %= 255;
        let x = (510 - self.a - self.b) % 255;
        let y = (255 - (self.a + x) % 255) % 255;
        [x as u8, y as u8]
    }

    /// One-shot checksum of `data`.
    #[must_use]
    pub fn over(data: &[u8]) -> [u8; 2] {
        let mut f = Fletcher8::new();
        f.update(data);
        f.check_bytes()
    }

    /// Verifies a buffer whose final two bytes are its check bytes.
    #[must_use]
    pub fn verify(data_with_check: &[u8]) -> bool {
        let mut f = Fletcher8::new();
        f.update(data_with_check);
        f.a.is_multiple_of(255) && f.b.is_multiple_of(255)
    }
}

/// The 16-bit Fletcher checksum over 16-bit words (odd trailing byte
/// padded with zero), mod 65535.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Fletcher16 {
    a: u64,
    b: u64,
}

impl Fletcher16 {
    /// Fresh state.
    #[must_use]
    pub fn new() -> Self {
        Fletcher16::default()
    }

    /// Absorbs bytes (big-endian 16-bit words).
    pub fn update(&mut self, data: &[u8]) {
        let mut words = data.chunks_exact(2);
        for w in &mut words {
            self.a += u64::from(u16::from_be_bytes([w[0], w[1]]));
            self.b += self.a;
            if self.b >= 1 << 56 {
                self.a %= 65_535;
                self.b %= 65_535;
            }
        }
        if let [last] = words.remainder() {
            self.a += u64::from(u16::from_be_bytes([*last, 0]));
            self.b += self.a;
        }
        self.a %= 65_535;
        self.b %= 65_535;
    }

    /// The two check words to append so the whole verifies to zero.
    #[must_use]
    pub fn check_words(self) -> [u16; 2] {
        let x = (131_070 - self.a - self.b) % 65_535;
        let a_needed = (65_535 - (self.a + x) % 65_535) % 65_535;
        [x as u16, a_needed as u16]
    }

    /// Verifies a buffer whose final four bytes are its check words.
    #[must_use]
    pub fn verify(data_with_check: &[u8]) -> bool {
        let mut f = Fletcher16::new();
        f.update(data_with_check);
        f.a.is_multiple_of(65_535) && f.b.is_multiple_of(65_535)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 23 + 11) as u8).collect()
    }

    #[test]
    fn fletcher8_roundtrip() {
        for n in [0usize, 1, 2, 3, 100, 1400, 8000] {
            let mut buf = payload(n);
            let check = Fletcher8::over(&buf);
            buf.extend_from_slice(&check);
            assert!(Fletcher8::verify(&buf), "size {n}");
        }
    }

    #[test]
    fn fletcher8_detects_corruption_and_swaps() {
        let mut buf = payload(200);
        buf.extend_from_slice(&Fletcher8::over(&payload(200)));
        for i in (0..200).step_by(13) {
            let mut bad = buf.clone();
            bad[i] ^= 0x04;
            assert!(!Fletcher8::verify(&bad), "flip at {i}");
        }
        // A byte swap — invisible to the ones-complement Internet sum
        // when within a word boundary pattern — is caught by Fletcher.
        let mut swapped = buf.clone();
        swapped.swap(10, 50);
        assert!(buf[10] != buf[50]);
        assert!(!Fletcher8::verify(&swapped));
    }

    #[test]
    fn fletcher16_roundtrip() {
        for n in [0usize, 1, 2, 5, 200, 1400, 8000] {
            let mut buf = payload(n);
            if buf.len() % 2 == 1 {
                buf.push(0); // RFC 1146 pads to a word boundary.
            }
            let mut f = Fletcher16::new();
            f.update(&buf);
            let [x, y] = f.check_words();
            buf.extend_from_slice(&x.to_be_bytes());
            buf.extend_from_slice(&y.to_be_bytes());
            assert!(Fletcher16::verify(&buf), "size {n}");
        }
    }

    #[test]
    fn fletcher16_detects_word_reordering() {
        // The Internet checksum famously cannot see word reorderings;
        // Fletcher-16 can.
        let mut buf = payload(64);
        let internet_before = crate::optimized_cksum(&buf);
        let mut f = Fletcher16::new();
        f.update(&buf);
        let fw = f.check_words();
        // Swap two 16-bit words.
        buf.swap(2, 6);
        buf.swap(3, 7);
        let internet_after = crate::optimized_cksum(&buf);
        assert_eq!(internet_before, internet_after, "ones-complement is blind");
        let mut f2 = Fletcher16::new();
        f2.update(&buf);
        assert_ne!(fw, f2.check_words(), "Fletcher sees position");
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = payload(1000);
        let mut inc = Fletcher8::new();
        for chunk in data.chunks(37) {
            inc.update(chunk);
        }
        assert_eq!(inc.check_bytes(), Fletcher8::over(&data));
    }
}
