//! Cyclic redundancy checks used by the link layers.
//!
//! Three CRCs appear in the reproduced system:
//!
//! - **CRC-10** protects each AAL3/4 SAR cell payload (ITU-T I.363,
//!   generator `x^10 + x^9 + x^5 + x^4 + x + 1`).
//! - **CRC-32** protects the AAL5 CPCS-PDU and every Ethernet frame
//!   (IEEE 802.3, the usual reflected 0x04C11DB7 polynomial).
//! - **HEC** (CRC-8, `x^8 + x^2 + x + 1`, coset 0x55) protects the
//!   ATM cell header.
//!
//! §4.2.1 of the paper leans on these: "standard ATM adaptation
//! layers (e.g., AAL3/4 and AAL5) specify end-to-end CRC checksums on
//! the data, and host-network interfaces implement these in
//! hardware". The checksum-elimination experiments re-create that
//! layering: when the TCP checksum is off, these CRCs are the only
//! integrity checks left, and the error-injection experiment measures
//! what each layer catches.

/// Computes the 10-bit AAL3/4 SAR CRC over `data`.
///
/// Bitwise (MSB-first) implementation of `x^10+x^9+x^5+x^4+x+1`
/// (polynomial bits `0x633`), zero initial value.
///
/// # Examples
///
/// ```
/// use cksum::crc::crc10;
///
/// let c = crc10(&[0u8; 44]);
/// assert_eq!(c, 0);
/// assert_ne!(crc10(b"data"), 0);
/// ```
#[must_use]
pub fn crc10(data: &[u8]) -> u16 {
    crc10_bits(data, data.len() * 8)
}

/// Computes the CRC-10 over the first `nbits` bits of `data`
/// (MSB-first within each byte).
///
/// AAL3/4 needs sub-byte granularity: the SAR-PDU trailer packs a
/// 6-bit length indicator and the 10-bit CRC into two bytes, so the
/// CRC covers a bit count that is not a multiple of eight.
///
/// # Panics
///
/// Panics if `nbits` exceeds the available bits.
#[must_use]
pub fn crc10_bits(data: &[u8], nbits: usize) -> u16 {
    assert!(nbits <= data.len() * 8, "nbits out of range");
    // Non-augmented bit-serial form: feedback is the register's top
    // bit XOR the input bit; appending the CRC itself then divides to
    // zero. Polynomial bits below x^10: x^9+x^5+x^4+x+1 = 0x233.
    let mut crc: u16 = 0;
    for i in 0..nbits {
        let bit = (data[i / 8] >> (7 - i % 8)) & 1;
        let feedback = ((crc >> 9) as u8 ^ bit) & 1;
        crc = (crc << 1) & 0x3ff;
        if feedback != 0 {
            crc ^= 0x233;
        }
    }
    crc
}

/// Verifies a buffer whose final 10 bits carry its CRC-10, AAL3/4
/// style: including the CRC makes the whole divide to zero.
#[must_use]
pub fn crc10_check(data_with_crc: &[u8]) -> bool {
    crc10(data_with_crc) == 0
}

/// The IEEE 802.3 CRC-32 (reflected, init all-ones, final inversion).
///
/// # Examples
///
/// ```
/// use cksum::crc::crc32;
///
/// // The classic check value.
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xedb8_8320;
            }
        }
    }
    !crc
}

/// The ATM Header Error Control byte: CRC-8 with generator
/// `x^8 + x^2 + x + 1` over the first four header octets, XORed with
/// the coset leader 0x55 (ITU-T I.432).
#[must_use]
pub fn hec(header4: [u8; 4]) -> u8 {
    let mut crc: u8 = 0;
    for byte in header4 {
        crc ^= byte;
        for _ in 0..8 {
            if crc & 0x80 != 0 {
                crc = (crc << 1) ^ 0x07;
            } else {
                crc <<= 1;
            }
        }
    }
    crc ^ 0x55
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data: Vec<u8> = (0..64u8).collect();
        let clean = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[i] ^= 1 << bit;
                assert_ne!(crc32(&bad), clean);
            }
        }
    }

    #[test]
    fn crc10_is_10_bits() {
        for pattern in [&b"hello"[..], &[0xffu8; 44][..], &[0x01u8][..]] {
            assert!(crc10(pattern) <= 0x3ff);
        }
    }

    #[test]
    fn crc10_roundtrip_appended() {
        // AAL3/4 style: compute over payload + 6-bit LI, then stuff
        // the CRC into the final 10 bits; re-checking the whole
        // divides to zero.
        let payload = b"0123456789abcdef0123456789abcdef0123456789ab"; // 44 B.
        let mut cell = Vec::from(&payload[..]);
        cell.push(44 << 2); // LI in the top 6 bits of the trailer halfword.
        cell.push(0);
        let covered_bits = 44 * 8 + 6;
        let c = crc10_bits(&cell, covered_bits);
        let n = cell.len();
        cell[n - 2] |= (c >> 8) as u8;
        cell[n - 1] = (c & 0xff) as u8;
        assert!(crc10_check(&cell));
        // Any corruption breaks it.
        cell[3] ^= 0x40;
        assert!(!crc10_check(&cell));
    }

    #[test]
    fn crc10_bits_byte_aligned_matches_crc10() {
        let data = b"some aal34 payload";
        assert_eq!(crc10(data), crc10_bits(data, data.len() * 8));
    }

    #[test]
    #[should_panic(expected = "nbits out of range")]
    fn crc10_bits_range_checked() {
        let _ = crc10_bits(&[0u8; 2], 17);
    }

    #[test]
    fn crc10_detects_burst_errors_within_10_bits() {
        let payload = vec![0xa5u8; 44];
        let clean = crc10(&payload);
        for start in (0..payload.len() * 8 - 10).step_by(13) {
            let mut bad = payload.clone();
            // Flip a 10-bit burst starting at `start`.
            for b in start..start + 10 {
                bad[b / 8] ^= 1 << (b % 8);
            }
            assert_ne!(crc10(&bad), clean, "burst at {start}");
        }
    }

    #[test]
    fn hec_distinguishes_headers() {
        let a = hec([0x00, 0x00, 0x00, 0x10]);
        let b = hec([0x00, 0x00, 0x01, 0x10]);
        assert_ne!(a, b);
        // The coset leader makes the all-zero header nonzero.
        assert_eq!(hec([0, 0, 0, 0]), 0x55);
    }
}
