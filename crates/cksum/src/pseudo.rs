//! The TCP/UDP pseudo-header contribution to the transport checksum.
//!
//! The TCP checksum covers the TCP header and data *plus* a
//! pseudo-header drawn from the IP layer: source and destination
//! addresses, the protocol number, and the TCP segment length (RFC 793
//! §3.1). The paper's checksum rows (Tables 2 and 3) are computed over
//! "the data and the TCP/IP header (20 bytes for TCP header + 20 bytes
//! for IP overlay + length of TCP options)" — the "IP overlay" being
//! exactly this pseudo-header material.

use crate::sum::Sum16;

/// IP protocol number for TCP.
pub const IPPROTO_TCP: u8 = 6;

/// IP protocol number for UDP.
pub const IPPROTO_UDP: u8 = 17;

/// Computes the ones-complement sum of the IPv4 pseudo-header.
///
/// `transport_len` is the length of the transport header plus payload
/// in bytes.
///
/// # Examples
///
/// ```
/// use cksum::{pseudo_header_sum, Sum16};
/// use cksum::pseudo::IPPROTO_TCP;
///
/// let ph = pseudo_header_sum([10, 0, 0, 1], [10, 0, 0, 2], IPPROTO_TCP, 40);
/// // Combine with the segment sum, then complement for the wire.
/// let seg = Sum16::over(&[0u8; 40]);
/// let _wire = ph.add(seg).finish();
/// ```
#[must_use]
pub fn pseudo_header_sum(src: [u8; 4], dst: [u8; 4], proto: u8, transport_len: u16) -> Sum16 {
    Sum16::ZERO
        .add_word(u16::from_be_bytes([src[0], src[1]]))
        .add_word(u16::from_be_bytes([src[2], src[3]]))
        .add_word(u16::from_be_bytes([dst[0], dst[1]]))
        .add_word(u16::from_be_bytes([dst[2], dst[3]]))
        .add_word(u16::from(proto))
        .add_word(transport_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::naive_cksum;

    /// Builds the pseudo-header as laid out on the wire and checks the
    /// shortcut sum against a byte-level computation.
    #[test]
    fn matches_byte_layout() {
        let src = [192, 168, 1, 10];
        let dst = [192, 168, 1, 20];
        let proto = IPPROTO_TCP;
        let tlen: u16 = 1234;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&src);
        bytes.extend_from_slice(&dst);
        bytes.push(0);
        bytes.push(proto);
        bytes.extend_from_slice(&tlen.to_be_bytes());
        assert_eq!(
            pseudo_header_sum(src, dst, proto, tlen),
            naive_cksum(&bytes)
        );
    }

    #[test]
    fn differs_when_any_field_changes() {
        let base = pseudo_header_sum([1, 2, 3, 4], [5, 6, 7, 8], IPPROTO_TCP, 100);
        assert_ne!(
            base,
            pseudo_header_sum([1, 2, 3, 5], [5, 6, 7, 8], IPPROTO_TCP, 100)
        );
        assert_ne!(
            base,
            pseudo_header_sum([1, 2, 3, 4], [5, 6, 7, 8], IPPROTO_UDP, 100)
        );
        assert_ne!(
            base,
            pseudo_header_sum([1, 2, 3, 4], [5, 6, 7, 8], IPPROTO_TCP, 101)
        );
    }
}
