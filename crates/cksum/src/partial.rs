//! Partial checksums over packet fragments.
//!
//! The paper's send-side integration (§4.1.1) checksums each chunk of
//! user data *as it is copied into an mbuf at the socket layer* and
//! stores the partial sum in the mbuf header. When TCP later builds a
//! segment, it combines the stored partial sums instead of walking the
//! data again — but only if every byte in the mbuf ends up in the same
//! segment; otherwise the partial sum is useless and TCP falls back to
//! summing the data.
//!
//! Combining partial sums requires tracking each fragment's byte
//! length, because a fragment appended at an odd byte offset
//! contributes its sum byte-swapped (RFC 1071 §2B). A
//! [`PartialChecksum`] is therefore a `(sum, length)` pair forming a
//! monoid under [`PartialChecksum::append`].

use crate::sum::Sum16;

/// The checksum of a fragment of a larger packet: the ones-complement
/// sum of the fragment's bytes together with the fragment's length.
///
/// # Examples
///
/// ```
/// use cksum::PartialChecksum;
///
/// let whole = PartialChecksum::over(b"hello world");
/// let parts = PartialChecksum::over(b"hello")
///     .append(PartialChecksum::over(b" wor"))
///     .append(PartialChecksum::over(b"ld"));
/// assert_eq!(whole, parts);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct PartialChecksum {
    sum: Sum16,
    len: usize,
}

impl PartialChecksum {
    /// The empty fragment (identity of [`append`](Self::append)).
    pub const EMPTY: PartialChecksum = PartialChecksum {
        sum: Sum16::ZERO,
        len: 0,
    };

    /// Computes the partial checksum of a fragment.
    #[must_use]
    pub fn over(data: &[u8]) -> Self {
        PartialChecksum {
            sum: crate::algos::optimized_cksum(data),
            len: data.len(),
        }
    }

    /// Builds a partial checksum from an already-computed sum and the
    /// fragment length it covers (e.g. from [`crate::copy_and_cksum`]).
    #[must_use]
    pub const fn from_sum(sum: Sum16, len: usize) -> Self {
        PartialChecksum { sum, len }
    }

    /// The fragment's ones-complement sum, as if the fragment started
    /// at offset zero.
    #[inline]
    #[must_use]
    pub const fn sum(self) -> Sum16 {
        self.sum
    }

    /// The fragment length in bytes.
    #[inline]
    #[must_use]
    pub const fn len(self) -> usize {
        self.len
    }

    /// Whether the fragment is empty.
    #[inline]
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.len == 0
    }

    /// Concatenation: the partial checksum of `self` followed by
    /// `right`.
    ///
    /// If `self` has odd length, `right`'s sum enters byte-swapped.
    #[must_use]
    pub const fn append(self, right: PartialChecksum) -> PartialChecksum {
        let right_sum = if self.len % 2 == 1 {
            right.sum.swapped()
        } else {
            right.sum
        };
        PartialChecksum {
            sum: self.sum.add(right_sum),
            len: self.len + right.len,
        }
    }

    /// The wire checksum of the whole (complement of the sum), valid
    /// when this fragment *is* the whole packet.
    #[inline]
    #[must_use]
    pub const fn finish(self) -> u16 {
        self.sum.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::naive_cksum;

    #[test]
    fn identity() {
        let p = PartialChecksum::over(b"abcdef");
        assert_eq!(PartialChecksum::EMPTY.append(p), p);
        assert_eq!(p.append(PartialChecksum::EMPTY), p);
        assert!(PartialChecksum::EMPTY.is_empty());
    }

    #[test]
    fn append_matches_whole_for_even_split() {
        let data: Vec<u8> = (0..100u8).collect();
        let (a, b) = data.split_at(40);
        let combined = PartialChecksum::over(a).append(PartialChecksum::over(b));
        assert_eq!(combined.sum(), naive_cksum(&data));
        assert_eq!(combined.len(), 100);
    }

    #[test]
    fn append_matches_whole_for_every_split_point() {
        let data: Vec<u8> = (0..64).map(|i| (i * 37 + 5) as u8).collect();
        let whole = naive_cksum(&data);
        for split in 0..=data.len() {
            let (a, b) = data.split_at(split);
            let combined = PartialChecksum::over(a).append(PartialChecksum::over(b));
            assert_eq!(combined.sum(), whole, "split {split}");
        }
    }

    #[test]
    fn three_way_odd_splits() {
        let data: Vec<u8> = (0..31).map(|i| (i * 3) as u8).collect();
        let whole = naive_cksum(&data);
        // Split 31 bytes as 7 + 9 + 15 (all odd pieces).
        let combined = PartialChecksum::over(&data[..7])
            .append(PartialChecksum::over(&data[7..16]))
            .append(PartialChecksum::over(&data[16..]));
        assert_eq!(combined.sum(), whole);
    }

    #[test]
    fn associativity() {
        let a = PartialChecksum::over(b"abc");
        let b = PartialChecksum::over(b"defgh");
        let c = PartialChecksum::over(b"ij");
        assert_eq!(a.append(b).append(c), a.append(b.append(c)));
    }
}
