//! `cksum` — the Internet (ones-complement) checksum, as studied in §4
//! of *Latency Analysis of TCP on an ATM Network*.
//!
//! The paper examines three ways of computing the TCP checksum on a
//! DECstation 5000/200:
//!
//! 1. the stock **ULTRIX 4.2A algorithm**, which reads the data a
//!    halfword (16 bits) at a time ([`ultrix_cksum`]);
//! 2. an **optimized algorithm** in the style of Kay & Pasquale that
//!    reads 32-bit words and unrolls the summation loop
//!    ([`optimized_cksum`]);
//! 3. an **integrated copy-and-checksum** that folds the summation into
//!    a data copy so the bytes cross the memory bus once
//!    ([`copy_and_cksum`]).
//!
//! All three are implemented here as real, executable routines over
//! real bytes. They are verified against each other and against a
//! byte-at-a-time reference model by unit and property tests, and they
//! are benchmarked natively with criterion (the *shape* of the paper's
//! Table 5). The simulator charges their calibrated DECstation costs
//! from the `decstation` crate.
//!
//! The crate also provides the **partial-sum algebra** (RFC 1071 §2)
//! that makes the paper's send-side integration possible: the socket
//! layer checksums each chunk as it is copied into an mbuf, stores the
//! partial sum in the mbuf header, and TCP later *combines* the partial
//! sums — provided it knows each chunk's byte offset parity within the
//! segment ([`PartialChecksum`]).
//!
//! # Examples
//!
//! ```
//! use cksum::{optimized_cksum, ultrix_cksum, Sum16};
//!
//! let data = b"hello, 1994";
//! assert_eq!(ultrix_cksum(data), optimized_cksum(data));
//!
//! // A packet that carries its own checksum verifies to zero.
//! let mut packet = vec![0x45, 0x00, 0x00, 0x1c, 0x00, 0x00];
//! let c = Sum16::over(&packet).finish();
//! packet.extend_from_slice(&c.to_be_bytes());
//! assert!(Sum16::over(&packet).is_valid());
//! ```

#![warn(missing_docs)]

pub mod algos;
pub mod crc;
pub mod fletcher;
pub mod partial;
pub mod pseudo;
pub mod sum;

pub use algos::{copy_and_cksum, naive_cksum, optimized_cksum, ultrix_cksum};
pub use fletcher::{Fletcher16, Fletcher8};
pub use partial::PartialChecksum;
pub use pseudo::pseudo_header_sum;
pub use sum::Sum16;
