//! The three checksum implementations studied by the paper, plus a
//! byte-model reference.
//!
//! All routines return the *sum* (a [`Sum16`], not complemented) so
//! they can participate in partial-sum combination; callers that want
//! the wire checksum apply [`Sum16::finish`].
//!
//! Performance notes (these are the properties the paper measures; the
//! Rust routines preserve the *relative* structure):
//!
//! - [`ultrix_cksum`] walks the buffer 16 bits at a time — one load,
//!   one add, one carry per halfword, the access pattern of the stock
//!   ULTRIX 4.2A `in_cksum`.
//! - [`optimized_cksum`] reads 64-bit words in an unrolled loop,
//!   accumulating carries implicitly in a wide register — the Kay &
//!   Pasquale style rewrite (they used 32-bit words on the R3000; on a
//!   modern machine the natural wide unit is 64 bits, the structure is
//!   identical).
//! - [`copy_and_cksum`] performs the copy and the summation in a single
//!   pass so the data crosses the memory system once, the Clark et al.
//!   integration the paper implements in §4.1.

use crate::sum::{fold64, Sum16};

/// Reference implementation: two bytes at a time via the [`Sum16`]
/// primitive. Used as the correctness oracle in tests.
#[must_use]
pub fn naive_cksum(data: &[u8]) -> Sum16 {
    Sum16::over(data)
}

/// The stock ULTRIX 4.2A style algorithm: halfword-at-a-time
/// accumulation with explicit per-iteration folding.
///
/// # Examples
///
/// ```
/// use cksum::{naive_cksum, ultrix_cksum};
///
/// let data: Vec<u8> = (0..=255).collect();
/// assert_eq!(ultrix_cksum(&data), naive_cksum(&data));
/// ```
#[must_use]
pub fn ultrix_cksum(data: &[u8]) -> Sum16 {
    let mut acc: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for half in &mut chunks {
        acc += u32::from(u16::from_be_bytes([half[0], half[1]]));
        // The ULTRIX loop folds the carry on every iteration rather
        // than deferring it — one of the reasons it is slow.
        acc = (acc & 0xffff) + (acc >> 16);
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
        acc = (acc & 0xffff) + (acc >> 16);
    }
    Sum16::from_raw(acc as u16)
}

/// Sums a buffer of even length that is a whole number of native
/// 64-bit words, deferring carries to a 128-bit accumulator.
#[inline]
fn sum_words_native(words: &[u8]) -> u64 {
    debug_assert_eq!(words.len() % 8, 0);
    let mut acc: u128 = 0;
    // Unroll by four words (32 bytes) — mirrors the original loop
    // unrolling; the remainder loop handles the tail words.
    let mut iter = words.chunks_exact(32);
    for block in &mut iter {
        // Unaligned loads are fine on the targets we build for.
        let a = u64::from_ne_bytes(block[0..8].try_into().unwrap());
        let b = u64::from_ne_bytes(block[8..16].try_into().unwrap());
        let c = u64::from_ne_bytes(block[16..24].try_into().unwrap());
        let d = u64::from_ne_bytes(block[24..32].try_into().unwrap());
        acc += u128::from(a) + u128::from(b) + u128::from(c) + u128::from(d);
    }
    for word in iter.remainder().chunks_exact(8) {
        acc += u128::from(u64::from_ne_bytes(word.try_into().unwrap()));
    }
    // Fold 128 -> 64 with end-around carry.
    let folded = (acc & u128::from(u64::MAX)) + (acc >> 64);
    let folded = (folded & u128::from(u64::MAX)) + (folded >> 64);
    folded as u64
}

/// Converts a native-endian wide ones-complement sum into the
/// big-endian [`Sum16`] convention.
#[inline]
fn native_sum_to_be(acc: u64) -> Sum16 {
    let s = fold64(acc);
    if cfg!(target_endian = "little") {
        // Summing native little-endian halfwords computes the byte-
        // swapped big-endian sum; ones-complement addition commutes
        // with byte swapping, so one final swap corrects it.
        Sum16::from_raw(s.rotate_left(8))
    } else {
        Sum16::from_raw(s)
    }
}

/// The optimized (unrolled, word-at-a-time) checksum.
///
/// Structure follows the Kay & Pasquale rewrite the paper adopts:
/// wide loads, deferred carries, unrolled main loop, scalar tail.
///
/// # Examples
///
/// ```
/// use cksum::{naive_cksum, optimized_cksum};
///
/// let data = vec![0xa5u8; 8000];
/// assert_eq!(optimized_cksum(&data), naive_cksum(&data));
/// ```
#[must_use]
pub fn optimized_cksum(data: &[u8]) -> Sum16 {
    let words_len = data.len() & !7;
    let head = native_sum_to_be(sum_words_native(&data[..words_len]));
    let tail = &data[words_len..];
    if tail.is_empty() {
        return head;
    }
    // The tail (< 8 bytes) begins at an even offset, so its big-endian
    // halfword sum combines without a swap.
    head.add(Sum16::over(tail))
}

/// Integrated copy-and-checksum: copies `src` into `dst` and returns
/// the ones-complement sum of the data, touching each byte once.
///
/// This is the §4.1 integration. The destination must be at least as
/// long as the source; only `src.len()` bytes are written.
///
/// # Panics
///
/// Panics if `dst` is shorter than `src`.
///
/// # Examples
///
/// ```
/// use cksum::{copy_and_cksum, naive_cksum};
///
/// let src = b"the quick brown fox";
/// let mut dst = vec![0u8; src.len()];
/// let sum = copy_and_cksum(src, &mut dst);
/// assert_eq!(&dst, src);
/// assert_eq!(sum, naive_cksum(src));
/// ```
#[must_use]
pub fn copy_and_cksum(src: &[u8], dst: &mut [u8]) -> Sum16 {
    assert!(
        dst.len() >= src.len(),
        "copy_and_cksum destination too short: {} < {}",
        dst.len(),
        src.len()
    );
    let words_len = src.len() & !7;
    let mut acc: u128 = 0;
    let mut src_words = src[..words_len].chunks_exact(8);
    let mut dst_words = dst[..words_len].chunks_exact_mut(8);
    for (s, d) in (&mut src_words).zip(&mut dst_words) {
        let w = u64::from_ne_bytes(s.try_into().unwrap());
        d.copy_from_slice(&w.to_ne_bytes());
        acc += u128::from(w);
    }
    let folded = (acc & u128::from(u64::MAX)) + (acc >> 64);
    let folded = ((folded & u128::from(u64::MAX)) + (folded >> 64)) as u64;
    let head = native_sum_to_be(folded);
    let tail = &src[words_len..];
    if tail.is_empty() {
        return head;
    }
    dst[words_len..src.len()].copy_from_slice(tail);
    head.add(Sum16::over(tail))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_algos(data: &[u8]) -> [Sum16; 3] {
        let mut dst = vec![0u8; data.len()];
        let c = copy_and_cksum(data, &mut dst);
        assert_eq!(dst, data, "copy must be exact");
        [ultrix_cksum(data), optimized_cksum(data), c]
    }

    #[test]
    fn algorithms_agree_on_paper_sizes() {
        // The eight transfer sizes used throughout the paper.
        for size in [4usize, 20, 80, 200, 500, 1400, 4000, 8000] {
            let data: Vec<u8> = (0..size).map(|i| (i * 31 + 7) as u8).collect();
            let expect = naive_cksum(&data);
            for got in all_algos(&data) {
                assert_eq!(got, expect, "size {size}");
            }
        }
    }

    #[test]
    fn algorithms_agree_on_odd_and_small_lengths() {
        for size in 0usize..70 {
            let data: Vec<u8> = (0..size).map(|i| (i * 131 + 17) as u8).collect();
            let expect = naive_cksum(&data);
            for got in all_algos(&data) {
                assert_eq!(got, expect, "size {size}");
            }
        }
    }

    #[test]
    fn all_ones_and_all_zeroes() {
        let zeros = vec![0u8; 1000];
        assert_eq!(optimized_cksum(&zeros).value(), 0);
        let ones = vec![0xffu8; 1000];
        assert_eq!(optimized_cksum(&ones).value(), 0xffff);
        assert_eq!(ultrix_cksum(&ones).value(), 0xffff);
    }

    #[test]
    fn known_vector() {
        // RFC 1071 example data.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(optimized_cksum(&data).value(), 0xddf2);
        assert_eq!(ultrix_cksum(&data).value(), 0xddf2);
    }

    #[test]
    fn copy_and_cksum_into_larger_destination() {
        let src = [1u8, 2, 3];
        let mut dst = [0u8; 8];
        let s = copy_and_cksum(&src, &mut dst);
        assert_eq!(&dst[..3], &src);
        assert_eq!(&dst[3..], &[0; 5]);
        assert_eq!(s, naive_cksum(&src));
    }

    #[test]
    #[should_panic(expected = "destination too short")]
    fn copy_and_cksum_short_destination_panics() {
        let mut dst = [0u8; 2];
        let _ = copy_and_cksum(&[1, 2, 3], &mut dst);
    }

    #[test]
    fn single_bit_corruption_is_detected() {
        // The Internet checksum catches all single-bit errors.
        let data: Vec<u8> = (0..200).map(|i| (i * 7) as u8).collect();
        let clean = optimized_cksum(&data);
        for byte in (0..data.len()).step_by(17) {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(optimized_cksum(&bad), clean, "byte {byte} bit {bit}");
            }
        }
    }
}
