//! The ones-complement 16-bit sum underlying the Internet checksum.
//!
//! Terminology used throughout the crate:
//!
//! - the **sum** is the ones-complement addition of the data viewed as
//!   big-endian 16-bit words (an odd trailing byte is padded with a
//!   zero *low* byte, i.e. it forms the high byte of the final word);
//! - the **checksum** transmitted in a header is the ones-complement
//!   (bitwise NOT) of the sum.
//!
//! [`Sum16`] is the running sum. It supports accumulation, RFC 1071
//! partial-sum combination via byte-swapping (see
//! [`Sum16::swapped`]), and RFC 1624 incremental update.

/// A ones-complement 16-bit running sum (not yet complemented).
///
/// # Examples
///
/// ```
/// use cksum::Sum16;
///
/// // RFC 1071 worked example: 00 01 f2 03 f4 f5 f6 f7.
/// let s = Sum16::over(&[0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7]);
/// assert_eq!(s.value(), 0xddf2);
/// assert_eq!(s.finish(), 0x220d);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct Sum16(u16);

impl Sum16 {
    /// The additive identity.
    pub const ZERO: Sum16 = Sum16(0);

    /// Creates a sum from a raw 16-bit value.
    #[inline]
    #[must_use]
    pub const fn from_raw(v: u16) -> Self {
        Sum16(v)
    }

    /// The raw 16-bit sum (not complemented).
    #[inline]
    #[must_use]
    pub const fn value(self) -> u16 {
        self.0
    }

    /// The checksum as transmitted: the ones-complement of the sum.
    #[inline]
    #[must_use]
    pub const fn finish(self) -> u16 {
        !self.0
    }

    /// Whether a sum computed over data *that already includes its
    /// checksum field* verifies.
    ///
    /// A correct packet sums to `0xffff` (negative zero in ones-
    /// complement arithmetic).
    #[inline]
    #[must_use]
    pub const fn is_valid(self) -> bool {
        self.0 == 0xffff
    }

    /// Ones-complement addition of two sums (end-around carry).
    #[inline]
    #[must_use]
    pub const fn add(self, other: Sum16) -> Sum16 {
        let wide = self.0 as u32 + other.0 as u32;
        Sum16(((wide & 0xffff) + (wide >> 16)) as u16)
    }

    /// Adds a single big-endian 16-bit word.
    #[inline]
    #[must_use]
    pub const fn add_word(self, word: u16) -> Sum16 {
        self.add(Sum16(word))
    }

    /// Ones-complement subtraction: removes a component from a
    /// combined sum (`self − other`, i.e. addition of the bitwise
    /// complement).
    ///
    /// Used by the receive-side integrated checksum: the driver sums
    /// the whole datagram during its copy; TCP subtracts the 40-byte
    /// header sum to get the payload sum. Note the usual ones-
    /// complement caveat: a result congruent to zero may come out as
    /// either `0x0000` or `0xffff`; compare with
    /// [`Sum16::congruent`], not `==`, after subtracting.
    #[inline]
    #[must_use]
    pub const fn sub(self, other: Sum16) -> Sum16 {
        self.add(Sum16(!other.0))
    }

    /// Whether two sums are congruent as ones-complement values
    /// (`0x0000` and `0xffff` both represent zero).
    #[inline]
    #[must_use]
    pub const fn congruent(self, other: Sum16) -> bool {
        self.0 == other.0
            || (self.0 == 0 && other.0 == 0xffff)
            || (self.0 == 0xffff && other.0 == 0)
    }

    /// Byte-swaps the sum.
    ///
    /// RFC 1071 §2(B): if a partial sum was computed starting at an odd
    /// byte offset within the enclosing packet, it enters the combined
    /// sum byte-swapped. This is what lets the mbuf-resident partial
    /// checksums of the paper's send-side integration be combined
    /// regardless of chunk alignment.
    #[inline]
    #[must_use]
    pub const fn swapped(self) -> Sum16 {
        Sum16(self.0.rotate_left(8))
    }

    /// Computes the sum over a byte slice (reference path; the
    /// optimized routines live in [`crate::algos`]).
    #[must_use]
    pub fn over(data: &[u8]) -> Sum16 {
        let mut acc: u32 = 0;
        let mut chunks = data.chunks_exact(2);
        for pair in &mut chunks {
            acc += u32::from(u16::from_be_bytes([pair[0], pair[1]]));
        }
        if let [last] = chunks.remainder() {
            acc += u32::from(u16::from_be_bytes([*last, 0]));
        }
        Sum16(fold32(acc))
    }

    /// RFC 1624 incremental update: returns the sum of a packet in
    /// which the 16-bit word `old` was replaced by `new`, given the
    /// packet's previous sum.
    ///
    /// Used by the IP layer when rewriting TTL-adjacent fields, and
    /// tested as an invariant of the algebra.
    #[inline]
    #[must_use]
    pub const fn update_word(self, old: u16, new: u16) -> Sum16 {
        // sum' = sum - old + new in ones-complement arithmetic;
        // subtraction is addition of the complement.
        self.add(Sum16(!old)).add(Sum16(new))
    }
}

/// Folds a 32-bit accumulator into 16 bits with end-around carries.
#[inline]
#[must_use]
pub const fn fold32(mut acc: u32) -> u16 {
    acc = (acc & 0xffff) + (acc >> 16);
    acc = (acc & 0xffff) + (acc >> 16);
    acc as u16
}

/// Folds a 64-bit accumulator into 16 bits with end-around carries.
#[inline]
#[must_use]
pub const fn fold64(acc: u64) -> u16 {
    let acc = (acc & 0xffff_ffff) + (acc >> 32);
    let acc = (acc & 0xffff_ffff) + (acc >> 32);
    fold32(acc as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        let s = Sum16::over(&[0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7]);
        assert_eq!(s.value(), 0xddf2);
        assert_eq!(s.finish(), 0x220d);
    }

    #[test]
    fn odd_length_pads_low_byte() {
        // 0xab alone forms the word 0xab00.
        assert_eq!(Sum16::over(&[0xab]).value(), 0xab00);
        assert_eq!(Sum16::over(&[0x12, 0x34, 0xab]).value(), 0xbd34);
    }

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(Sum16::over(&[]), Sum16::ZERO);
        assert_eq!(Sum16::ZERO.finish(), 0xffff);
    }

    #[test]
    fn end_around_carry() {
        // 0xffff + 0x0001 wraps to 0x0001 in ones-complement addition.
        assert_eq!(Sum16::from_raw(0xffff).add_word(1).value(), 0x0001);
        // 0x8000 + 0x8000 = 0x10000 -> 0x0001.
        assert_eq!(Sum16::from_raw(0x8000).add_word(0x8000).value(), 0x0001);
    }

    #[test]
    fn addition_is_commutative_and_associative() {
        let a = Sum16::from_raw(0x1234);
        let b = Sum16::from_raw(0xfedc);
        let c = Sum16::from_raw(0x8001);
        assert_eq!(a.add(b), b.add(a));
        assert_eq!(a.add(b).add(c), a.add(b.add(c)));
    }

    #[test]
    fn packet_with_embedded_checksum_verifies() {
        let mut pkt = vec![0xde, 0xad, 0xbe, 0xef, 0x01];
        // Pad to even length before inserting a checksum mid-packet is
        // not required; append at even offset here.
        pkt.push(0x02);
        let c = Sum16::over(&pkt).finish();
        pkt.extend_from_slice(&c.to_be_bytes());
        assert!(Sum16::over(&pkt).is_valid());
    }

    #[test]
    fn swapped_models_odd_offset_combination() {
        // Sum over [a, b, c, d] equals sum(a,b) + sum(c,d); if the
        // second fragment starts at an odd offset, it must be swapped.
        let whole = Sum16::over(&[0x01, 0x02, 0x03, 0x04, 0x05]);
        let left = Sum16::over(&[0x01, 0x02, 0x03]); // Odd length: 0102 + 0300.
                                                     // Right fragment begins at offset 3 (odd): bytes 04 05 are the
                                                     // low byte of word 2 and high byte of word 3.
        let right = Sum16::over(&[0x04, 0x05]);
        assert_eq!(left.add(right.swapped()), whole);
    }

    #[test]
    fn incremental_update_matches_recompute() {
        let mut pkt = vec![0x45, 0x00, 0x00, 0x54, 0x1c, 0x46, 0x40, 0x00];
        let before = Sum16::over(&pkt);
        let old = u16::from_be_bytes([pkt[4], pkt[5]]);
        let new = 0xbeefu16;
        pkt[4..6].copy_from_slice(&new.to_be_bytes());
        let after = Sum16::over(&pkt);
        assert_eq!(before.update_word(old, new).finish(), after.finish());
    }

    #[test]
    fn subtraction_inverts_addition_up_to_congruence() {
        for (a, b) in [
            (0x1234u16, 0x9abcu16),
            (0, 0),
            (0xffff, 1),
            (0x8000, 0x8000),
        ] {
            let sa = Sum16::from_raw(a);
            let sb = Sum16::from_raw(b);
            let back = sa.add(sb).sub(sb);
            assert!(back.congruent(sa), "{a:#x} {b:#x} -> {back:?}");
        }
    }

    #[test]
    fn congruence_classes() {
        assert!(Sum16::from_raw(0).congruent(Sum16::from_raw(0xffff)));
        assert!(Sum16::from_raw(5).congruent(Sum16::from_raw(5)));
        assert!(!Sum16::from_raw(5).congruent(Sum16::from_raw(6)));
    }

    #[test]
    fn fold_helpers() {
        // 0xffff + 0x0001 with end-around carry is 0x0001.
        assert_eq!(fold32(0x0001_ffff), 0x0001);
        assert_eq!(fold32(0xffff_ffff), 0xffff);
        assert_eq!(fold64(u64::MAX), 0xffff);
        assert_eq!(fold64(0x1_0000_0000), 0x0001);
    }
}
