//! Property-based tests for the checksum algebra.
//!
//! These pin down the invariants the kernel integration relies on:
//! algorithm agreement, partial-sum combination at arbitrary split
//! points, incremental update, and error detection of the checksum as
//! actually used on the wire.

use cksum::{
    copy_and_cksum, naive_cksum, optimized_cksum, pseudo_header_sum, ultrix_cksum, PartialChecksum,
    Sum16,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every implementation computes the same sum as the reference.
    #[test]
    fn algorithms_agree(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let expect = naive_cksum(&data);
        prop_assert_eq!(ultrix_cksum(&data), expect);
        prop_assert_eq!(optimized_cksum(&data), expect);
        let mut dst = vec![0u8; data.len()];
        prop_assert_eq!(copy_and_cksum(&data, &mut dst), expect);
        prop_assert_eq!(dst, data);
    }

    /// Splitting a buffer anywhere and combining partial checksums
    /// yields the checksum of the whole.
    #[test]
    fn partial_combination(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((data.len() as f64) * split_frac) as usize;
        let (a, b) = data.split_at(split);
        let combined = PartialChecksum::over(a).append(PartialChecksum::over(b));
        prop_assert_eq!(combined.sum(), naive_cksum(&data));
        prop_assert_eq!(combined.len(), data.len());
    }

    /// Chunking a buffer into many arbitrary pieces preserves the sum.
    #[test]
    fn many_chunk_combination(
        data in proptest::collection::vec(any::<u8>(), 0..1024),
        chunk in 1usize..97,
    ) {
        let combined = data
            .chunks(chunk)
            .map(PartialChecksum::over)
            .fold(PartialChecksum::EMPTY, PartialChecksum::append);
        prop_assert_eq!(combined.sum(), naive_cksum(&data));
    }

    /// A packet carrying its own checksum at an even offset always
    /// verifies; flipping any single bit afterwards always fails
    /// verification.
    #[test]
    fn embedded_checksum_detects_single_bit_errors(
        mut data in proptest::collection::vec(any::<u8>(), 2..512),
        flip_byte_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        // Force even length so the checksum lands on a halfword.
        if data.len() % 2 == 1 {
            data.pop();
        }
        let c = naive_cksum(&data).finish();
        data.extend_from_slice(&c.to_be_bytes());
        prop_assert!(Sum16::over(&data).is_valid());

        let idx = ((data.len() as f64) * flip_byte_frac) as usize % data.len();
        data[idx] ^= 1 << flip_bit;
        prop_assert!(!Sum16::over(&data).is_valid());
    }

    /// RFC 1624 incremental update agrees with recomputation for any
    /// halfword replacement.
    #[test]
    fn incremental_update(
        mut data in proptest::collection::vec(any::<u8>(), 2..512),
        word_frac in 0.0f64..1.0,
        new_word in any::<u16>(),
    ) {
        if data.len() % 2 == 1 {
            data.pop();
        }
        let words = data.len() / 2;
        let wi = ((words as f64) * word_frac) as usize % words;
        let before = naive_cksum(&data);
        let old = u16::from_be_bytes([data[2 * wi], data[2 * wi + 1]]);
        data[2 * wi..2 * wi + 2].copy_from_slice(&new_word.to_be_bytes());
        prop_assert_eq!(before.update_word(old, new_word), naive_cksum(&data));
    }

    /// The pseudo-header sum composes with a payload sum exactly as a
    /// flat byte concatenation would.
    #[test]
    fn pseudo_header_composes(
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let tlen = payload.len() as u16;
        let via_api = pseudo_header_sum(src, dst, 6, tlen).add(naive_cksum(&payload));
        let mut flat = Vec::new();
        flat.extend_from_slice(&src);
        flat.extend_from_slice(&dst);
        flat.push(0);
        flat.push(6);
        flat.extend_from_slice(&tlen.to_be_bytes());
        flat.extend_from_slice(&payload);
        prop_assert_eq!(via_api, naive_cksum(&flat));
    }

    /// Byte swap is an involution and distributes over the sum.
    #[test]
    fn swap_involution(a in any::<u16>(), b in any::<u16>()) {
        let sa = Sum16::from_raw(a);
        let sb = Sum16::from_raw(b);
        prop_assert_eq!(sa.swapped().swapped(), sa);
        prop_assert_eq!(sa.add(sb).swapped(), sa.swapped().add(sb.swapped()));
    }
}
