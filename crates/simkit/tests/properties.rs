//! Property tests for the discrete-event engine: the determinism and
//! causality guarantees everything else is built on.

use proptest::prelude::*;
use simkit::{Cpu, CpuBand, Sim, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Events execute in nondecreasing time order regardless of the
    /// order they were scheduled, and ties preserve FIFO order.
    #[test]
    fn execution_order_is_causal(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut sim = Sim::new(Vec::<(u64, usize)>::new());
        for (i, &t) in times.iter().enumerate() {
            sim.schedule(
                SimTime::from_us(t),
                "ev",
                move |w: &mut Vec<(u64, usize)>, _| w.push((t, i)),
            );
        }
        sim.run();
        let log = &sim.world;
        prop_assert_eq!(log.len(), times.len());
        for pair in log.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time order");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "FIFO tie-break");
            }
        }
    }

    /// Chained scheduling from handlers preserves causality too.
    #[test]
    fn chained_events_respect_time(delays in proptest::collection::vec(1u64..100, 1..50)) {
        struct W {
            delays: Vec<u64>,
            idx: usize,
            stamps: Vec<SimTime>,
        }
        fn step(w: &mut W, s: &mut simkit::Scheduler<W>) {
            w.stamps.push(s.now());
            if w.idx < w.delays.len() {
                let d = w.delays[w.idx];
                w.idx += 1;
                s.schedule(SimTime::from_us(d), "step", step);
            }
        }
        let mut sim = Sim::new(W { delays: delays.clone(), idx: 0, stamps: Vec::new() });
        sim.schedule(SimTime::ZERO, "step", step);
        sim.run();
        prop_assert_eq!(sim.world.stamps.len(), delays.len() + 1);
        let total: u64 = delays.iter().sum();
        prop_assert_eq!(sim.now(), SimTime::from_us(total));
        for w in sim.world.stamps.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// The CPU never overlaps two work items and accounts every
    /// microsecond it runs.
    #[test]
    fn cpu_serializes_all_work(
        reqs in proptest::collection::vec((0u64..1000, 1u64..200), 1..60),
    ) {
        let mut cpu = Cpu::new();
        let mut intervals = Vec::new();
        let mut total = SimTime::ZERO;
        // Requests must be presented in nondecreasing arrival order,
        // as the event loop does.
        let mut sorted = reqs.clone();
        sorted.sort();
        for (at, cost) in sorted {
            let (s, e) = cpu.acquire(SimTime::from_us(at), SimTime::from_us(cost), CpuBand::Process);
            prop_assert!(s >= SimTime::from_us(at));
            prop_assert_eq!(e - s, SimTime::from_us(cost));
            intervals.push((s, e));
            total += SimTime::from_us(cost);
        }
        for w in intervals.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "no overlap");
        }
        prop_assert_eq!(cpu.stats().total_busy(), total);
    }

    /// The calendar queue pops the exact total order `(at, seq)` that
    /// a sorted reference model predicts, across a mix of boxed
    /// events, raw events, and timer-slot firings — including
    /// clustered times that force bucket rebuilds and sparse times
    /// that force the direct-search fallback.
    #[test]
    fn calendar_queue_matches_reference_order(
        evs in proptest::collection::vec((0u64..3, 0u64..500_000), 1..300),
    ) {
        fn raw(w: &mut Vec<usize>, _: &mut simkit::Scheduler<Vec<usize>>, data: u64) {
            w.push(data as usize);
        }
        let mut sim = Sim::new(Vec::<usize>::new());
        // Timer slots log through the world like everything else; the
        // slot payload is the schedule index.
        fn timer_fire(w: &mut Vec<usize>, _: &mut simkit::Scheduler<Vec<usize>>, data: u64) {
            w.push(data as usize);
        }
        for (i, &(kind, t_us)) in evs.iter().enumerate() {
            // Mix dense and sparse times: every 7th event lands far out.
            let at = if i % 7 == 3 {
                SimTime::from_ns(t_us * 4_096 + 300_000_000)
            } else {
                SimTime::from_ns(t_us)
            };
            match kind {
                0 => sim.schedule_at(at, "boxed", move |w: &mut Vec<usize>, _| w.push(i)),
                1 => sim.schedule_raw_at(at, "raw", raw, i as u64),
                _ => {
                    let id = sim.register_timer("tmr", timer_fire, i as u64);
                    sim.arm_timer(id, at);
                }
            }
        }
        sim.run();
        // Reference: stable sort by time (stability = seq order).
        let mut expect: Vec<(u64, usize)> = evs
            .iter()
            .enumerate()
            .map(|(i, &(_, t_us))| {
                let at = if i % 7 == 3 {
                    t_us * 4_096 + 300_000_000
                } else {
                    t_us
                };
                (at, i)
            })
            .collect();
        expect.sort_by_key(|&(at, _)| at);
        let got: Vec<usize> = sim.world.clone();
        let want: Vec<usize> = expect.into_iter().map(|(_, i)| i).collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(sim.events_executed(), evs.len() as u64);
    }

    /// Quantization is idempotent, monotone, and never in the future.
    #[test]
    fn clock_quantization(ns in any::<u64>()) {
        let t = SimTime::from_ns(ns);
        let q = t.quantized();
        prop_assert!(q <= t);
        prop_assert_eq!(q.quantized(), q);
        prop_assert_eq!(q.as_ns() % 40, 0);
        prop_assert!(t.as_ns() - q.as_ns() < 40);
    }
}
