//! Property tests for the discrete-event engine: the determinism and
//! causality guarantees everything else is built on.

use proptest::prelude::*;
use simkit::{Cpu, CpuBand, Sim, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Events execute in nondecreasing time order regardless of the
    /// order they were scheduled, and ties preserve FIFO order.
    #[test]
    fn execution_order_is_causal(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut sim = Sim::new(Vec::<(u64, usize)>::new());
        for (i, &t) in times.iter().enumerate() {
            sim.schedule(
                SimTime::from_us(t),
                "ev",
                move |w: &mut Vec<(u64, usize)>, _| w.push((t, i)),
            );
        }
        sim.run();
        let log = &sim.world;
        prop_assert_eq!(log.len(), times.len());
        for pair in log.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time order");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "FIFO tie-break");
            }
        }
    }

    /// Chained scheduling from handlers preserves causality too.
    #[test]
    fn chained_events_respect_time(delays in proptest::collection::vec(1u64..100, 1..50)) {
        struct W {
            delays: Vec<u64>,
            idx: usize,
            stamps: Vec<SimTime>,
        }
        fn step(w: &mut W, s: &mut simkit::Scheduler<W>) {
            w.stamps.push(s.now());
            if w.idx < w.delays.len() {
                let d = w.delays[w.idx];
                w.idx += 1;
                s.schedule(SimTime::from_us(d), "step", step);
            }
        }
        let mut sim = Sim::new(W { delays: delays.clone(), idx: 0, stamps: Vec::new() });
        sim.schedule(SimTime::ZERO, "step", step);
        sim.run();
        prop_assert_eq!(sim.world.stamps.len(), delays.len() + 1);
        let total: u64 = delays.iter().sum();
        prop_assert_eq!(sim.now(), SimTime::from_us(total));
        for w in sim.world.stamps.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// The CPU never overlaps two work items and accounts every
    /// microsecond it runs.
    #[test]
    fn cpu_serializes_all_work(
        reqs in proptest::collection::vec((0u64..1000, 1u64..200), 1..60),
    ) {
        let mut cpu = Cpu::new();
        let mut intervals = Vec::new();
        let mut total = SimTime::ZERO;
        // Requests must be presented in nondecreasing arrival order,
        // as the event loop does.
        let mut sorted = reqs.clone();
        sorted.sort();
        for (at, cost) in sorted {
            let (s, e) = cpu.acquire(SimTime::from_us(at), SimTime::from_us(cost), CpuBand::Process);
            prop_assert!(s >= SimTime::from_us(at));
            prop_assert_eq!(e - s, SimTime::from_us(cost));
            intervals.push((s, e));
            total += SimTime::from_us(cost);
        }
        for w in intervals.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "no overlap");
        }
        prop_assert_eq!(cpu.stats().total_busy(), total);
    }

    /// Quantization is idempotent, monotone, and never in the future.
    #[test]
    fn clock_quantization(ns in any::<u64>()) {
        let t = SimTime::from_ns(ns);
        let q = t.quantized();
        prop_assert!(q <= t);
        prop_assert_eq!(q.quantized(), q);
        prop_assert_eq!(q.as_ns() % 40, 0);
        prop_assert!(t.as_ns() - q.as_ns() < 40);
    }
}
