//! Deterministic pseudo-random numbers for the simulation.
//!
//! Error injection (bit errors on the fiber, cell loss, gateway
//! corruption) must be reproducible run-to-run, so the simulator uses
//! its own small PCG-XSH-RR generator seeded explicitly rather than an
//! OS-entropy source. The generator is the 64/32 PCG variant, which is
//! statistically strong far beyond what error-injection sampling needs.

/// A deterministic PCG-XSH-RR 64/32 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use simkit::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u32(), b.next_u32());
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;
const PCG_DEFAULT_INC: u64 = 1_442_695_040_888_963_407;

impl SimRng {
    /// Creates a generator from a 64-bit seed with the default stream.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        Self::seed_stream(seed, 0)
    }

    /// Creates a generator from a seed and a stream id, so independent
    /// components (e.g. two link directions) can draw non-overlapping
    /// sequences from the same experiment seed.
    #[must_use]
    pub fn seed_stream(seed: u64, stream: u64) -> Self {
        // The increment must be odd (standard PCG stream selection).
        let inc = (stream.wrapping_add(PCG_DEFAULT_INC) << 1) | 1;
        let mut rng = SimRng { state: 0, inc };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Returns the next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Returns a uniform value in `[0, bound)` using Lemire rejection
    /// to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "next_below bound must be positive");
        // Lemire's multiply-shift method with rejection.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u32();
            let m = u64::from(x) * u64::from(bound);
            if (m as u32) >= threshold {
                return (m >> 32) as u32;
            }
        }
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Samples a geometric "number of successes until failure" style
    /// count: returns how many independent `p`-probability events occur
    /// among `n` trials, using a binomial sample via inversion for the
    /// small-`p` regime typical of bit-error rates.
    ///
    /// For the tiny per-bit error probabilities used here (1e-12 to
    /// 1e-6 per bit), a direct Bernoulli loop over bits would be
    /// prohibitive; instead we sample the gap to the next error
    /// geometrically.
    pub fn binomial_small_p(&mut self, n: u64, p: f64) -> u64 {
        if p <= 0.0 || n == 0 {
            return 0;
        }
        if p >= 1.0 {
            return n;
        }
        // Sample inter-arrival gaps: G = floor(ln(U)/ln(1-p)) + 1.
        let log1mp = (1.0 - p).ln();
        let mut count = 0u64;
        let mut pos = 0u64;
        loop {
            let u = self.next_f64().max(f64::MIN_POSITIVE);
            let gap = (u.ln() / log1mp).floor() as u64 + 1;
            pos = pos.saturating_add(gap);
            if pos > n {
                return count;
            }
            count += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "seeds should produce mostly distinct output");
    }

    #[test]
    fn different_streams_differ() {
        let mut a = SimRng::seed_stream(1, 0);
        let mut b = SimRng::seed_stream(1, 1);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = SimRng::seed_from(99);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = SimRng::seed_from(11);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "got {hits}");
    }

    #[test]
    fn binomial_small_p_edges() {
        let mut rng = SimRng::seed_from(3);
        assert_eq!(rng.binomial_small_p(0, 0.5), 0);
        assert_eq!(rng.binomial_small_p(100, 0.0), 0);
        assert_eq!(rng.binomial_small_p(100, 1.0), 100);
    }

    #[test]
    fn binomial_small_p_mean_is_np() {
        let mut rng = SimRng::seed_from(17);
        let n = 1_000_000u64;
        let p = 1e-4;
        let total: u64 = (0..200).map(|_| rng.binomial_small_p(n, p)).sum();
        let mean = total as f64 / 200.0;
        // Expected 100 errors per trial; allow generous slack.
        assert!((80.0..120.0).contains(&mean), "mean {mean}");
    }
}
