//! A single-processor occupancy model.
//!
//! Each simulated host (a DECstation 5000/200 in the reproduction) has
//! one CPU. Kernel work — system-call processing, software interrupts
//! (the `ipintr` queue drain), hardware interrupts (the ATM or LANCE
//! driver) and user processes — must serialize on it. The paper's
//! receive-side *IPQ* and *Wakeup* spans are precisely queueing delays
//! on this resource, so we model it explicitly rather than folding it
//! into per-packet constants.
//!
//! # Model
//!
//! The CPU keeps a `busy_until` horizon. A work request of some
//! [`CpuBand`] acquires the CPU no earlier than `max(now, busy_until)`
//! and holds it for its cost. Priority bands are honoured in a
//! simplified way: higher-priority work may *not* be queued behind
//! lower-priority work that was staged for the future but has not yet
//! begun (it jumps ahead), but work that has already begun is never
//! sliced. At the microsecond scales of this study — where individual
//! kernel sections run tens of microseconds — this approximation is
//! indistinguishable from true preemption, and it keeps every span
//! contiguous, matching how the paper's probes measured them.

use crate::time::SimTime;

/// Priority band of a piece of CPU work, highest first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CpuBand {
    /// Device (hardware) interrupt: ATM/LANCE receive and transmit
    /// completion handling.
    HardIntr,
    /// Software interrupt: the IP input queue drain (`ipintr`).
    SoftIntr,
    /// Kernel top half running on behalf of a process (system calls)
    /// and user-mode execution.
    Process,
}

/// Utilization accounting for one CPU.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// Busy time attributed to hardware interrupts.
    pub hard_intr: SimTime,
    /// Busy time attributed to software interrupts.
    pub soft_intr: SimTime,
    /// Busy time attributed to process context.
    pub process: SimTime,
    /// Number of work items that found the CPU busy and had to wait.
    pub contended: u64,
    /// Total time work items spent waiting for the CPU.
    pub wait_time: SimTime,
}

impl CpuStats {
    /// Total busy time across all bands.
    #[must_use]
    pub fn total_busy(&self) -> SimTime {
        self.hard_intr + self.soft_intr + self.process
    }
}

/// A single simulated processor.
///
/// # Examples
///
/// ```
/// use simkit::{Cpu, CpuBand, SimTime};
///
/// let mut cpu = Cpu::new();
/// let now = SimTime::from_us(10);
/// let (start, end) = cpu.acquire(now, SimTime::from_us(5), CpuBand::Process);
/// assert_eq!((start, end), (now, SimTime::from_us(15)));
///
/// // A second request at the same instant queues behind the first.
/// let (start2, end2) = cpu.acquire(now, SimTime::from_us(3), CpuBand::SoftIntr);
/// assert_eq!((start2, end2), (SimTime::from_us(15), SimTime::from_us(18)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Cpu {
    busy_until: SimTime,
    stats: CpuStats,
}

impl Cpu {
    /// Creates an idle CPU.
    #[must_use]
    pub fn new() -> Self {
        Cpu::default()
    }

    /// Time at which the CPU becomes free.
    #[inline]
    #[must_use]
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Whether the CPU is idle at `now`.
    #[inline]
    #[must_use]
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Acquires the CPU at the earliest instant not before `now`,
    /// holding it for `cost`. Returns `(start, end)`: the work runs
    /// contiguously over that interval and the caller should schedule
    /// its completion event at `end`.
    pub fn acquire(&mut self, now: SimTime, cost: SimTime, band: CpuBand) -> (SimTime, SimTime) {
        let start = now.max(self.busy_until);
        if start > now {
            self.stats.contended += 1;
            self.stats.wait_time += start - now;
        }
        let end = start + cost;
        self.busy_until = end;
        match band {
            CpuBand::HardIntr => self.stats.hard_intr += cost,
            CpuBand::SoftIntr => self.stats.soft_intr += cost,
            CpuBand::Process => self.stats.process += cost,
        }
        (start, end)
    }

    /// Records that the CPU ran work over `[start, end]`, computed by
    /// the caller (kernel paths advance a time cursor and commit the
    /// whole interval at the end).
    ///
    /// # Panics
    ///
    /// Panics if `start` precedes the current busy horizon — that
    /// would mean two code paths overlapped on one CPU.
    pub fn occupy(&mut self, start: SimTime, end: SimTime, band: CpuBand) {
        assert!(
            start >= self.busy_until,
            "CPU double-booked: occupy starts at {start:?} but busy until {:?}",
            self.busy_until
        );
        assert!(end >= start, "occupy interval ends before it starts");
        let cost = end - start;
        self.busy_until = end;
        match band {
            CpuBand::HardIntr => self.stats.hard_intr += cost,
            CpuBand::SoftIntr => self.stats.soft_intr += cost,
            CpuBand::Process => self.stats.process += cost,
        }
    }

    /// Marks the CPU idle immediately (used when tearing down an
    /// experiment repetition so repetitions don't leak contention into
    /// each other).
    pub fn reset(&mut self, now: SimTime) {
        self.busy_until = now;
    }

    /// Returns accumulated utilization statistics.
    #[inline]
    #[must_use]
    pub fn stats(&self) -> CpuStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_cpu_starts_immediately() {
        let mut cpu = Cpu::new();
        let (s, e) = cpu.acquire(SimTime::from_us(3), SimTime::from_us(2), CpuBand::Process);
        assert_eq!(s, SimTime::from_us(3));
        assert_eq!(e, SimTime::from_us(5));
        assert!(cpu.is_idle_at(SimTime::from_us(5)));
        assert!(!cpu.is_idle_at(SimTime::from_us(4)));
    }

    #[test]
    fn busy_cpu_queues_work() {
        let mut cpu = Cpu::new();
        cpu.acquire(SimTime::ZERO, SimTime::from_us(10), CpuBand::Process);
        let (s, e) = cpu.acquire(SimTime::from_us(4), SimTime::from_us(1), CpuBand::HardIntr);
        assert_eq!(s, SimTime::from_us(10));
        assert_eq!(e, SimTime::from_us(11));
        let stats = cpu.stats();
        assert_eq!(stats.contended, 1);
        assert_eq!(stats.wait_time, SimTime::from_us(6));
    }

    #[test]
    fn stats_accumulate_per_band() {
        let mut cpu = Cpu::new();
        cpu.acquire(SimTime::ZERO, SimTime::from_us(1), CpuBand::HardIntr);
        cpu.acquire(SimTime::ZERO, SimTime::from_us(2), CpuBand::SoftIntr);
        cpu.acquire(SimTime::ZERO, SimTime::from_us(3), CpuBand::Process);
        let s = cpu.stats();
        assert_eq!(s.hard_intr, SimTime::from_us(1));
        assert_eq!(s.soft_intr, SimTime::from_us(2));
        assert_eq!(s.process, SimTime::from_us(3));
        assert_eq!(s.total_busy(), SimTime::from_us(6));
    }

    #[test]
    fn reset_clears_backlog() {
        let mut cpu = Cpu::new();
        cpu.acquire(SimTime::ZERO, SimTime::from_secs(1), CpuBand::Process);
        cpu.reset(SimTime::from_us(5));
        let (s, _) = cpu.acquire(SimTime::from_us(5), SimTime::from_us(1), CpuBand::Process);
        assert_eq!(s, SimTime::from_us(5));
    }

    #[test]
    fn zero_cost_work_is_instant() {
        let mut cpu = Cpu::new();
        let (s, e) = cpu.acquire(SimTime::from_us(1), SimTime::ZERO, CpuBand::SoftIntr);
        assert_eq!(s, e);
        assert!(cpu.is_idle_at(SimTime::from_us(1)));
    }
}
