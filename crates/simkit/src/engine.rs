//! The discrete-event engine.
//!
//! [`Sim`] owns a pending-event set and a user-supplied *world* — the
//! mutable state the events act upon. Events come in two flavours: a
//! boxed `FnOnce(&mut W, &mut Scheduler<W>)` for arbitrary captured
//! state, and an allocation-free *raw* form — a plain function pointer
//! plus one `u64` payload — for the hot paths that only need to name a
//! host index. Handlers stage follow-up events on the [`Scheduler`],
//! which the engine merges into the queue when the handler returns.
//!
//! Internally the engine is **not** a binary heap. Pending events live
//! in a slab-allocated arena (slots recycled through a free list) and
//! are indexed by a calendar/bucket queue keyed on `(time, seq)`:
//! compact `{at, seq, slot}` references hashed into power-of-two time
//! buckets, popped by scanning the bucket window containing the
//! current clock. Recurring deadlines (retransmit timers) get
//! permanent *timer slots* registered once and re-armed with zero
//! allocation per firing.
//!
//! Two events at the same timestamp execute in the order they were
//! scheduled (FIFO tie-break via a monotone sequence number), and the
//! queue always pops the strict minimum of `(time, seq)` — exactly the
//! total order the previous heap implementation used — which makes
//! every simulation run fully deterministic and bit-identical across
//! engine implementations.

use crate::time::SimTime;

/// The type of a boxed event handler.
///
/// The first argument is the simulation world, the second a
/// [`Scheduler`] for staging follow-up events.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Scheduler<W>)>;

/// The type of a *raw* event handler: a plain function pointer taking
/// the world, the scheduler, and the `u64` payload captured when the
/// event was scheduled.
///
/// Raw events cost no allocation to schedule — the function pointer
/// and payload are stored inline in the event arena — so the per-event
/// hot paths (software interrupts, application wakeups, timer
/// firings) should prefer them over boxed closures.
pub type RawEventFn<W> = fn(&mut W, &mut Scheduler<W>, u64);

/// The type of a post-event observer (see [`Sim::set_observer`]).
///
/// Called after every executed event with the world, the event's
/// timestamp, and its label. Observers get a shared borrow only: they
/// can check invariants but never perturb the simulation.
pub type ObserverFn<W> = Box<dyn FnMut(&W, SimTime, &'static str)>;

/// Handle to a permanent timer slot (see [`Sim::register_timer`]).
///
/// A timer slot stores its label, handler, and payload once; each
/// [`Sim::arm_timer`] / [`Scheduler::arm_timer`] afterwards enqueues a
/// firing with zero allocation. Arming the same slot for several
/// deadlines fires it once per deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerId(u32);

/// Slab allocator for pending *boxed* events: a vector of slots
/// recycled through a free list, so steady-state scheduling never
/// grows the backing storage. Raw events and timer firings never
/// touch it — their handlers live inline in the calendar entry.
struct Arena<W> {
    slots: Vec<Option<(&'static str, EventFn<W>)>>,
    free: Vec<u32>,
}

impl<W> Arena<W> {
    fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    fn insert(&mut self, label: &'static str, f: EventFn<W>) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = Some((label, f));
            idx
        } else {
            let idx = u32::try_from(self.slots.len()).expect("event arena overflow");
            self.slots.push(Some((label, f)));
            idx
        }
    }

    fn take(&mut self, idx: u32) -> (&'static str, EventFn<W>) {
        let slot = self.slots[idx as usize]
            .take()
            .expect("event slot already taken");
        self.free.push(idx);
        slot
    }
}

/// What fires when a calendar entry comes due. Raw handlers are a
/// `Copy` function pointer plus payload, so they ride inline in the
/// entry — the hot path never allocates and never chases an arena
/// slot. Boxed closures and timer slots are referenced by index.
enum Payload<W> {
    /// An inline function-pointer event.
    Raw(&'static str, RawEventFn<W>, u64),
    /// An arena slot holding a boxed closure.
    Boxed(u32),
    /// A permanent timer slot (see [`Sim::register_timer`]).
    Timer(u32),
}

// Derived Clone/Copy would demand `W: Copy`; every variant is Copy
// regardless of `W` (a `fn` pointer mentioning `W` is still `fn`).
impl<W> Clone for Payload<W> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<W> Copy for Payload<W> {}

/// A pending event: its execution time, FIFO tie-breaker, and payload.
struct EventRef<W> {
    at: SimTime,
    seq: u64,
    payload: Payload<W>,
}

impl<W> Clone for EventRef<W> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<W> Copy for EventRef<W> {}

/// Smallest bucket width: 2^6 = 64 ns (one clock tick is 40 ns).
const MIN_SHIFT: u32 = 6;
/// Largest bucket width: 2^22 ns ≈ 4.2 ms (covers retransmit timers).
const MAX_SHIFT: u32 = 22;
/// Bucket-count bounds (both powers of two).
const MIN_BUCKETS: usize = 16;
const MAX_BUCKETS: usize = 4096;

/// The calendar/bucket queue over [`EventRef`]s.
///
/// Events hash into `buckets[(at >> shift) & mask]`; a pop scans the
/// window containing the current clock and returns the strict minimum
/// of `(at, seq)`, advancing window by window. A full fruitless lap
/// (the next event is more than a "year" away) falls back to a direct
/// scan for the global minimum and re-centres the cursor there, so
/// arbitrarily sparse schedules stay correct.
struct Calendar<W> {
    buckets: Vec<Vec<EventRef<W>>>,
    /// `buckets.len() - 1`; the length is always a power of two.
    mask: usize,
    /// Bucket width is `1 << shift` nanoseconds.
    shift: u32,
    /// Total pending events.
    len: usize,
    /// Index of the bucket whose window contains the clock floor.
    cur: usize,
    /// Exclusive upper time bound of `cur`'s current window, in ns
    /// (u128 so the far-future wrap never overflows).
    bucket_top: u128,
    /// Timestamp of the most recent pop — the clock floor. Every
    /// pending event is at or after this, which is what keeps the
    /// cursor invariant (`window_start(cur) <= floor`) valid.
    floor_ns: u64,
}

impl<W> Calendar<W> {
    fn new() -> Self {
        let shift = 12; // 4.1 µs buckets: a good fit for protocol events.
        Calendar {
            buckets: vec![Vec::new(); MIN_BUCKETS],
            mask: MIN_BUCKETS - 1,
            shift,
            len: 0,
            cur: 0,
            bucket_top: 1 << shift,
            floor_ns: 0,
        }
    }

    fn bucket_of(&self, ns: u64) -> usize {
        ((ns >> self.shift) as usize) & self.mask
    }

    fn push(&mut self, ev: EventRef<W>) {
        // Keep roughly one pending event per bucket, so a full lap
        // (one calendar "year") covers the whole pending span.
        if self.len + 1 > self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.rebuild(self.buckets.len() * 2);
        }
        let idx = self.bucket_of(ev.at.as_ns());
        self.buckets[idx].push(ev);
        self.len += 1;
    }

    /// The bucket width best matching the current pending set: mean
    /// spacing between pending events, as a power of two, clamped.
    /// A pure function of the pending set, so callers can compare it
    /// against `self.shift` without committing to a rebuild.
    fn ideal_shift(&self) -> u32 {
        let mut min = u64::MAX;
        let mut max = 0;
        let mut n = 0u64;
        for ev in self.buckets.iter().flatten() {
            let ns = ev.at.as_ns();
            min = min.min(ns);
            max = max.max(ns);
            n += 1;
        }
        if n == 0 {
            return self.shift;
        }
        let target = ((max - min) / n).max(1).next_power_of_two();
        target.trailing_zeros().clamp(MIN_SHIFT, MAX_SHIFT)
    }

    /// Redistributes every pending event across `nbuckets` buckets,
    /// re-deriving the bucket width from the current event spread and
    /// re-centring the cursor on the clock floor. Deterministic: the
    /// new layout is a pure function of the pending set and the floor.
    fn rebuild(&mut self, nbuckets: usize) {
        self.shift = self.ideal_shift();
        let all: Vec<EventRef<W>> = self.buckets.iter_mut().flat_map(|b| b.drain(..)).collect();
        self.buckets = vec![Vec::new(); nbuckets];
        self.mask = nbuckets - 1;
        self.cur = self.bucket_of(self.floor_ns);
        self.bucket_top = ((u128::from(self.floor_ns) >> self.shift) + 1) << self.shift;
        for ev in all {
            let idx = self.bucket_of(ev.at.as_ns());
            self.buckets[idx].push(ev);
        }
    }

    /// Removes and returns the pending event with the smallest
    /// `(at, seq)`, or `None` if the queue is empty or that minimum
    /// lies strictly beyond `bound`.
    fn pop(&mut self, bound: Option<SimTime>) -> Option<EventRef<W>> {
        if self.len == 0 {
            return None;
        }
        // A fruitless lap whose re-derived bucket width differs from
        // the current one rebuilds and retries once: the pending set
        // is unchanged, so the second lap's ideal equals its shift.
        for _attempt in 0..2 {
            if let Some(found) = self.pop_windowed(bound) {
                return found;
            }
            let ideal = self.ideal_shift();
            if ideal == self.shift {
                break;
            }
            self.rebuild(self.buckets.len());
        }
        self.pop_rescan(bound)
    }

    /// The fast path: walks windows from the cursor looking for the
    /// first window holding a qualifying event. Returns `None` after
    /// a full fruitless lap (outer `Option`); `Some(None)` means a
    /// minimum was found but lies beyond `bound`.
    #[allow(clippy::option_option)]
    fn pop_windowed(&mut self, bound: Option<SimTime>) -> Option<Option<EventRef<W>>> {
        let width = 1u128 << self.shift;
        let mut cur = self.cur;
        let mut top = self.bucket_top;
        for _ in 0..self.buckets.len() {
            let bucket = &self.buckets[cur];
            let mut best: Option<(usize, SimTime, u64)> = None;
            for (i, ev) in bucket.iter().enumerate() {
                if u128::from(ev.at.as_ns()) < top
                    && best.is_none_or(|(_, at, seq)| (ev.at, ev.seq) < (at, seq))
                {
                    best = Some((i, ev.at, ev.seq));
                }
            }
            if let Some((i, at, _)) = best {
                // The first window with a qualifying event holds the
                // global minimum: earlier windows were exhausted.
                if bound.is_some_and(|b| at > b) {
                    return Some(None);
                }
                let ev = self.buckets[cur].swap_remove(i);
                self.cur = cur;
                self.bucket_top = top;
                self.floor_ns = ev.at.as_ns();
                self.len -= 1;
                return Some(Some(ev));
            }
            cur = (cur + 1) & self.mask;
            top += width;
        }
        None
    }

    /// The slow path after a fruitless lap at the ideal bucket width:
    /// the next event is beyond one calendar "year" even though the
    /// width fits the spread. Find the global minimum directly and
    /// re-centre on it.
    fn pop_rescan(&mut self, bound: Option<SimTime>) -> Option<EventRef<W>> {
        let mut best: Option<(usize, usize, SimTime, u64)> = None;
        for (bi, bucket) in self.buckets.iter().enumerate() {
            for (i, ev) in bucket.iter().enumerate() {
                if best.is_none_or(|(_, _, at, seq)| (ev.at, ev.seq) < (at, seq)) {
                    best = Some((bi, i, ev.at, ev.seq));
                }
            }
        }
        let (bi, i, at, _) = best.expect("non-empty calendar has a minimum");
        if bound.is_some_and(|b| at > b) {
            return None;
        }
        let ev = self.buckets[bi].swap_remove(i);
        let ns = ev.at.as_ns();
        self.cur = self.bucket_of(ns);
        self.bucket_top = ((u128::from(ns) >> self.shift) + 1) << self.shift;
        self.floor_ns = ns;
        self.len -= 1;
        Some(ev)
    }
}

/// One event staged by a handler, merged into the queue after the
/// handler returns.
enum Staged<W> {
    /// A boxed follow-up event.
    Boxed(SimTime, &'static str, EventFn<W>),
    /// A raw (function pointer + payload) follow-up event.
    Raw(SimTime, &'static str, RawEventFn<W>, u64),
    /// A timer-slot firing.
    Timer(SimTime, TimerId),
}

/// Staging area handed to event handlers for scheduling follow-up work.
///
/// Times passed to [`Scheduler::schedule_at`] must not be earlier than
/// the current simulation time; scheduling into the past is a logic
/// error and panics, since it would silently corrupt causality.
///
/// The staging buffer is owned by the [`Sim`] and lent to each handler
/// in turn, so steady-state event dispatch allocates nothing for it.
pub struct Scheduler<W> {
    now: SimTime,
    staged: Vec<Staged<W>>,
}

impl<W> Scheduler<W> {
    /// Current simulation time (the timestamp of the running event).
    #[inline]
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Stages an event to run `delay` after the current time.
    pub fn schedule<F>(&mut self, delay: SimTime, label: &'static str, f: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    {
        self.schedule_at(self.now + delay, label, f);
    }

    /// Stages an event to run at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_at<F>(&mut self, at: SimTime, label: &'static str, f: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    {
        self.check_future(at, label);
        self.staged.push(Staged::Boxed(at, label, Box::new(f)));
    }

    /// Stages a raw (allocation-free) event to run `delay` after the
    /// current time. `data` is passed back to `f` when it fires.
    pub fn schedule_raw(
        &mut self,
        delay: SimTime,
        label: &'static str,
        f: RawEventFn<W>,
        data: u64,
    ) {
        self.schedule_raw_at(self.now + delay, label, f, data);
    }

    /// Stages a raw (allocation-free) event at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_raw_at(
        &mut self,
        at: SimTime,
        label: &'static str,
        f: RawEventFn<W>,
        data: u64,
    ) {
        self.check_future(at, label);
        self.staged.push(Staged::Raw(at, label, f, data));
    }

    /// Stages a firing of the permanent timer slot `id` at the
    /// absolute time `at` — zero allocation.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn arm_timer(&mut self, id: TimerId, at: SimTime) {
        self.check_future(at, "timer");
        self.staged.push(Staged::Timer(at, id));
    }

    fn check_future(&self, at: SimTime, label: &'static str) {
        assert!(
            at >= self.now,
            "event '{label}' scheduled into the past: {at:?} < now {:?}",
            self.now
        );
    }
}

/// The simulation: an event queue plus the world `W` it drives.
///
/// # Examples
///
/// ```
/// use simkit::{Sim, SimTime};
///
/// let mut sim = Sim::new(0u32);
/// sim.schedule(SimTime::from_us(1), "tick", |w: &mut u32, s| {
///     *w += 1;
///     // Events may schedule further events.
///     s.schedule(SimTime::from_us(1), "tock", |w: &mut u32, _| *w += 10);
/// });
/// sim.run();
/// assert_eq!(sim.world, 11);
/// assert_eq!(sim.now(), SimTime::from_us(2));
/// ```
pub struct Sim<W> {
    /// The simulation world, freely accessible between runs.
    pub world: W,
    now: SimTime,
    seq: u64,
    calendar: Calendar<W>,
    arena: Arena<W>,
    timers: Vec<(&'static str, RawEventFn<W>, u64)>,
    /// Reused staging buffer lent to each handler's [`Scheduler`].
    staged_pool: Vec<Staged<W>>,
    executed: u64,
    observer: Option<ObserverFn<W>>,
}

impl<W> Sim<W> {
    /// Creates a simulation at time zero over the given world.
    #[must_use]
    pub fn new(world: W) -> Self {
        Sim {
            world,
            now: SimTime::ZERO,
            seq: 0,
            calendar: Calendar::new(),
            arena: Arena::new(),
            timers: Vec::new(),
            staged_pool: Vec::new(),
            executed: 0,
            observer: None,
        }
    }

    /// Installs an observer called after every executed event with
    /// `(world, event_time, event_label)`.
    ///
    /// Observation is strictly read-only and fires outside the
    /// handler, so it cannot change event order, timing, or world
    /// state — the runtime invariant engine hooks in here. With no
    /// observer installed (the default) the per-event cost is a
    /// single `Option` check.
    pub fn set_observer(&mut self, obs: ObserverFn<W>) {
        self.observer = Some(obs);
    }

    /// Removes the observer, if any.
    pub fn clear_observer(&mut self) {
        self.observer = None;
    }

    /// Current simulation time.
    #[inline]
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    #[must_use]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    #[inline]
    #[must_use]
    pub fn events_pending(&self) -> usize {
        self.calendar.len
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule<F>(&mut self, delay: SimTime, label: &'static str, f: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    {
        self.schedule_at(self.now + delay, label, f);
    }

    /// Schedules an event at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_at<F>(&mut self, at: SimTime, label: &'static str, f: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    {
        self.assert_future(at, label);
        let slot = self.arena.insert(label, Box::new(f));
        self.push_ref(at, Payload::Boxed(slot));
    }

    /// Schedules a raw (allocation-free) event `delay` after the
    /// current time. `data` is passed back to `f` when it fires.
    pub fn schedule_raw(
        &mut self,
        delay: SimTime,
        label: &'static str,
        f: RawEventFn<W>,
        data: u64,
    ) {
        self.schedule_raw_at(self.now + delay, label, f, data);
    }

    /// Schedules a raw (allocation-free) event at the absolute time
    /// `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_raw_at(
        &mut self,
        at: SimTime,
        label: &'static str,
        f: RawEventFn<W>,
        data: u64,
    ) {
        self.assert_future(at, label);
        self.push_ref(at, Payload::Raw(label, f, data));
    }

    /// Registers a permanent timer slot: the label, handler, and
    /// payload are stored once, and every subsequent
    /// [`Sim::arm_timer`] / [`Scheduler::arm_timer`] enqueues a firing
    /// with zero allocation.
    pub fn register_timer(&mut self, label: &'static str, f: RawEventFn<W>, data: u64) -> TimerId {
        let id = u32::try_from(self.timers.len()).expect("timer slot overflow");
        self.timers.push((label, f, data));
        TimerId(id)
    }

    /// Arms the timer slot `id` to fire at the absolute time `at`.
    /// Arming the slot for several deadlines fires it once per
    /// deadline.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn arm_timer(&mut self, id: TimerId, at: SimTime) {
        self.assert_future(at, self.timers[id.0 as usize].0);
        self.push_ref(at, Payload::Timer(id.0));
    }

    fn assert_future(&self, at: SimTime, label: &'static str) {
        assert!(
            at >= self.now,
            "event '{label}' scheduled into the past: {at:?} < now {:?}",
            self.now
        );
    }

    #[inline]
    fn push_ref(&mut self, at: SimTime, payload: Payload<W>) {
        self.calendar.push(EventRef {
            at,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Pops-and-runs one event; shared body of [`Sim::step`] and
    /// [`Sim::run_until`].
    fn step_bounded(&mut self, bound: Option<SimTime>) -> bool {
        let Some(ev) = self.calendar.pop(bound) else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "event violates causality");
        self.now = ev.at;
        self.executed += 1;
        let mut sched = Scheduler {
            now: self.now,
            staged: core::mem::take(&mut self.staged_pool),
        };
        let label = match ev.payload {
            Payload::Raw(label, f, data) => {
                f(&mut self.world, &mut sched, data);
                label
            }
            Payload::Timer(id) => {
                let (label, f, data) = self.timers[id as usize];
                f(&mut self.world, &mut sched, data);
                label
            }
            Payload::Boxed(slot) => {
                let (label, f) = self.arena.take(slot);
                f(&mut self.world, &mut sched);
                label
            }
        };
        let mut staged = sched.staged;
        for st in staged.drain(..) {
            match st {
                Staged::Raw(at, label, f, data) => self.push_ref(at, Payload::Raw(label, f, data)),
                Staged::Boxed(at, label, f) => {
                    let slot = self.arena.insert(label, f);
                    self.push_ref(at, Payload::Boxed(slot));
                }
                Staged::Timer(at, id) => self.push_ref(at, Payload::Timer(id.0)),
            }
        }
        self.staged_pool = staged;
        if let Some(obs) = self.observer.as_mut() {
            obs(&self.world, self.now, label);
        }
        true
    }

    /// Executes the next pending event, if any.
    ///
    /// Returns `true` if an event ran, `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        self.step_bounded(None)
    }

    /// Runs until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue is empty or the clock passes `deadline`.
    ///
    /// Events at exactly `deadline` still execute; the first event
    /// strictly beyond it is left in the queue.
    pub fn run_until(&mut self, deadline: SimTime) {
        while self.step_bounded(Some(deadline)) {}
    }

    /// Executes pending events while `keep_going` returns `true`,
    /// checking the predicate **after** every executed event.
    ///
    /// Returns `true` when the predicate stopped the run (it returned
    /// `false` after some event), and `false` when the queue drained
    /// first — including a queue that was empty on entry, in which
    /// case zero events run and the predicate is never called. When
    /// the queue is non-empty at least one event executes, even if
    /// `keep_going` would already have returned `false` beforehand.
    pub fn run_while<P: FnMut(&W) -> bool>(&mut self, mut keep_going: P) -> bool {
        loop {
            if !self.step() {
                return false;
            }
            if !keep_going(&self.world) {
                return true;
            }
        }
    }
}

/// Compile-time witness that a world type can be fanned out across
/// sweep worker threads.
///
/// A [`Sim`] itself is never sent anywhere — its event queue holds
/// non-`Send` boxed closures, so each worker builds and runs its own
/// simulation locally. The only requirement parallel sweeps place on a
/// simulation is therefore that the *world* (and whatever results are
/// extracted from it) crosses threads: assert it once, next to the
/// world type, as `const _: () = simkit::assert_world_send::<MyWorld>();`.
pub const fn assert_world_send<W: Send>() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Sim::new(Vec::new());
        sim.schedule(SimTime::from_us(3), "c", |w: &mut Vec<u32>, _| w.push(3));
        sim.schedule(SimTime::from_us(1), "a", |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule(SimTime::from_us(2), "b", |w: &mut Vec<u32>, _| w.push(2));
        sim.run();
        assert_eq!(sim.world, vec![1, 2, 3]);
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn equal_timestamps_run_fifo() {
        let mut sim = Sim::new(Vec::new());
        for i in 0..10u32 {
            sim.schedule(SimTime::from_us(7), "same", move |w: &mut Vec<u32>, _| {
                w.push(i)
            });
        }
        sim.run();
        assert_eq!(sim.world, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut sim = Sim::new(0u64);
        fn tick(w: &mut u64, s: &mut Scheduler<u64>) {
            *w += 1;
            if *w < 100 {
                s.schedule(SimTime::from_us(1), "tick", tick);
            }
        }
        sim.schedule(SimTime::ZERO, "tick", tick);
        sim.run();
        assert_eq!(sim.world, 100);
        assert_eq!(sim.now(), SimTime::from_us(99));
    }

    #[test]
    fn run_until_stops_at_deadline_inclusive() {
        let mut sim = Sim::new(Vec::new());
        for us in [1u64, 2, 3, 4] {
            sim.schedule(SimTime::from_us(us), "e", move |w: &mut Vec<u64>, _| {
                w.push(us)
            });
        }
        sim.run_until(SimTime::from_us(2));
        assert_eq!(sim.world, vec![1, 2]);
        assert_eq!(sim.events_pending(), 2);
        sim.run();
        assert_eq!(sim.world, vec![1, 2, 3, 4]);
    }

    #[test]
    fn run_while_predicate() {
        let mut sim = Sim::new(0u32);
        for _ in 0..10 {
            sim.schedule(SimTime::from_us(1), "inc", |w: &mut u32, _| *w += 1);
        }
        let satisfied = sim.run_while(|w| *w < 4);
        assert!(satisfied);
        assert_eq!(sim.world, 4);
        // The predicate is consulted only after an event executes: one
        // that is already false still lets exactly one event run.
        let satisfied = sim.run_while(|w| *w < 1);
        assert!(satisfied);
        assert_eq!(sim.world, 5);
        let exhausted = sim.run_while(|w| *w < 1000);
        assert!(!exhausted);
        assert_eq!(sim.world, 10);
    }

    #[test]
    fn run_while_on_an_empty_queue_reports_drained() {
        // Zero events ran, so the result must be "queue drained", not
        // "predicate satisfied" — and the predicate is never called.
        let mut sim = Sim::new(0u32);
        let drained = !sim.run_while(|_| panic!("predicate called with no events"));
        assert!(drained);
        assert_eq!(sim.events_executed(), 0);
    }

    #[test]
    #[should_panic(expected = "scheduled into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Sim::new(());
        sim.schedule(SimTime::from_us(5), "later", |_: &mut (), s| {
            s.schedule_at(SimTime::from_us(1), "past", |_, _| {});
        });
        sim.run();
    }

    #[test]
    fn step_on_empty_queue_returns_false() {
        let mut sim = Sim::new(());
        assert!(!sim.step());
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn observer_sees_every_event_in_order() {
        use std::cell::RefCell;
        use std::rc::Rc;

        type Seen = Vec<(u32, u64, &'static str)>;
        let seen: Rc<RefCell<Seen>> = Rc::default();
        let log = Rc::clone(&seen);
        let mut sim = Sim::new(0u32);
        sim.set_observer(Box::new(move |w, at, label| {
            log.borrow_mut().push((*w, at.as_ns(), label));
        }));
        sim.schedule(SimTime::from_us(2), "b", |w: &mut u32, _| *w += 10);
        sim.schedule(SimTime::from_us(1), "a", |w: &mut u32, _| *w += 1);
        sim.run();
        // The observer runs after each handler, with its effects
        // already applied, in execution order.
        assert_eq!(*seen.borrow(), vec![(1, 1000, "a"), (11, 2000, "b")]);
        sim.clear_observer();
        sim.schedule(SimTime::from_us(1), "c", |w: &mut u32, _| *w += 100);
        sim.run();
        assert_eq!(seen.borrow().len(), 2, "cleared observer stays silent");
    }

    #[test]
    fn raw_and_boxed_events_share_one_fifo_order() {
        fn push_raw(w: &mut Vec<u32>, _: &mut Scheduler<Vec<u32>>, data: u64) {
            w.push(data as u32);
        }
        let mut sim = Sim::new(Vec::new());
        let t = SimTime::from_us(5);
        sim.schedule_raw_at(t, "raw0", push_raw, 0);
        sim.schedule_at(t, "boxed1", |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_raw_at(t, "raw2", push_raw, 2);
        sim.schedule_at(t, "boxed3", |w: &mut Vec<u32>, _| w.push(3));
        sim.run();
        assert_eq!(sim.world, vec![0, 1, 2, 3]);
    }

    #[test]
    fn raw_events_can_stage_raw_followups() {
        fn tick(w: &mut u64, s: &mut Scheduler<u64>, data: u64) {
            *w += data;
            if *w < 10 {
                s.schedule_raw(SimTime::from_us(1), "tick", tick, data);
            }
        }
        let mut sim = Sim::new(0u64);
        sim.schedule_raw(SimTime::ZERO, "tick", tick, 2);
        sim.run();
        assert_eq!(sim.world, 10);
        assert_eq!(sim.events_executed(), 5);
    }

    #[test]
    fn timer_slots_rearm_without_allocation() {
        fn fire(w: &mut Vec<u64>, s: &mut Scheduler<Vec<u64>>, data: u64) {
            w.push(s.now().as_ns());
            let _ = data;
        }
        let mut sim = Sim::new(Vec::new());
        let t = sim.register_timer("tmr", fire, 7);
        sim.arm_timer(t, SimTime::from_us(1));
        sim.arm_timer(t, SimTime::from_us(3));
        sim.run();
        assert_eq!(sim.world, vec![1_000, 3_000]);
        // Re-arm after a drain: the slot is permanent.
        sim.arm_timer(t, SimTime::from_us(9));
        sim.run();
        assert_eq!(sim.world, vec![1_000, 3_000, 9_000]);
    }

    #[test]
    fn timers_can_be_armed_from_handlers() {
        struct W {
            fired: u32,
            timer: Option<TimerId>,
        }
        fn fire(w: &mut W, s: &mut Scheduler<W>, _: u64) {
            w.fired += 1;
            if w.fired < 5 {
                s.arm_timer(w.timer.unwrap(), s.now() + SimTime::from_us(2));
            }
        }
        let mut sim = Sim::new(W {
            fired: 0,
            timer: None,
        });
        let t = sim.register_timer("tmr", fire, 0);
        sim.world.timer = Some(t);
        sim.arm_timer(t, SimTime::from_us(1));
        sim.run();
        assert_eq!(sim.world.fired, 5);
        assert_eq!(sim.now(), SimTime::from_us(9));
    }

    #[test]
    fn calendar_handles_far_future_jumps() {
        // An event many calendar "years" beyond the bucket span forces
        // the direct-search fallback; order must still hold.
        let mut sim = Sim::new(Vec::new());
        sim.schedule_at(SimTime::from_us(1), "near", |w: &mut Vec<u64>, s| {
            w.push(1);
            // ~0.5 s away: far beyond any bucket lap at µs widths.
            s.schedule_at(SimTime::from_ns(500_000_000), "rto", |w, _| w.push(2));
        });
        sim.schedule_at(
            SimTime::from_ns(500_000_040),
            "after",
            |w: &mut Vec<u64>, _| w.push(3),
        );
        sim.run();
        assert_eq!(sim.world, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_ns(500_000_040));
    }

    #[test]
    fn calendar_grows_under_load_and_stays_ordered() {
        // Enough same-burst events to trigger several rebuilds, with
        // deliberately awkward clustering.
        let mut sim = Sim::new(Vec::new());
        let mut expect = Vec::new();
        for i in 0..500u64 {
            let at = SimTime::from_ns((i % 7) * 1_000_000 + i * 13);
            sim.schedule_at(at, "e", move |w: &mut Vec<(u64, u64)>, _| {
                w.push((at.as_ns(), i))
            });
            expect.push((at.as_ns(), i));
        }
        sim.run();
        // Sort by (time, insertion seq) — the engine's contract.
        expect.sort_by_key(|&(at, i)| (at, i));
        assert_eq!(sim.world, expect);
    }

    #[test]
    fn run_until_with_sparse_future_events() {
        let mut sim = Sim::new(0u32);
        sim.schedule_at(SimTime::from_ns(1_000_000_000), "late", |w: &mut u32, _| {
            *w += 1
        });
        // Deadline before the only event: nothing runs, event stays.
        sim.run_until(SimTime::from_us(10));
        assert_eq!(sim.world, 0);
        assert_eq!(sim.events_pending(), 1);
        sim.run_until(SimTime::from_ns(1_000_000_000));
        assert_eq!(sim.world, 1);
        assert_eq!(sim.events_pending(), 0);
    }
}
