//! The discrete-event engine.
//!
//! [`Sim`] owns a priority queue of timestamped events and a
//! user-supplied *world* — the mutable state the events act upon. Each
//! event is a boxed `FnOnce(&mut W, &mut Scheduler<W>)`; handlers stage
//! follow-up events on the [`Scheduler`], which the engine merges into
//! the queue when the handler returns.
//!
//! Two events at the same timestamp execute in the order they were
//! scheduled (FIFO tie-break via a monotone sequence number), which
//! makes every simulation run fully deterministic.

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// The type of an event handler.
///
/// The first argument is the simulation world, the second a
/// [`Scheduler`] for staging follow-up events.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Scheduler<W>)>;

/// The type of a post-event observer (see [`Sim::set_observer`]).
///
/// Called after every executed event with the world, the event's
/// timestamp, and its label. Observers get a shared borrow only: they
/// can check invariants but never perturb the simulation.
pub type ObserverFn<W> = Box<dyn FnMut(&W, SimTime, &'static str)>;

/// An event staged for execution.
struct QueuedEvent<W> {
    /// Absolute execution time.
    at: SimTime,
    /// FIFO tie-breaker among equal timestamps.
    seq: u64,
    /// Static label for tracing and panic messages.
    label: &'static str,
    handler: EventFn<W>,
}

// The heap is a max-heap; invert the ordering to pop the earliest
// (time, seq) first.
impl<W> PartialEq for QueuedEvent<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<W> Eq for QueuedEvent<W> {}

impl<W> PartialOrd for QueuedEvent<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<W> Ord for QueuedEvent<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Staging area handed to event handlers for scheduling follow-up work.
///
/// Times passed to [`Scheduler::schedule_at`] must not be earlier than
/// the current simulation time; scheduling into the past is a logic
/// error and panics, since it would silently corrupt causality.
pub struct Scheduler<W> {
    now: SimTime,
    staged: Vec<(SimTime, &'static str, EventFn<W>)>,
}

impl<W> Scheduler<W> {
    /// Current simulation time (the timestamp of the running event).
    #[inline]
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Stages an event to run `delay` after the current time.
    pub fn schedule<F>(&mut self, delay: SimTime, label: &'static str, f: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    {
        self.schedule_at(self.now + delay, label, f);
    }

    /// Stages an event to run at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_at<F>(&mut self, at: SimTime, label: &'static str, f: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    {
        assert!(
            at >= self.now,
            "event '{label}' scheduled into the past: {at:?} < now {:?}",
            self.now
        );
        self.staged.push((at, label, Box::new(f)));
    }
}

/// The simulation: an event queue plus the world `W` it drives.
///
/// # Examples
///
/// ```
/// use simkit::{Sim, SimTime};
///
/// let mut sim = Sim::new(0u32);
/// sim.schedule(SimTime::from_us(1), "tick", |w: &mut u32, s| {
///     *w += 1;
///     // Events may schedule further events.
///     s.schedule(SimTime::from_us(1), "tock", |w: &mut u32, _| *w += 10);
/// });
/// sim.run();
/// assert_eq!(sim.world, 11);
/// assert_eq!(sim.now(), SimTime::from_us(2));
/// ```
pub struct Sim<W> {
    /// The simulation world, freely accessible between runs.
    pub world: W,
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<QueuedEvent<W>>,
    executed: u64,
    observer: Option<ObserverFn<W>>,
}

impl<W> Sim<W> {
    /// Creates a simulation at time zero over the given world.
    #[must_use]
    pub fn new(world: W) -> Self {
        Sim {
            world,
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            executed: 0,
            observer: None,
        }
    }

    /// Installs an observer called after every executed event with
    /// `(world, event_time, event_label)`.
    ///
    /// Observation is strictly read-only and fires outside the
    /// handler, so it cannot change event order, timing, or world
    /// state — the runtime invariant engine hooks in here. With no
    /// observer installed (the default) the per-event cost is a
    /// single `Option` check.
    pub fn set_observer(&mut self, obs: ObserverFn<W>) {
        self.observer = Some(obs);
    }

    /// Removes the observer, if any.
    pub fn clear_observer(&mut self) {
        self.observer = None;
    }

    /// Current simulation time.
    #[inline]
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    #[must_use]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    #[inline]
    #[must_use]
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule<F>(&mut self, delay: SimTime, label: &'static str, f: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    {
        self.schedule_at(self.now + delay, label, f);
    }

    /// Schedules an event at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_at<F>(&mut self, at: SimTime, label: &'static str, f: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    {
        assert!(
            at >= self.now,
            "event '{label}' scheduled into the past: {at:?} < now {:?}",
            self.now
        );
        self.queue.push(QueuedEvent {
            at,
            seq: self.seq,
            label,
            handler: Box::new(f),
        });
        self.seq += 1;
    }

    /// Executes the next pending event, if any.
    ///
    /// Returns `true` if an event ran, `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "event '{}' violates causality", ev.label);
        self.now = ev.at;
        self.executed += 1;
        let mut sched = Scheduler {
            now: self.now,
            staged: Vec::new(),
        };
        (ev.handler)(&mut self.world, &mut sched);
        for (at, label, f) in sched.staged {
            self.queue.push(QueuedEvent {
                at,
                seq: self.seq,
                label,
                handler: f,
            });
            self.seq += 1;
        }
        if let Some(obs) = self.observer.as_mut() {
            obs(&self.world, self.now, ev.label);
        }
        true
    }

    /// Runs until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue is empty or the clock passes `deadline`.
    ///
    /// Events at exactly `deadline` still execute; the first event
    /// strictly beyond it is left in the queue.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(ev) = self.queue.peek() {
            if ev.at > deadline {
                break;
            }
            self.step();
        }
    }

    /// Executes pending events while `keep_going` returns `true`,
    /// checking the predicate **after** every executed event.
    ///
    /// Returns `true` when the predicate stopped the run (it returned
    /// `false` after some event), and `false` when the queue drained
    /// first — including a queue that was empty on entry, in which
    /// case zero events run and the predicate is never called. When
    /// the queue is non-empty at least one event executes, even if
    /// `keep_going` would already have returned `false` beforehand.
    pub fn run_while<P: FnMut(&W) -> bool>(&mut self, mut keep_going: P) -> bool {
        loop {
            if !self.step() {
                return false;
            }
            if !keep_going(&self.world) {
                return true;
            }
        }
    }
}

/// Compile-time witness that a world type can be fanned out across
/// sweep worker threads.
///
/// A [`Sim`] itself is never sent anywhere — its event queue holds
/// non-`Send` boxed closures, so each worker builds and runs its own
/// simulation locally. The only requirement parallel sweeps place on a
/// simulation is therefore that the *world* (and whatever results are
/// extracted from it) crosses threads: assert it once, next to the
/// world type, as `const _: () = simkit::assert_world_send::<MyWorld>();`.
pub const fn assert_world_send<W: Send>() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Sim::new(Vec::new());
        sim.schedule(SimTime::from_us(3), "c", |w: &mut Vec<u32>, _| w.push(3));
        sim.schedule(SimTime::from_us(1), "a", |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule(SimTime::from_us(2), "b", |w: &mut Vec<u32>, _| w.push(2));
        sim.run();
        assert_eq!(sim.world, vec![1, 2, 3]);
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn equal_timestamps_run_fifo() {
        let mut sim = Sim::new(Vec::new());
        for i in 0..10u32 {
            sim.schedule(SimTime::from_us(7), "same", move |w: &mut Vec<u32>, _| {
                w.push(i)
            });
        }
        sim.run();
        assert_eq!(sim.world, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut sim = Sim::new(0u64);
        fn tick(w: &mut u64, s: &mut Scheduler<u64>) {
            *w += 1;
            if *w < 100 {
                s.schedule(SimTime::from_us(1), "tick", tick);
            }
        }
        sim.schedule(SimTime::ZERO, "tick", tick);
        sim.run();
        assert_eq!(sim.world, 100);
        assert_eq!(sim.now(), SimTime::from_us(99));
    }

    #[test]
    fn run_until_stops_at_deadline_inclusive() {
        let mut sim = Sim::new(Vec::new());
        for us in [1u64, 2, 3, 4] {
            sim.schedule(SimTime::from_us(us), "e", move |w: &mut Vec<u64>, _| {
                w.push(us)
            });
        }
        sim.run_until(SimTime::from_us(2));
        assert_eq!(sim.world, vec![1, 2]);
        assert_eq!(sim.events_pending(), 2);
        sim.run();
        assert_eq!(sim.world, vec![1, 2, 3, 4]);
    }

    #[test]
    fn run_while_predicate() {
        let mut sim = Sim::new(0u32);
        for _ in 0..10 {
            sim.schedule(SimTime::from_us(1), "inc", |w: &mut u32, _| *w += 1);
        }
        let satisfied = sim.run_while(|w| *w < 4);
        assert!(satisfied);
        assert_eq!(sim.world, 4);
        // The predicate is consulted only after an event executes: one
        // that is already false still lets exactly one event run.
        let satisfied = sim.run_while(|w| *w < 1);
        assert!(satisfied);
        assert_eq!(sim.world, 5);
        let exhausted = sim.run_while(|w| *w < 1000);
        assert!(!exhausted);
        assert_eq!(sim.world, 10);
    }

    #[test]
    fn run_while_on_an_empty_queue_reports_drained() {
        // Zero events ran, so the result must be "queue drained", not
        // "predicate satisfied" — and the predicate is never called.
        let mut sim = Sim::new(0u32);
        let drained = !sim.run_while(|_| panic!("predicate called with no events"));
        assert!(drained);
        assert_eq!(sim.events_executed(), 0);
    }

    #[test]
    #[should_panic(expected = "scheduled into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Sim::new(());
        sim.schedule(SimTime::from_us(5), "later", |_: &mut (), s| {
            s.schedule_at(SimTime::from_us(1), "past", |_, _| {});
        });
        sim.run();
    }

    #[test]
    fn step_on_empty_queue_returns_false() {
        let mut sim = Sim::new(());
        assert!(!sim.step());
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn observer_sees_every_event_in_order() {
        use std::cell::RefCell;
        use std::rc::Rc;

        type Seen = Vec<(u32, u64, &'static str)>;
        let seen: Rc<RefCell<Seen>> = Rc::default();
        let log = Rc::clone(&seen);
        let mut sim = Sim::new(0u32);
        sim.set_observer(Box::new(move |w, at, label| {
            log.borrow_mut().push((*w, at.as_ns(), label));
        }));
        sim.schedule(SimTime::from_us(2), "b", |w: &mut u32, _| *w += 10);
        sim.schedule(SimTime::from_us(1), "a", |w: &mut u32, _| *w += 1);
        sim.run();
        // The observer runs after each handler, with its effects
        // already applied, in execution order.
        assert_eq!(*seen.borrow(), vec![(1, 1000, "a"), (11, 2000, "b")]);
        sim.clear_observer();
        sim.schedule(SimTime::from_us(1), "c", |w: &mut u32, _| *w += 100);
        sim.run();
        assert_eq!(seen.borrow().len(), 2, "cleared observer stays silent");
    }
}
