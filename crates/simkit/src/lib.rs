//! `simkit` — a small, deterministic discrete-event simulation engine.
//!
//! This crate provides the substrate on which the rest of the
//! `tcp-atm-latency` reproduction runs: a virtual clock with 40 ns
//! granularity (matching the TurboChannel real-time clock used by the
//! paper), an event queue with deterministic tie-breaking, a simple CPU
//! occupancy model used to serialize "kernel work" on each simulated
//! host, a deterministic pseudo-random number generator for error
//! injection, and a lightweight trace ring buffer.
//!
//! # Design
//!
//! Events are either boxed closures of type [`EventFn`] or
//! allocation-free *raw* events ([`RawEventFn`]: a function pointer
//! plus a `u64` payload), executed against a user-supplied world type
//! `W`. Handlers cannot touch the event queue directly (that would
//! alias the engine borrow); instead they receive a [`Scheduler`] into
//! which new events are staged and merged after the handler returns.
//! This keeps the engine free of interior mutability while still
//! allowing handlers to schedule arbitrary follow-up work.
//!
//! Internally the queue is a calendar/bucket structure over a
//! slab-allocated event arena with permanent, re-armable timer slots
//! ([`TimerId`]); see [`engine`] for why determinism is preserved.
//!
//! # Examples
//!
//! ```
//! use simkit::{Sim, SimTime};
//!
//! struct World {
//!     fired: Vec<u32>,
//! }
//!
//! let mut sim = Sim::new(World { fired: Vec::new() });
//! sim.schedule(SimTime::from_us(5), "later", |w: &mut World, _s| w.fired.push(2));
//! sim.schedule(SimTime::from_us(1), "sooner", |w: &mut World, _s| w.fired.push(1));
//! sim.run();
//! assert_eq!(sim.world.fired, vec![1, 2]);
//! assert_eq!(sim.now(), SimTime::from_us(5));
//! ```

#![warn(missing_docs)]

pub mod cpu;
pub mod engine;
pub mod rng;
pub mod time;
pub mod trace;

pub use cpu::{Cpu, CpuBand, CpuStats};
pub use engine::{assert_world_send, EventFn, ObserverFn, RawEventFn, Scheduler, Sim, TimerId};
pub use rng::SimRng;
pub use time::SimTime;
pub use trace::{TraceBuffer, TraceEvent, TraceLevel};
