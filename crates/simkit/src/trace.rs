//! A lightweight trace ring buffer.
//!
//! The original study debugged its kernel instrumentation by extracting
//! timestamped event logs through added system calls. The simulator
//! keeps an in-memory equivalent: a bounded ring of `(time, level,
//! category, message)` records that protocol components append to and
//! tests/tools inspect. Tracing is off (capacity 0) by default so the
//! hot measurement loops pay nothing.

use std::collections::VecDeque;

use crate::time::SimTime;

/// Severity of a trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum TraceLevel {
    /// Fine-grained event flow (cell arrivals, mbuf moves).
    #[default]
    Debug,
    /// Notable protocol events (segment sent, fast path taken).
    Info,
    /// Abnormal events (checksum failure, cell drop, retransmit).
    Warn,
}

/// One trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation time the record was appended.
    pub at: SimTime,
    /// Severity.
    pub level: TraceLevel,
    /// Static component tag, e.g. `"tcp"`, `"atm-drv"`.
    pub category: &'static str,
    /// Human-readable message.
    pub message: String,
}

/// A bounded ring of trace records.
///
/// # Examples
///
/// ```
/// use simkit::{SimTime, TraceBuffer, TraceLevel};
///
/// let mut tb = TraceBuffer::with_capacity(2);
/// tb.push(SimTime::ZERO, TraceLevel::Info, "tcp", "syn sent".into());
/// tb.push(SimTime::from_us(1), TraceLevel::Info, "tcp", "syn+ack".into());
/// tb.push(SimTime::from_us(2), TraceLevel::Warn, "tcp", "rexmit".into());
/// // Capacity 2: the oldest record was evicted.
/// assert_eq!(tb.len(), 2);
/// assert_eq!(tb.iter().next().unwrap().message, "syn+ack");
/// ```
#[derive(Clone, Debug, Default)]
pub struct TraceBuffer {
    records: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    min_level: TraceLevel,
}

impl TraceBuffer {
    /// Creates a disabled buffer (capacity zero, drops everything).
    #[must_use]
    pub fn disabled() -> Self {
        Self::with_capacity(0)
    }

    /// Creates a buffer retaining at most `capacity` records.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        TraceBuffer {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
            min_level: TraceLevel::Debug,
        }
    }

    /// Sets the minimum level retained; lower-level records are counted
    /// as dropped.
    pub fn set_min_level(&mut self, level: TraceLevel) {
        self.min_level = level;
    }

    /// Whether the buffer retains anything at all.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Appends a record, evicting the oldest if at capacity.
    pub fn push(
        &mut self,
        at: SimTime,
        level: TraceLevel,
        category: &'static str,
        message: String,
    ) {
        if self.capacity == 0 || level < self.min_level {
            self.dropped += 1;
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceEvent {
            at,
            level,
            category,
            message,
        });
    }

    /// Number of retained records.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are retained.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records dropped (filtered or evicted).
    #[inline]
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.records.iter()
    }

    /// Clears retained records (the dropped counter is preserved).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tb: &mut TraceBuffer, us: u64, level: TraceLevel, msg: &str) {
        tb.push(SimTime::from_us(us), level, "test", msg.to_string());
    }

    #[test]
    fn disabled_buffer_drops_everything() {
        let mut tb = TraceBuffer::disabled();
        rec(&mut tb, 0, TraceLevel::Warn, "x");
        assert!(tb.is_empty());
        assert!(!tb.is_enabled());
        assert_eq!(tb.dropped(), 1);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut tb = TraceBuffer::with_capacity(3);
        for i in 0..5 {
            rec(&mut tb, i, TraceLevel::Info, &format!("m{i}"));
        }
        assert_eq!(tb.len(), 3);
        let msgs: Vec<_> = tb.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, ["m2", "m3", "m4"]);
        assert_eq!(tb.dropped(), 2);
    }

    #[test]
    fn min_level_filters() {
        let mut tb = TraceBuffer::with_capacity(10);
        tb.set_min_level(TraceLevel::Warn);
        rec(&mut tb, 0, TraceLevel::Debug, "d");
        rec(&mut tb, 0, TraceLevel::Info, "i");
        rec(&mut tb, 0, TraceLevel::Warn, "w");
        assert_eq!(tb.len(), 1);
        assert_eq!(tb.iter().next().unwrap().level, TraceLevel::Warn);
    }

    #[test]
    fn clear_retains_drop_count() {
        let mut tb = TraceBuffer::with_capacity(1);
        rec(&mut tb, 0, TraceLevel::Info, "a");
        rec(&mut tb, 1, TraceLevel::Info, "b");
        assert_eq!(tb.dropped(), 1);
        tb.clear();
        assert!(tb.is_empty());
        assert_eq!(tb.dropped(), 1);
    }
}
