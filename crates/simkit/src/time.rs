//! Simulated time.
//!
//! The paper measured latency with a free-running real-time clock on a
//! TurboChannel card (the DEC SRC AN-1 controller) with a **40 ns
//! period**. We represent simulated time as an integer count of
//! nanoseconds, and provide a quantization helper that rounds a time
//! down to the 40 ns tick, which the measurement layer applies to every
//! probe read so that the reproduction has the same clock granularity
//! as the original study.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Period of the TurboChannel real-time clock used by the paper, in
/// nanoseconds.
pub const CLOCK_PERIOD_NS: u64 = 40;

/// A point in (or span of) simulated time, stored as whole nanoseconds.
///
/// `SimTime` is used both as an absolute timestamp and as a duration;
/// the arithmetic provided covers both uses. Absolute time starts at
/// [`SimTime::ZERO`] when the simulation boots.
///
/// # Examples
///
/// ```
/// use simkit::SimTime;
///
/// let t = SimTime::from_us(3) + SimTime::from_ns(500);
/// assert_eq!(t.as_ns(), 3_500);
/// assert_eq!(t.as_us_f64(), 3.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The epoch: simulation boot time (also the zero duration).
    pub const ZERO: SimTime = SimTime(0);

    /// The maximum representable time; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from whole nanoseconds.
    #[inline]
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from whole microseconds.
    #[inline]
    #[must_use]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from fractional microseconds, rounding to the
    /// nearest nanosecond.
    ///
    /// Negative inputs saturate to zero: cost-model arithmetic can
    /// produce tiny negative values when a fitted intercept is negative,
    /// and a negative duration is never meaningful here.
    #[inline]
    #[must_use]
    pub fn from_us_f64(us: f64) -> Self {
        if us <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((us * 1_000.0).round() as u64)
    }

    /// Creates a time from whole milliseconds.
    #[inline]
    #[must_use]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    #[inline]
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Returns the time as whole nanoseconds.
    #[inline]
    #[must_use]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional microseconds.
    #[inline]
    #[must_use]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the time as fractional milliseconds.
    #[inline]
    #[must_use]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the time as fractional seconds.
    #[inline]
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Quantizes this time down to the 40 ns TurboChannel clock tick.
    ///
    /// The paper's probes read a free-running counter with a 40 ns
    /// period; applying this to probe reads reproduces that granularity.
    ///
    /// # Examples
    ///
    /// ```
    /// use simkit::SimTime;
    ///
    /// assert_eq!(SimTime::from_ns(119).quantized().as_ns(), 80);
    /// assert_eq!(SimTime::from_ns(120).quantized().as_ns(), 120);
    /// ```
    #[inline]
    #[must_use]
    pub const fn quantized(self) -> Self {
        SimTime(self.0 - self.0 % CLOCK_PERIOD_NS)
    }

    /// Saturating subtraction: returns the duration from `earlier` to
    /// `self`, or zero if `earlier` is later.
    #[inline]
    #[must_use]
    pub const fn saturating_since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction.
    #[inline]
    #[must_use]
    pub const fn checked_sub(self, other: SimTime) -> Option<SimTime> {
        match self.0.checked_sub(other.0) {
            Some(ns) => Some(SimTime(ns)),
            None => None,
        }
    }

    /// Returns the larger of two times.
    #[inline]
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    #[inline]
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;

    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// Panics in debug builds on underflow, like integer subtraction.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;

    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;

    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    /// Renders with an adaptive unit: ns below 1 µs, µs below 1 s,
    /// seconds otherwise.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{} ns", self.0)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2} us", self.as_us_f64())
        } else {
            write!(f, "{:.4} s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_ms(1_000));
    }

    #[test]
    fn fractional_microseconds_round() {
        assert_eq!(SimTime::from_us_f64(1.2345).as_ns(), 1_235);
        assert_eq!(SimTime::from_us_f64(0.0004).as_ns(), 0);
        assert_eq!(SimTime::from_us_f64(0.0006).as_ns(), 1);
    }

    #[test]
    fn negative_microseconds_saturate_to_zero() {
        assert_eq!(SimTime::from_us_f64(-3.0), SimTime::ZERO);
    }

    #[test]
    fn quantization_rounds_down_to_40ns() {
        assert_eq!(SimTime::from_ns(0).quantized().as_ns(), 0);
        assert_eq!(SimTime::from_ns(39).quantized().as_ns(), 0);
        assert_eq!(SimTime::from_ns(40).quantized().as_ns(), 40);
        assert_eq!(SimTime::from_ns(79).quantized().as_ns(), 40);
        assert_eq!(SimTime::from_ns(1_000_003).quantized().as_ns(), 1_000_000);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_us(10);
        let b = SimTime::from_us(4);
        assert_eq!(a + b, SimTime::from_us(14));
        assert_eq!(a - b, SimTime::from_us(6));
        assert_eq!(a * 3, SimTime::from_us(30));
        assert_eq!(a / 2, SimTime::from_us(5));
        assert_eq!(b.saturating_since(a), SimTime::ZERO);
        assert_eq!(a.saturating_since(b), SimTime::from_us(6));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a.checked_sub(b), Some(SimTime::from_us(6)));
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_us(1);
        let b = SimTime::from_us(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(a), a);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4u64).map(SimTime::from_us).sum();
        assert_eq!(total, SimTime::from_us(10));
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_ns(999).to_string(), "999 ns");
        assert_eq!(SimTime::from_us(1021).to_string(), "1021.00 us");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.0000 s");
    }
}
