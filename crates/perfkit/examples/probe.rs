//! Delay-spread sensitivity probe for the engine microbenchmark.
//!
//! Runs the synthetic churn at several delay spreads and prints both
//! engines' throughput, to show where the calendar queue wins and
//! what the bench workload's spread choice means. Not part of
//! `repro bench`; run with:
//! `cargo run --release -p perfkit --example probe`

use std::time::Instant;

use simkit::{Sim, SimTime};

const SOURCES: u64 = 64;
const EVENTS: u64 = 1_000_000;

struct Churn {
    fired: u64,
    budget: u64,
    mix: u64,
    spread: u64,
}

impl Churn {
    #[inline]
    fn next_delay(&mut self, src: u64) -> Option<SimTime> {
        self.fired += 1;
        self.mix = self
            .mix
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(src);
        if self.fired >= self.budget {
            return None;
        }
        let ticks = (self.mix >> 33) % self.spread;
        Some(SimTime::from_ns(40 + ticks * 40))
    }
}

fn run_heap(budget: u64, spread: u64) -> (u64, u64) {
    fn tick(src: u64) -> impl FnOnce(&mut Churn, &mut perfkit::baseline::Scheduler<Churn>) {
        move |w, s| {
            if let Some(delay) = w.next_delay(src) {
                s.schedule(delay, tick(src));
            }
        }
    }
    let mut sim = perfkit::baseline::HeapSim::new(Churn {
        fired: 0,
        budget,
        mix: 1,
        spread,
    });
    for src in 0..SOURCES {
        sim.schedule_at(SimTime::from_ns(src * 40), tick(src));
    }
    sim.run();
    (sim.events_executed(), sim.world.mix)
}

fn run_calendar(budget: u64, spread: u64) -> (u64, u64) {
    fn tick(w: &mut Churn, s: &mut simkit::Scheduler<Churn>, src: u64) {
        if let Some(delay) = w.next_delay(src) {
            s.schedule_raw(delay, "churn", tick, src);
        }
    }
    let mut sim = Sim::new(Churn {
        fired: 0,
        budget,
        mix: 1,
        spread,
    });
    for src in 0..SOURCES {
        sim.schedule_raw_at(SimTime::from_ns(src * 40), "churn", tick, src);
    }
    sim.run();
    (sim.events_executed(), sim.world.mix)
}

fn main() {
    for spread in [16_384u64, 4_096, 1_024, 256, 64] {
        run_heap(EVENTS / 8, spread);
        run_calendar(EVENTS / 8, spread);
        let t = Instant::now();
        let h = run_heap(EVENTS, spread);
        let th = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let c = run_calendar(EVENTS, spread);
        let tc = t.elapsed().as_secs_f64();
        assert_eq!(h, c);
        println!(
            "spread {:>6} ticks: heap {:>10.0} ev/s  calendar {:>10.0} ev/s  speedup {:.2}x",
            spread,
            EVENTS as f64 / th,
            EVENTS as f64 / tc,
            tc.recip() * th
        );
    }
}
