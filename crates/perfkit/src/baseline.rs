//! A frozen copy of the pre-calendar-queue simulation engine.
//!
//! This is the `simkit::engine` that shipped before the hot-path
//! overhaul: a `BinaryHeap` priority queue popping boxed `FnOnce`
//! events in `(time, seq)` order. It is kept here — private to
//! `perfkit`, never used by the simulation — so `repro bench` can
//! report the calendar-queue engine's speedup against the engine it
//! replaced on identical workloads, on the machine the benchmark runs
//! on. Do not "improve" this module; its whole value is standing
//! still.

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use simkit::SimTime;

/// A boxed event handler, exactly as the old engine stored every
/// event (one heap allocation per scheduled event).
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Scheduler<W>)>;

struct QueuedEvent<W> {
    at: SimTime,
    seq: u64,
    handler: EventFn<W>,
}

// The heap is a max-heap; invert the ordering to pop the earliest
// (time, seq) first.
impl<W> PartialEq for QueuedEvent<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<W> Eq for QueuedEvent<W> {}

impl<W> PartialOrd for QueuedEvent<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<W> Ord for QueuedEvent<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Staging area handed to event handlers, as in the old engine.
pub struct Scheduler<W> {
    now: SimTime,
    staged: Vec<(SimTime, EventFn<W>)>,
}

impl<W> Scheduler<W> {
    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Stages an event to run `delay` after the current time.
    pub fn schedule<F>(&mut self, delay: SimTime, f: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    {
        self.staged.push((self.now + delay, Box::new(f)));
    }
}

/// The old heap-based simulation loop.
pub struct HeapSim<W> {
    /// The simulation world.
    pub world: W,
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<QueuedEvent<W>>,
    executed: u64,
}

impl<W> HeapSim<W> {
    /// Creates a simulation at time zero over the given world.
    pub fn new(world: W) -> Self {
        HeapSim {
            world,
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            executed: 0,
        }
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Schedules an event at the absolute time `at`.
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    {
        assert!(at >= self.now, "event scheduled into the past");
        self.queue.push(QueuedEvent {
            at,
            seq: self.seq,
            handler: Box::new(f),
        });
        self.seq += 1;
    }

    /// Executes the next pending event; `false` when the queue is dry.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        self.now = ev.at;
        self.executed += 1;
        let mut sched = Scheduler {
            now: self.now,
            staged: Vec::new(),
        };
        (ev.handler)(&mut self.world, &mut sched);
        for (at, f) in sched.staged {
            self.queue.push(QueuedEvent {
                at,
                seq: self.seq,
                handler: f,
            });
            self.seq += 1;
        }
        true
    }

    /// Runs until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }
}
