//! # perfkit — the performance measurement kit
//!
//! Everything behind `repro bench`: the engine microbenchmark (the
//! calendar-queue engine vs a frozen copy of the `BinaryHeap` engine
//! it replaced, on an identical synthetic workload), end-to-end
//! simulated-RTT throughput, whole-sweep wall-clock at several worker
//! counts, and the machine-readable `BENCH_<n>.json` report the CI
//! regression gate compares against.
//!
//! Two rules keep the numbers meaningful:
//!
//! 1. **Same workload, bit for bit.** Both engines run the same
//!    self-rescheduling event churn and must end with the same event
//!    count and world checksum; [`engine_bench`] panics if they
//!    disagree. A benchmark that computes different things measures
//!    nothing.
//! 2. **Ratios over absolutes.** Wall-clock numbers differ across
//!    machines; the heap-vs-calendar *speedup* is measured in the
//!    same process on the same workload, so it transfers. The CI gate
//!    compares speedups, not seconds.
//!
//! The frozen baseline (see [`baseline`]) is in fact slightly leaner
//! than the engine that shipped — event labels were stripped from its
//! queue entries — so the reported speedup is a floor, not a cherry
//! pick.

#![warn(missing_docs)]

pub mod baseline;

use std::time::Instant;

use latency_core::experiment::{Experiment, NetKind};
use simkit::{Sim, SimTime};
use sweep::Sweep;

/// The series number of the benchmark report this tree writes:
/// `repro bench` emits `BENCH_5.json`, and CI gates against the
/// checked-in copy of the same name.
pub const BENCH_SERIES: u32 = 5;

/// Concurrent event sources in the synthetic engine workload. Enough
/// to keep a realistic queue depth (the TCP simulation holds a few
/// dozen pending events: timers, NIC DMA, link deliveries).
const SOURCES: u64 = 64;

/// The synthetic engine workload: `SOURCES` self-rescheduling event
/// streams whose delays come from a multiplicative mix, spreading
/// arrivals across calendar buckets the way protocol timers spread
/// across time. Both engines run this exact state machine.
struct Churn {
    fired: u64,
    budget: u64,
    mix: u64,
}

impl Churn {
    fn new(budget: u64, seed: u64) -> Self {
        Churn {
            fired: 0,
            budget,
            // An even seed would shorten the multiplicative orbit.
            mix: seed | 1,
        }
    }

    /// Advances the workload for one firing of source `src`; returns
    /// the next delay, or `None` once the event budget is spent.
    #[inline]
    fn next_delay(&mut self, src: u64) -> Option<SimTime> {
        self.fired += 1;
        self.mix = self
            .mix
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(src);
        if self.fired >= self.budget {
            return None;
        }
        // 40 ns .. ~650 µs in clock ticks: near timers and far
        // timers, so the calendar's bucket walk gets exercised too.
        let ticks = (self.mix >> 33) % 16_384;
        Some(SimTime::from_ns(40 + ticks * 40))
    }

    fn checksum(&self) -> u64 {
        self.mix ^ self.fired
    }
}

fn run_heap(budget: u64, seed: u64) -> (u64, u64) {
    fn tick(src: u64) -> impl FnOnce(&mut Churn, &mut baseline::Scheduler<Churn>) {
        move |w, s| {
            if let Some(delay) = w.next_delay(src) {
                s.schedule(delay, tick(src));
            }
        }
    }
    let mut sim = baseline::HeapSim::new(Churn::new(budget, seed));
    for src in 0..SOURCES {
        sim.schedule_at(SimTime::from_ns(src * 40), tick(src));
    }
    sim.run();
    (sim.events_executed(), sim.world.checksum())
}

fn run_calendar(budget: u64, seed: u64) -> (u64, u64) {
    fn tick(w: &mut Churn, s: &mut simkit::Scheduler<Churn>, src: u64) {
        if let Some(delay) = w.next_delay(src) {
            s.schedule_raw(delay, "churn", tick, src);
        }
    }
    let mut sim = Sim::new(Churn::new(budget, seed));
    for src in 0..SOURCES {
        sim.schedule_raw_at(SimTime::from_ns(src * 40), "churn", tick, src);
    }
    sim.run();
    (sim.events_executed(), sim.world.checksum())
}

/// Result of the engine microbenchmark: both engines over the same
/// synthetic workload.
pub struct EngineBench {
    /// Events each engine executed (identical by construction).
    pub events: u64,
    /// Final workload checksum (identical across engines, asserted).
    pub checksum: u64,
    /// Wall-clock seconds for the frozen heap engine.
    pub heap_wall_s: f64,
    /// Wall-clock seconds for the calendar-queue engine.
    pub calendar_wall_s: f64,
}

impl EngineBench {
    /// Events per second through the frozen heap engine.
    #[must_use]
    pub fn heap_events_per_sec(&self) -> f64 {
        self.events as f64 / self.heap_wall_s
    }

    /// Events per second through the calendar-queue engine.
    #[must_use]
    pub fn calendar_events_per_sec(&self) -> f64 {
        self.events as f64 / self.calendar_wall_s
    }

    /// Calendar-queue throughput over heap throughput.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.heap_wall_s / self.calendar_wall_s
    }
}

/// Runs the synthetic workload of `events` events through both
/// engines and times them.
///
/// Both engines get an unmeasured warmup pass (an eighth of the
/// budget) so neither pays cold-cache costs for the other's benefit;
/// the heap engine is then measured first.
///
/// # Panics
///
/// Panics if the two engines disagree on the event count or final
/// checksum — a disagreement means the benchmark is comparing two
/// different computations and its numbers are void.
#[must_use]
pub fn engine_bench(events: u64, seed: u64) -> EngineBench {
    let warmup = (events / 8).max(SOURCES + 1);
    run_heap(warmup, seed);
    run_calendar(warmup, seed);

    // Three alternating rounds, best-of per engine: alternation keeps
    // thermal/turbo drift from systematically favouring whichever
    // engine runs second, and the minimum is the least-disturbed run.
    let mut heap_wall_s = f64::INFINITY;
    let mut calendar_wall_s = f64::INFINITY;
    let mut heap = (0, 0);
    let mut cal = (0, 0);
    for _ in 0..3 {
        let t = Instant::now();
        heap = run_heap(events, seed);
        heap_wall_s = heap_wall_s.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        cal = run_calendar(events, seed);
        calendar_wall_s = calendar_wall_s.min(t.elapsed().as_secs_f64());
    }

    assert_eq!(
        heap, cal,
        "engines disagree on the synthetic workload; the benchmark is void"
    );
    EngineBench {
        events: heap.0,
        checksum: heap.1,
        heap_wall_s,
        calendar_wall_s,
    }
}

/// End-to-end throughput of one experiment: simulated RTTs and
/// simulation events per wall-clock second.
pub struct RttBench {
    /// Substrate name (`"atm"` or `"ether"`).
    pub net: String,
    /// Message size in bytes.
    pub size: usize,
    /// Measured iterations requested.
    pub iterations: u64,
    /// RTT samples actually collected.
    pub rtts: u64,
    /// Simulation events executed.
    pub sim_events: u64,
    /// Wall-clock seconds.
    pub wall_s: f64,
}

impl RttBench {
    /// Simulated round trips per wall-clock second.
    #[must_use]
    pub fn rtts_per_sec(&self) -> f64 {
        self.rtts as f64 / self.wall_s
    }

    /// Simulation events per wall-clock second.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        self.sim_events as f64 / self.wall_s
    }
}

/// Times one RPC experiment end to end (the full stack, not just the
/// engine): `iterations` echo round trips of `size` bytes.
#[must_use]
pub fn measure_rtt(net: NetKind, size: usize, iterations: u64, seed: u64) -> RttBench {
    let mut exp = Experiment::rpc(net, size);
    exp.iterations = iterations;
    exp.warmup = 16;
    let t = Instant::now();
    let run = exp.plan().seed(seed).execute();
    let wall_s = t.elapsed().as_secs_f64();
    RttBench {
        net: format!("{net:?}").to_lowercase(),
        size,
        iterations,
        rtts: run.rtts.len() as u64,
        sim_events: run.events,
        wall_s,
    }
}

/// The `--sketch` observability benchmark: a synthetic million-sample
/// fan-out completion stream pushed through per-shard sketch-mode
/// recorders, merged in shard (grid) order, and gated three ways —
/// retained memory stays under the sketch's documented ceiling, the
/// merged sketch p99 stays within 1% of the exact nearest-rank p99
/// over the same stream, and the merged result is byte-identical
/// whether the shards ran on 1 worker or 4.
pub struct SketchBench {
    /// Samples streamed (across all shards).
    pub samples: u64,
    /// Shards the stream was split into (one recorder each).
    pub shards: usize,
    /// Wall-clock seconds for the sharded sketch pass (jobs = 4).
    pub wall_s: f64,
    /// Bytes retained by the merged sketch recorder.
    pub memory_bytes: usize,
    /// Exact nearest-rank p99 over the full stream, in ns.
    pub exact_p99_ns: i64,
    /// Merged-sketch p99, in ns.
    pub sketch_p99_ns: i64,
    /// Whether the jobs=1 and jobs=4 merges agreed bit for bit
    /// (count, sum, min, max, and every probed percentile).
    pub jobs_byte_identical: bool,
}

impl SketchBench {
    /// `|sketch − exact| / exact` at p99 (0 when exact is 0).
    #[must_use]
    pub fn p99_drift(&self) -> f64 {
        if self.exact_p99_ns == 0 {
            return 0.0;
        }
        (self.sketch_p99_ns - self.exact_p99_ns).abs() as f64 / self.exact_p99_ns as f64
    }

    /// Samples per wall-clock second through the sharded sketch pass.
    #[must_use]
    pub fn samples_per_sec(&self) -> f64 {
        self.samples as f64 / self.wall_s
    }
}

/// Sequential splitmix64: the standard 64-bit finalizer-based PRNG,
/// deterministic per (seed, shard) by construction.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One synthetic fan-out completion time in ns: a ~50–250 µs body
/// with a 1-in-64 heavy tail stretching into tens of ms — the shape
/// the tails study produces, scaled to exercise many sketch octaves.
fn synthetic_completion_ns(r: u64, tail: u64) -> i64 {
    let body = 50_000 + (r % 200_000);
    let spike = if r.is_multiple_of(64) {
        tail % 50_000_000
    } else {
        0
    };
    (body + spike) as i64
}

/// Runs the sharded sketch pass at one worker count and returns the
/// merged recorder (shards merged in shard order).
fn sketch_pass(samples: u64, shards: usize, seed: u64, jobs: usize) -> simcap::Recorder {
    let per_shard = samples / shards as u64;
    let shard_ids: Vec<u64> = (0..shards as u64).collect();
    let parts = sweep::pool::run_ordered(&shard_ids, jobs, |_, &shard| {
        let mut state = seed ^ (shard.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
        let mut rec = simcap::Recorder::sketched();
        for _ in 0..per_shard {
            let r = splitmix64(&mut state);
            let tail = splitmix64(&mut state);
            rec.observe_ns(synthetic_completion_ns(r, tail));
        }
        rec
    });
    let mut merged = simcap::Recorder::sketched();
    for part in &parts {
        merged.merge(part);
    }
    merged
}

/// Measures the sketch-mode observability path on a synthetic stream
/// of `samples` completions split across `shards` recorders.
///
/// The exact reference pools every sample and takes the nearest-rank
/// p99 (the same rule `simcap::LatencyDist` applies); the sketch pass
/// runs twice, at 1 and 4 workers, and the two merges must agree bit
/// for bit — the gates themselves are applied by the caller.
///
/// # Panics
///
/// Panics if `shards` is zero or `samples < shards`.
#[must_use]
pub fn sketch_bench(samples: u64, shards: usize, seed: u64) -> SketchBench {
    use simcap::Quantiles;
    assert!(shards >= 1 && samples >= shards as u64);
    // Exact reference: pool the identical stream, nearest-rank p99.
    let per_shard = samples / shards as u64;
    let mut exact: Vec<i64> = Vec::with_capacity((per_shard * shards as u64) as usize);
    for shard in 0..shards as u64 {
        let mut state = seed ^ (shard.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
        for _ in 0..per_shard {
            let r = splitmix64(&mut state);
            let tail = splitmix64(&mut state);
            exact.push(synthetic_completion_ns(r, tail));
        }
    }
    let exact_dist = simcap::LatencyDist::from_samples(exact);

    let t = Instant::now();
    let merged = sketch_pass(samples, shards, seed, 4);
    let wall_s = t.elapsed().as_secs_f64();
    let single = sketch_pass(samples, shards, seed, 1);

    let probe = |r: &simcap::Recorder| {
        (
            Quantiles::count(r),
            r.percentile_ns(50.0),
            r.percentile_ns(99.0),
            r.percentile_ns(99.9),
            Quantiles::min_ns(r),
            Quantiles::max_ns(r),
            r.mean_us().to_bits(),
        )
    };
    SketchBench {
        samples: per_shard * shards as u64,
        shards,
        wall_s,
        memory_bytes: merged.memory_bytes(),
        exact_p99_ns: simcap::LatencyDist::percentile_ns(&exact_dist, 99.0),
        sketch_p99_ns: merged.percentile_ns(99.0).unwrap_or(0),
        jobs_byte_identical: probe(&merged) == probe(&single),
    }
}

/// Wall-clock for one whole sweep grid at one worker count.
pub struct SweepBench {
    /// Grid name (from [`Sweep::new`]).
    pub grid: String,
    /// Worker count the grid ran with.
    pub jobs: usize,
    /// Cells in the grid.
    pub cells: usize,
    /// Simulation events summed over every cell.
    pub sim_events: u64,
    /// RTT samples summed over every cell.
    pub rtts: u64,
    /// Wall-clock seconds for the whole grid.
    pub wall_s: f64,
}

impl SweepBench {
    /// Simulation events per wall-clock second across the grid.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        self.sim_events as f64 / self.wall_s
    }
}

/// Runs `sw` at the given worker count and times it.
#[must_use]
pub fn measure_sweep(sw: &Sweep, jobs: usize) -> SweepBench {
    let t = Instant::now();
    let results = sw.run(jobs);
    let wall_s = t.elapsed().as_secs_f64();
    SweepBench {
        grid: results.name.clone(),
        jobs,
        cells: results.outcomes.len(),
        sim_events: results.outcomes.iter().map(|o| o.result.events).sum(),
        rtts: results
            .outcomes
            .iter()
            .map(|o| o.result.rtts.len() as u64)
            .sum(),
        wall_s,
    }
}

/// The full `repro bench` report, serialized to `BENCH_<series>.json`.
///
/// The JSON schema (`perfkit-bench-v1`) is documented in README.md;
/// wall-clock fields are machine-local, the `speedup` ratio is what
/// transfers across machines and what CI gates on.
pub struct BenchReport {
    /// Report series (`BENCH_<series>.json`).
    pub series: u32,
    /// Whether this was the `--quick` CI scale.
    pub quick: bool,
    /// Base seed of the directly seeded measurements.
    pub seed: u64,
    /// Engine microbenchmark.
    pub engine: EngineBench,
    /// End-to-end RTT throughput measurements.
    pub rtt: Vec<RttBench>,
    /// Whole-grid timings, one entry per (grid, jobs) pair.
    pub sweeps: Vec<SweepBench>,
    /// Sketch-mode observability benchmark (`--sketch` only).
    pub sketch: Option<SketchBench>,
}

impl BenchReport {
    /// Serializes the report (hand-rolled JSON; the workspace takes
    /// no serialization dependency).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"perfkit-bench-v1\",\n");
        s.push_str(&format!("  \"series\": {},\n", self.series));
        s.push_str(&format!("  \"quick\": {},\n", self.quick));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str("  \"engine\": {\n");
        s.push_str(&format!("    \"events\": {},\n", self.engine.events));
        s.push_str(&format!(
            "    \"checksum\": \"{:#018x}\",\n",
            self.engine.checksum
        ));
        s.push_str(&format!(
            "    \"heap_wall_s\": {:.6},\n",
            self.engine.heap_wall_s
        ));
        s.push_str(&format!(
            "    \"heap_events_per_sec\": {:.1},\n",
            self.engine.heap_events_per_sec()
        ));
        s.push_str(&format!(
            "    \"calendar_wall_s\": {:.6},\n",
            self.engine.calendar_wall_s
        ));
        s.push_str(&format!(
            "    \"calendar_events_per_sec\": {:.1},\n",
            self.engine.calendar_events_per_sec()
        ));
        s.push_str(&format!(
            "    \"speedup\": {:.3}\n  }},\n",
            self.engine.speedup()
        ));
        s.push_str("  \"rtt\": [\n");
        for (i, r) in self.rtt.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"net\": \"{}\", \"size\": {}, \"iterations\": {}, \"rtts\": {}, \
                 \"sim_events\": {}, \"wall_s\": {:.6}, \"rtts_per_sec\": {:.1}, \
                 \"events_per_sec\": {:.1}}}{}\n",
                r.net,
                r.size,
                r.iterations,
                r.rtts,
                r.sim_events,
                r.wall_s,
                r.rtts_per_sec(),
                r.events_per_sec(),
                if i + 1 < self.rtt.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n  \"sweeps\": [\n");
        for (i, b) in self.sweeps.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"grid\": \"{}\", \"jobs\": {}, \"cells\": {}, \"sim_events\": {}, \
                 \"rtts\": {}, \"wall_s\": {:.6}, \"events_per_sec\": {:.1}}}{}\n",
                b.grid,
                b.jobs,
                b.cells,
                b.sim_events,
                b.rtts,
                b.wall_s,
                b.events_per_sec(),
                if i + 1 < self.sweeps.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]");
        if let Some(sk) = &self.sketch {
            s.push_str(&format!(
                ",\n  \"sketch\": {{\"samples\": {}, \"shards\": {}, \"wall_s\": {:.6}, \
                 \"samples_per_sec\": {:.1}, \"memory_bytes\": {}, \"exact_p99_ns\": {}, \
                 \"sketch_p99_ns\": {}, \"p99_drift\": {:.6}, \"jobs_byte_identical\": {}}}",
                sk.samples,
                sk.shards,
                sk.wall_s,
                sk.samples_per_sec(),
                sk.memory_bytes,
                sk.exact_p99_ns,
                sk.sketch_p99_ns,
                sk.p99_drift(),
                sk.jobs_byte_identical
            ));
        }
        s.push_str("\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_on_the_synthetic_workload() {
        // engine_bench asserts (events, checksum) equality internally.
        // Events already queued when the budget hits still fire, so
        // the total lands within SOURCES of the budget.
        let b = engine_bench(20_000, 7);
        assert!(b.events >= 20_000 && b.events < 20_000 + SOURCES);
        assert!(b.heap_wall_s > 0.0 && b.calendar_wall_s > 0.0);
    }

    #[test]
    fn churn_is_seed_sensitive_and_deterministic() {
        assert_eq!(run_calendar(5_000, 3), run_calendar(5_000, 3));
        assert_ne!(run_calendar(5_000, 3).1, run_calendar(5_000, 4).1);
    }

    #[test]
    fn rtt_bench_collects_samples() {
        let r = measure_rtt(NetKind::Atm, 200, 20, 1);
        assert_eq!(r.net, "atm");
        assert_eq!(r.rtts, 20);
        assert!(r.sim_events > 0 && r.wall_s > 0.0);
    }

    #[test]
    fn report_serializes_every_section() {
        let report = BenchReport {
            series: BENCH_SERIES,
            quick: true,
            seed: 1,
            engine: engine_bench(20_000, 1),
            rtt: vec![measure_rtt(NetKind::Atm, 200, 10, 1)],
            sweeps: Vec::new(),
            sketch: None,
        };
        let json = report.to_json();
        for key in [
            "\"schema\": \"perfkit-bench-v1\"",
            "\"series\": 5",
            "\"speedup\"",
            "\"heap_events_per_sec\"",
            "\"calendar_events_per_sec\"",
            "\"rtts_per_sec\"",
            "\"sweeps\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Balanced braces: a cheap structural check without a parser.
        let open = json.matches(['{', '[']).count();
        let close = json.matches(['}', ']']).count();
        assert_eq!(open, close);
    }

    #[test]
    fn sketch_bench_meets_its_own_gates_at_small_scale() {
        let b = sketch_bench(40_000, 8, 42);
        assert_eq!(b.samples, 40_000);
        assert!(b.jobs_byte_identical, "jobs 1 vs 4 merges diverged");
        assert!(
            b.p99_drift() < 0.01,
            "sketch p99 {} vs exact {} drift {:.4}",
            b.sketch_p99_ns,
            b.exact_p99_ns,
            b.p99_drift()
        );
        assert!(b.memory_bytes <= simcap::MAX_MEMORY_BYTES);
    }

    #[test]
    fn report_serializes_the_sketch_section_when_present() {
        let report = BenchReport {
            series: BENCH_SERIES,
            quick: true,
            seed: 1,
            engine: engine_bench(20_000, 1),
            rtt: Vec::new(),
            sweeps: Vec::new(),
            sketch: Some(sketch_bench(4_000, 4, 7)),
        };
        let json = report.to_json();
        for key in ["\"sketch\":", "\"p99_drift\"", "\"jobs_byte_identical\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let open = json.matches(['{', '[']).count();
        let close = json.matches(['}', ']']).count();
        assert_eq!(open, close);
    }
}
