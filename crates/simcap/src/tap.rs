//! Tap points and capture buffers.
//!
//! A [`TapSet`] sits at a layer boundary (socket, TCP, NIC DMA, wire)
//! and records serialized frames with 40 ns-quantized virtual
//! timestamps. Following the `simkit::trace` convention, a tap that
//! is not armed costs one branch per potential record and allocates
//! nothing, so instrumented code paths are free in ordinary runs.
//!
//! Two retention modes ([`CaptureMode`]):
//!
//! - **Full** keeps every recorded frame — the right mode for short
//!   diagnostic runs and the capture/inline cross-check;
//! - **Flight** is a flight recorder: only the last `K` frames per
//!   tap are retained (older frames are evicted as new ones arrive),
//!   so memory stays bounded on arbitrarily long runs. When something
//!   anomalous fires a [`TriggerReason`] — an invariant violation, an
//!   RTO, a typed connection abort, a deadline overrun — the set
//!   freezes the retained window into a [`TriggerSnapshot`] that can
//!   be dumped as a pcapng file: the frames *around* the anomaly,
//!   without having captured the whole run.

use simkit::time::SimTime;

/// Where in the stack a frame was observed.
///
/// The first seven mirror the paper's kernel probe points (§2.2):
/// the socket-layer entry/exit, the TCP output/input boundary, the
/// driver DMA hand-off, and the wire itself. The two `Link*` points
/// are raw medium captures recorded inside the `atm` / `ether`
/// substrate crates (53-byte cells, Ethernet frames with FCS).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TapPoint {
    /// `sosend` entry: user data accepted into the socket buffer.
    SockSend,
    /// TCP output: a finished segment (TCP/IP header prepended),
    /// before IP-layer spend.
    TcpSend,
    /// Driver transmit: the datagram handed to the NIC, stamped when
    /// the device signals transmit completion.
    NicDmaTx,
    /// Wire arrival at the receiving NIC (datagram granularity; for
    /// ATM this is the arrival of the last cell of the datagram).
    Wire,
    /// Receive driver completion: the reassembled datagram as the
    /// driver enqueues it for the IP input queue.
    NicDmaRx,
    /// TCP input: the segment as `tcp_input` first sees it
    /// (header still attached).
    TcpRecv,
    /// `soreceive` return: user data leaving the socket buffer.
    SockRecv,
    /// Raw ATM cells (53 bytes) as they leave the fiber.
    LinkCell,
    /// Raw Ethernet frames (with FCS) as they leave the wire.
    LinkFrame,
}

impl TapPoint {
    /// All tap points, in stack order.
    pub const ALL: [TapPoint; 9] = [
        TapPoint::SockSend,
        TapPoint::TcpSend,
        TapPoint::NicDmaTx,
        TapPoint::Wire,
        TapPoint::NicDmaRx,
        TapPoint::TcpRecv,
        TapPoint::SockRecv,
        TapPoint::LinkCell,
        TapPoint::LinkFrame,
    ];

    /// Bit position in a [`TapSet`] mask.
    #[must_use]
    pub fn bit(self) -> u16 {
        1 << (self as u16)
    }

    /// Short stable name (used for capture file names).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TapPoint::SockSend => "sock_send",
            TapPoint::TcpSend => "tcp_send",
            TapPoint::NicDmaTx => "nic_dma_tx",
            TapPoint::Wire => "wire",
            TapPoint::NicDmaRx => "nic_dma_rx",
            TapPoint::TcpRecv => "tcp_recv",
            TapPoint::SockRecv => "sock_recv",
            TapPoint::LinkCell => "link_cell",
            TapPoint::LinkFrame => "link_frame",
        }
    }
}

/// One observed frame: tap point, 40 ns-quantized virtual time, bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CapturedFrame {
    /// Where the frame was observed.
    pub tap: TapPoint,
    /// When (quantized to the 40 ns TurboChannel clock on record).
    pub at: SimTime,
    /// The serialized frame exactly as the layer saw it.
    pub bytes: Vec<u8>,
}

/// How a [`TapSet`] retains recorded frames.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CaptureMode {
    /// Keep every frame (memory grows with the run).
    #[default]
    Full,
    /// Flight recorder: keep only the last `last_k` frames per tap;
    /// a [`TriggerReason`] freezes the window into a snapshot.
    Flight {
        /// Frames retained per tap point.
        last_k: usize,
    },
}

/// Why a flight-recorder snapshot was frozen — the taxonomy of
/// anomalies worth a capture window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TriggerReason {
    /// A runtime invariant checker reported a violation.
    Invariant,
    /// A retransmission timeout fired (slow-path recovery engaged).
    Rto,
    /// A connection was aborted (`ETIMEDOUT` at the retransmit
    /// limit — the typed abort path).
    Abort,
    /// A fan-out request ran past its deadline.
    DeadlineExceeded,
}

impl TriggerReason {
    /// Short stable name (used in snapshot dumps and logs).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TriggerReason::Invariant => "invariant",
            TriggerReason::Rto => "rto",
            TriggerReason::Abort => "abort",
            TriggerReason::DeadlineExceeded => "deadline_exceeded",
        }
    }
}

/// A frozen flight-recorder window: the frames the rings held when a
/// trigger fired, in observation order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TriggerSnapshot {
    /// What froze the window.
    pub reason: TriggerReason,
    /// When the trigger fired (quantized).
    pub at: SimTime,
    /// The retained frames around the anomaly.
    pub frames: Vec<CapturedFrame>,
}

impl TriggerSnapshot {
    /// Serializes the snapshot window as a pcapng capture with the
    /// given link type (same format as a full capture, just shorter).
    #[must_use]
    pub fn to_pcapng_bytes(&self, linktype: u32) -> Vec<u8> {
        let records: Vec<(u64, Vec<u8>)> = self
            .frames
            .iter()
            .map(|f| (f.at.as_ns(), f.bytes.clone()))
            .collect();
        crate::pcapng::to_pcapng_bytes(linktype, &records)
    }
}

/// Maximum snapshots a set retains; later triggers on an already
/// well-documented anomaly storm are dropped so a pathological run
/// cannot grow memory through its own failure reporting.
pub const MAX_TRIGGER_SNAPSHOTS: usize = 4;

/// A set of taps plus the frames they captured, in observation order.
///
/// Two gates must both be open for a record to happen: the tap point
/// must be in the configured `mask`, and the set must be `armed`.
/// Harnesses configure the mask up front and arm at measurement
/// start, mirroring how the span recorder skips warmup iterations.
#[derive(Clone, Debug, Default)]
pub struct TapSet {
    mask: u16,
    armed: bool,
    mode: CaptureMode,
    frames: Vec<CapturedFrame>,
    /// Per-tap retained-frame counts (flight mode eviction accounting).
    per_tap: [usize; TapPoint::ALL.len()],
    snapshots: Vec<TriggerSnapshot>,
}

impl TapSet {
    /// A set with no taps configured — every record is a single
    /// always-false branch (the zero-cost disabled state).
    #[must_use]
    pub fn off() -> Self {
        TapSet::default()
    }

    /// A set with every tap point configured (still needs arming).
    #[must_use]
    pub fn all() -> Self {
        TapSet {
            mask: u16::MAX,
            ..TapSet::default()
        }
    }

    /// A set with exactly the given tap points configured.
    #[must_use]
    pub fn only(points: &[TapPoint]) -> Self {
        TapSet {
            mask: points.iter().fold(0, |m, p| m | p.bit()),
            ..TapSet::default()
        }
    }

    /// A flight recorder over every tap point: at most `last_k`
    /// frames per tap are retained (`last_k` must be ≥ 1).
    #[must_use]
    pub fn flight(last_k: usize) -> Self {
        TapSet::all().in_flight_mode(last_k)
    }

    /// A flight recorder over exactly the given tap points.
    #[must_use]
    pub fn flight_only(points: &[TapPoint], last_k: usize) -> Self {
        TapSet::only(points).in_flight_mode(last_k)
    }

    /// Switches this set to flight mode with the given per-tap window.
    #[must_use]
    pub fn in_flight_mode(mut self, last_k: usize) -> Self {
        assert!(last_k >= 1, "a flight window needs at least one frame");
        self.mode = CaptureMode::Flight { last_k };
        self
    }

    /// This set's retention mode.
    #[must_use]
    pub fn mode(&self) -> CaptureMode {
        self.mode
    }

    /// Starts recording (idempotent).
    pub fn arm(&mut self) {
        self.armed = true;
    }

    /// Stops recording without discarding captured frames.
    pub fn disarm(&mut self) {
        self.armed = false;
    }

    /// Whether a record at `p` would be kept. Instrumented code uses
    /// this to skip serialization work when the tap is cold.
    #[inline]
    #[must_use]
    pub fn wants(&self, p: TapPoint) -> bool {
        self.armed && self.mask & p.bit() != 0
    }

    /// Records a frame if the tap is hot. The timestamp is quantized
    /// to the 40 ns clock, exactly like the paper's timestamp probes.
    /// In flight mode, the oldest frame of the same tap is evicted
    /// once the per-tap window is full.
    pub fn record(&mut self, p: TapPoint, at: SimTime, bytes: Vec<u8>) {
        if !self.wants(p) {
            return;
        }
        if let CaptureMode::Flight { last_k } = self.mode {
            let slot = p as usize;
            if self.per_tap[slot] >= last_k {
                // The retained window is small (≤ taps × K frames),
                // so a linear scan for the oldest same-tap frame is
                // cheap and keeps `frames` in observation order.
                if let Some(idx) = self.frames.iter().position(|f| f.tap == p) {
                    self.frames.remove(idx);
                    self.per_tap[slot] -= 1;
                }
            }
            self.per_tap[slot] += 1;
        }
        self.frames.push(CapturedFrame {
            tap: p,
            at: at.quantized(),
            bytes,
        });
    }

    /// Fires a flight-recorder trigger: freezes the currently
    /// retained window into a [`TriggerSnapshot`] (up to
    /// [`MAX_TRIGGER_SNAPSHOTS`] per set). A no-op in
    /// [`CaptureMode::Full`] — a full capture already keeps
    /// everything — and on an unarmed or empty set, so instrumented
    /// anomaly paths can call it unconditionally.
    pub fn trigger(&mut self, reason: TriggerReason, at: SimTime) {
        if !matches!(self.mode, CaptureMode::Flight { .. })
            || !self.armed
            || self.frames.is_empty()
            || self.snapshots.len() >= MAX_TRIGGER_SNAPSHOTS
        {
            return;
        }
        self.snapshots.push(TriggerSnapshot {
            reason,
            at: at.quantized(),
            frames: self.frames.clone(),
        });
    }

    /// Frozen trigger snapshots, in firing order.
    #[must_use]
    pub fn snapshots(&self) -> &[TriggerSnapshot] {
        &self.snapshots
    }

    /// Takes the frozen snapshots, leaving the set configured.
    pub fn take_snapshots(&mut self) -> Vec<TriggerSnapshot> {
        std::mem::take(&mut self.snapshots)
    }

    /// All captured frames in observation order.
    #[must_use]
    pub fn frames(&self) -> &[CapturedFrame] {
        &self.frames
    }

    /// Frames observed at one tap point, in order.
    pub fn at(&self, p: TapPoint) -> impl Iterator<Item = &CapturedFrame> {
        self.frames.iter().filter(move |f| f.tap == p)
    }

    /// Takes the captured frames, leaving the set configured.
    pub fn take(&mut self) -> Vec<CapturedFrame> {
        self.per_tap = [0; TapPoint::ALL.len()];
        std::mem::take(&mut self.frames)
    }

    /// Number of captured frames.
    #[must_use]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when nothing has been captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = TapSet::off();
        t.arm();
        assert!(!t.wants(TapPoint::Wire));
        t.record(TapPoint::Wire, SimTime::from_ns(123), vec![1, 2, 3]);
        assert!(t.is_empty());
    }

    #[test]
    fn unarmed_records_nothing() {
        let mut t = TapSet::all();
        assert!(!t.wants(TapPoint::Wire));
        t.record(TapPoint::Wire, SimTime::from_ns(123), vec![1, 2, 3]);
        assert!(t.is_empty());
    }

    #[test]
    fn flight_mode_bounds_retention_per_tap() {
        let mut t = TapSet::flight(3);
        t.arm();
        for i in 0..10u64 {
            t.record(TapPoint::Wire, SimTime::from_ns(i * 40), vec![i as u8]);
            t.record(
                TapPoint::TcpSend,
                SimTime::from_ns(i * 40 + 1),
                vec![i as u8],
            );
        }
        assert_eq!(t.at(TapPoint::Wire).count(), 3);
        assert_eq!(t.at(TapPoint::TcpSend).count(), 3);
        assert_eq!(t.len(), 6);
        // The *last* K frames survive, in observation order.
        let kept: Vec<u8> = t.at(TapPoint::Wire).map(|f| f.bytes[0]).collect();
        assert_eq!(kept, vec![7, 8, 9]);
    }

    #[test]
    fn trigger_freezes_the_window() {
        let mut t = TapSet::flight(2);
        t.arm();
        for i in 0..5u64 {
            t.record(TapPoint::Wire, SimTime::from_ns(i * 80), vec![i as u8]);
        }
        t.trigger(TriggerReason::Rto, SimTime::from_ns(400));
        // Later records do not disturb the frozen snapshot.
        t.record(TapPoint::Wire, SimTime::from_ns(999 * 40), vec![99]);
        assert_eq!(t.snapshots().len(), 1);
        let snap = &t.snapshots()[0];
        assert_eq!(snap.reason, TriggerReason::Rto);
        assert_eq!(snap.at, SimTime::from_ns(400));
        let seen: Vec<u8> = snap.frames.iter().map(|f| f.bytes[0]).collect();
        assert_eq!(seen, vec![3, 4]);
        // Snapshots serialize as a readable pcapng capture.
        let bytes = snap.to_pcapng_bytes(crate::pcap::LINKTYPE_USER0);
        let cap = crate::pcapng::read_pcapng(&bytes).unwrap();
        assert_eq!(cap.records.len(), 2);
    }

    #[test]
    fn trigger_is_inert_in_full_mode_and_caps_snapshots() {
        let mut full = TapSet::all();
        full.arm();
        full.record(TapPoint::Wire, SimTime::from_ns(0), vec![1]);
        full.trigger(TriggerReason::Abort, SimTime::from_ns(40));
        assert!(full.snapshots().is_empty());

        let mut t = TapSet::flight(1);
        t.arm();
        t.record(TapPoint::Wire, SimTime::from_ns(0), vec![1]);
        for _ in 0..(MAX_TRIGGER_SNAPSHOTS + 3) {
            t.trigger(TriggerReason::Invariant, SimTime::from_ns(40));
        }
        assert_eq!(t.snapshots().len(), MAX_TRIGGER_SNAPSHOTS);
    }

    #[test]
    fn armed_quantizes_timestamps() {
        let mut t = TapSet::only(&[TapPoint::TcpSend]);
        t.arm();
        t.record(TapPoint::TcpSend, SimTime::from_ns(123), vec![9]);
        t.record(TapPoint::Wire, SimTime::from_ns(200), vec![8]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.frames()[0].at, SimTime::from_ns(120));
        assert_eq!(t.at(TapPoint::TcpSend).count(), 1);
    }
}
