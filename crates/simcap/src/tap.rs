//! Tap points and capture buffers.
//!
//! A [`TapSet`] sits at a layer boundary (socket, TCP, NIC DMA, wire)
//! and records serialized frames with 40 ns-quantized virtual
//! timestamps. Following the `simkit::trace` convention, a tap that
//! is not armed costs one branch per potential record and allocates
//! nothing, so instrumented code paths are free in ordinary runs.

use simkit::time::SimTime;

/// Where in the stack a frame was observed.
///
/// The first seven mirror the paper's kernel probe points (§2.2):
/// the socket-layer entry/exit, the TCP output/input boundary, the
/// driver DMA hand-off, and the wire itself. The two `Link*` points
/// are raw medium captures recorded inside the `atm` / `ether`
/// substrate crates (53-byte cells, Ethernet frames with FCS).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TapPoint {
    /// `sosend` entry: user data accepted into the socket buffer.
    SockSend,
    /// TCP output: a finished segment (TCP/IP header prepended),
    /// before IP-layer spend.
    TcpSend,
    /// Driver transmit: the datagram handed to the NIC, stamped when
    /// the device signals transmit completion.
    NicDmaTx,
    /// Wire arrival at the receiving NIC (datagram granularity; for
    /// ATM this is the arrival of the last cell of the datagram).
    Wire,
    /// Receive driver completion: the reassembled datagram as the
    /// driver enqueues it for the IP input queue.
    NicDmaRx,
    /// TCP input: the segment as `tcp_input` first sees it
    /// (header still attached).
    TcpRecv,
    /// `soreceive` return: user data leaving the socket buffer.
    SockRecv,
    /// Raw ATM cells (53 bytes) as they leave the fiber.
    LinkCell,
    /// Raw Ethernet frames (with FCS) as they leave the wire.
    LinkFrame,
}

impl TapPoint {
    /// All tap points, in stack order.
    pub const ALL: [TapPoint; 9] = [
        TapPoint::SockSend,
        TapPoint::TcpSend,
        TapPoint::NicDmaTx,
        TapPoint::Wire,
        TapPoint::NicDmaRx,
        TapPoint::TcpRecv,
        TapPoint::SockRecv,
        TapPoint::LinkCell,
        TapPoint::LinkFrame,
    ];

    /// Bit position in a [`TapSet`] mask.
    #[must_use]
    pub fn bit(self) -> u16 {
        1 << (self as u16)
    }

    /// Short stable name (used for capture file names).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TapPoint::SockSend => "sock_send",
            TapPoint::TcpSend => "tcp_send",
            TapPoint::NicDmaTx => "nic_dma_tx",
            TapPoint::Wire => "wire",
            TapPoint::NicDmaRx => "nic_dma_rx",
            TapPoint::TcpRecv => "tcp_recv",
            TapPoint::SockRecv => "sock_recv",
            TapPoint::LinkCell => "link_cell",
            TapPoint::LinkFrame => "link_frame",
        }
    }
}

/// One observed frame: tap point, 40 ns-quantized virtual time, bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CapturedFrame {
    /// Where the frame was observed.
    pub tap: TapPoint,
    /// When (quantized to the 40 ns TurboChannel clock on record).
    pub at: SimTime,
    /// The serialized frame exactly as the layer saw it.
    pub bytes: Vec<u8>,
}

/// A set of taps plus the frames they captured, in observation order.
///
/// Two gates must both be open for a record to happen: the tap point
/// must be in the configured `mask`, and the set must be `armed`.
/// Harnesses configure the mask up front and arm at measurement
/// start, mirroring how the span recorder skips warmup iterations.
#[derive(Clone, Debug, Default)]
pub struct TapSet {
    mask: u16,
    armed: bool,
    frames: Vec<CapturedFrame>,
}

impl TapSet {
    /// A set with no taps configured — every record is a single
    /// always-false branch (the zero-cost disabled state).
    #[must_use]
    pub fn off() -> Self {
        TapSet::default()
    }

    /// A set with every tap point configured (still needs arming).
    #[must_use]
    pub fn all() -> Self {
        TapSet {
            mask: u16::MAX,
            armed: false,
            frames: Vec::new(),
        }
    }

    /// A set with exactly the given tap points configured.
    #[must_use]
    pub fn only(points: &[TapPoint]) -> Self {
        TapSet {
            mask: points.iter().fold(0, |m, p| m | p.bit()),
            armed: false,
            frames: Vec::new(),
        }
    }

    /// Starts recording (idempotent).
    pub fn arm(&mut self) {
        self.armed = true;
    }

    /// Stops recording without discarding captured frames.
    pub fn disarm(&mut self) {
        self.armed = false;
    }

    /// Whether a record at `p` would be kept. Instrumented code uses
    /// this to skip serialization work when the tap is cold.
    #[inline]
    #[must_use]
    pub fn wants(&self, p: TapPoint) -> bool {
        self.armed && self.mask & p.bit() != 0
    }

    /// Records a frame if the tap is hot. The timestamp is quantized
    /// to the 40 ns clock, exactly like the paper's timestamp probes.
    pub fn record(&mut self, p: TapPoint, at: SimTime, bytes: Vec<u8>) {
        if self.wants(p) {
            self.frames.push(CapturedFrame {
                tap: p,
                at: at.quantized(),
                bytes,
            });
        }
    }

    /// All captured frames in observation order.
    #[must_use]
    pub fn frames(&self) -> &[CapturedFrame] {
        &self.frames
    }

    /// Frames observed at one tap point, in order.
    pub fn at(&self, p: TapPoint) -> impl Iterator<Item = &CapturedFrame> {
        self.frames.iter().filter(move |f| f.tap == p)
    }

    /// Takes the captured frames, leaving the set configured.
    pub fn take(&mut self) -> Vec<CapturedFrame> {
        std::mem::take(&mut self.frames)
    }

    /// Number of captured frames.
    #[must_use]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when nothing has been captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = TapSet::off();
        t.arm();
        assert!(!t.wants(TapPoint::Wire));
        t.record(TapPoint::Wire, SimTime::from_ns(123), vec![1, 2, 3]);
        assert!(t.is_empty());
    }

    #[test]
    fn unarmed_records_nothing() {
        let mut t = TapSet::all();
        assert!(!t.wants(TapPoint::Wire));
        t.record(TapPoint::Wire, SimTime::from_ns(123), vec![1, 2, 3]);
        assert!(t.is_empty());
    }

    #[test]
    fn armed_quantizes_timestamps() {
        let mut t = TapSet::only(&[TapPoint::TcpSend]);
        t.arm();
        t.record(TapPoint::TcpSend, SimTime::from_ns(123), vec![9]);
        t.record(TapPoint::Wire, SimTime::from_ns(200), vec![8]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.frames()[0].at, SimTime::from_ns(120));
        assert_eq!(t.at(TapPoint::TcpSend).count(), 1);
    }
}
