//! `simcap` — packet capture and trace analysis for the simulated
//! stack.
//!
//! The paper obtained its latency decomposition by timestamping
//! packets at fixed kernel probe points; this crate gives the
//! simulator the equivalent observability layer, but stronger: taps
//! at the layer boundaries record the *serialized frames* with
//! 40 ns-quantized virtual timestamps, captures serialize to standard
//! pcap / pcapng (openable in tcpdump or Wireshark), and latency —
//! including tail percentiles — is re-derived *from the captures* by
//! RFC 1242-style same-packet matching. The result independently
//! cross-checks the inline span accounting (see
//! `latency_core::capture`).
//!
//! - [`tap`]: [`TapPoint`] / [`TapSet`] — zero-cost when disabled,
//!   deterministic, 40 ns-quantized;
//! - [`pcap`] / [`pcapng`]: dependency-free capture file I/O
//!   (nanosecond precision in both formats);
//! - [`packet`]: TCP segment identity extraction from raw-IP or
//!   Ethernet records;
//! - [`analyze`]: FIFO same-packet matching between two captures and
//!   min/median/p99/max + histogram reduction;
//! - [`sketch`] / [`recorder`]: the streaming observability layer —
//!   a mergeable log-linear quantile sketch with byte-deterministic
//!   integer merges, and the [`Recorder`] that unifies exact,
//!   sketched and trigger-only measurement behind one [`Quantiles`]
//!   read interface;
//! - the `capdiff` binary: the same analysis as a CLI over capture
//!   files.

#![warn(missing_docs)]

pub mod analyze;
pub mod estimator;
pub mod packet;
pub mod pcap;
pub mod pcapng;
pub mod recorder;
pub mod sketch;
pub mod tap;

pub use analyze::{hop_between, HopReport, LatencyDist, P999_MIN_SAMPLES};
#[allow(deprecated)]
pub use estimator::StreamingP95;
pub use packet::TcpKey;
pub use pcap::{CapError, Capture, PcapWriter, LINKTYPE_EN10MB, LINKTYPE_RAW, LINKTYPE_USER0};
pub use pcapng::{read_any, PcapngWriter};
pub use recorder::{Quantiles, Recorder, RecorderMode};
pub use sketch::{QuantileSketch, MAX_MEMORY_BYTES, RELATIVE_ERROR};
pub use tap::{CaptureMode, CapturedFrame, TapPoint, TapSet, TriggerReason, TriggerSnapshot};
