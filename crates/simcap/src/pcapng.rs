//! pcapng writer/reader with nanosecond timestamps, no external
//! dependencies.
//!
//! The writer emits one Section Header Block, one Interface
//! Description Block carrying `if_tsresol = 9` (nanosecond units),
//! and one Enhanced Packet Block per frame — the minimal well-formed
//! file Wireshark and tshark accept. The reader handles both byte
//! orders and any power-of-ten `if_tsresol`.

use crate::pcap::{CapError, Capture};
use std::io::{self, Write};

const SHB: u32 = 0x0a0d_0d0a;
const IDB: u32 = 0x0000_0001;
const EPB: u32 = 0x0000_0006;
const BYTE_ORDER_MAGIC: u32 = 0x1a2b_3c4d;

fn pad4(n: usize) -> usize {
    (4 - n % 4) % 4
}

fn write_block<W: Write>(w: &mut W, block_type: u32, body: &[u8]) -> io::Result<()> {
    let total = u32::try_from(12 + body.len() + pad4(body.len()))
        .map_err(|_| io::Error::other("block longer than u32"))?;
    w.write_all(&block_type.to_le_bytes())?;
    w.write_all(&total.to_le_bytes())?;
    w.write_all(body)?;
    w.write_all(&[0u8; 3][..pad4(body.len())])?;
    w.write_all(&total.to_le_bytes())?;
    Ok(())
}

/// Streaming pcapng writer (nanosecond timestamps).
pub struct PcapngWriter<W: Write> {
    w: W,
}

impl<W: Write> PcapngWriter<W> {
    /// Writes the SHB + IDB preamble and returns a writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(mut w: W, linktype: u32) -> io::Result<Self> {
        // Section Header Block.
        let mut body = Vec::new();
        body.extend_from_slice(&BYTE_ORDER_MAGIC.to_le_bytes());
        body.extend_from_slice(&1u16.to_le_bytes()); // major
        body.extend_from_slice(&0u16.to_le_bytes()); // minor
        body.extend_from_slice(&(-1i64).to_le_bytes()); // section length
        write_block(&mut w, SHB, &body)?;

        // Interface Description Block with if_tsresol = 9 (ns).
        let linktype16 =
            u16::try_from(linktype).map_err(|_| io::Error::other("linktype out of range"))?;
        let mut body = Vec::new();
        body.extend_from_slice(&linktype16.to_le_bytes());
        body.extend_from_slice(&0u16.to_le_bytes()); // reserved
        body.extend_from_slice(&65535u32.to_le_bytes()); // snaplen
        body.extend_from_slice(&9u16.to_le_bytes()); // option: if_tsresol
        body.extend_from_slice(&1u16.to_le_bytes()); // length 1
        body.extend_from_slice(&[9, 0, 0, 0]); // value 9, padded
        body.extend_from_slice(&0u32.to_le_bytes()); // opt_endofopt
        write_block(&mut w, IDB, &body)?;
        Ok(PcapngWriter { w })
    }

    /// Appends one Enhanced Packet Block stamped at `ns` nanoseconds.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_record(&mut self, ns: u64, bytes: &[u8]) -> io::Result<()> {
        let len =
            u32::try_from(bytes.len()).map_err(|_| io::Error::other("frame longer than u32"))?;
        let mut body = Vec::with_capacity(20 + bytes.len());
        body.extend_from_slice(&0u32.to_le_bytes()); // interface 0
        #[allow(clippy::cast_possible_truncation)]
        body.extend_from_slice(&((ns >> 32) as u32).to_le_bytes());
        #[allow(clippy::cast_possible_truncation)]
        body.extend_from_slice(&(ns as u32).to_le_bytes());
        body.extend_from_slice(&len.to_le_bytes()); // captured
        body.extend_from_slice(&len.to_le_bytes()); // original
        body.extend_from_slice(bytes);
        body.extend_from_slice(&[0u8; 3][..pad4(bytes.len())]);
        write_block(&mut self.w, EPB, &body)
    }

    /// Unwraps the underlying writer.
    pub fn into_inner(self) -> W {
        self.w
    }
}

/// Serializes a whole capture to pcapng bytes.
///
/// # Panics
///
/// Panics only if `linktype` exceeds `u16` — writing to a `Vec` is
/// otherwise infallible.
#[must_use]
pub fn to_pcapng_bytes(linktype: u32, records: &[(u64, Vec<u8>)]) -> Vec<u8> {
    let mut w = PcapngWriter::new(Vec::new(), linktype).expect("vec write");
    for (ns, bytes) in records {
        w.write_record(*ns, bytes).expect("vec write");
    }
    w.into_inner()
}

fn rd_u16(b: &[u8], at: usize, be: bool) -> Result<u16, CapError> {
    let s: [u8; 2] = b
        .get(at..at + 2)
        .ok_or(CapError::Truncated)?
        .try_into()
        .unwrap();
    Ok(if be {
        u16::from_be_bytes(s)
    } else {
        u16::from_le_bytes(s)
    })
}

fn rd_u32(b: &[u8], at: usize, be: bool) -> Result<u32, CapError> {
    let s: [u8; 4] = b
        .get(at..at + 4)
        .ok_or(CapError::Truncated)?
        .try_into()
        .unwrap();
    Ok(if be {
        u32::from_be_bytes(s)
    } else {
        u32::from_le_bytes(s)
    })
}

/// Converts a timestamp in `10^-resol` second units to nanoseconds.
fn to_ns(ts: u64, resol: u8) -> Result<u64, CapError> {
    if resol & 0x80 != 0 {
        return Err(CapError::Format("power-of-two if_tsresol unsupported"));
    }
    match 9i32 - i32::from(resol) {
        d if d >= 0 => Ok(ts * 10u64.pow(u32::try_from(d).unwrap())),
        d => Ok(ts / 10u64.pow(u32::try_from(-d).unwrap())),
    }
}

/// Parses a pcapng file (single interface; either byte order).
///
/// # Errors
///
/// Returns [`CapError`] on truncation or malformed blocks.
pub fn read_pcapng(data: &[u8]) -> Result<Capture, CapError> {
    let mut pos = 0usize;
    let mut be = false;
    let mut linktype: Option<u32> = None;
    let mut tsresol: u8 = 6; // pcapng default is microseconds
    let mut records = Vec::new();
    let mut saw_shb = false;
    while pos + 12 <= data.len() {
        // Block type is endian-sensitive except for SHB, whose value
        // is a palindrome-by-design; detect SHB first.
        let raw_type = rd_u32(data, pos, false)?;
        let is_shb = raw_type == SHB;
        if is_shb {
            let bom = rd_u32(data, pos + 8, false)?;
            be = match bom {
                BYTE_ORDER_MAGIC => false,
                _ if bom.swap_bytes() == BYTE_ORDER_MAGIC => true,
                _ => return Err(CapError::BadMagic(bom)),
            };
            saw_shb = true;
        } else if !saw_shb {
            return Err(CapError::Format("pcapng must start with an SHB"));
        }
        let block_type = rd_u32(data, pos, be)?;
        let total = rd_u32(data, pos + 4, be)? as usize;
        if total < 12 || !total.is_multiple_of(4) || pos + total > data.len() {
            return Err(CapError::Truncated);
        }
        let body = &data[pos + 8..pos + total - 4];
        match block_type {
            b if b == IDB => {
                linktype = Some(u32::from(rd_u16(body, 0, be)?));
                // Walk options looking for if_tsresol (code 9).
                let mut o = 8usize;
                while o + 4 <= body.len() {
                    let code = rd_u16(body, o, be)?;
                    let olen = rd_u16(body, o + 2, be)? as usize;
                    if code == 0 {
                        break;
                    }
                    if code == 9 && olen >= 1 {
                        tsresol = body[o + 4];
                    }
                    o += 4 + olen + pad4(olen);
                }
            }
            b if b == EPB => {
                let hi = u64::from(rd_u32(body, 4, be)?);
                let lo = u64::from(rd_u32(body, 8, be)?);
                let cap_len = rd_u32(body, 12, be)? as usize;
                let bytes = body.get(20..20 + cap_len).ok_or(CapError::Truncated)?;
                records.push((to_ns((hi << 32) | lo, tsresol)?, bytes.to_vec()));
            }
            _ => {} // SHB / unknown blocks: skip
        }
        pos += total;
    }
    Ok(Capture {
        linktype: linktype.ok_or(CapError::Format("pcapng has no interface block"))?,
        records,
    })
}

/// True when `data` looks like a pcapng file (SHB leading).
#[must_use]
pub fn is_pcapng(data: &[u8]) -> bool {
    data.len() >= 4 && u32::from_le_bytes(data[0..4].try_into().unwrap()) == SHB
}

/// Reads either format, sniffing the leading block/magic.
///
/// # Errors
///
/// Returns [`CapError`] when the bytes parse as neither format.
pub fn read_any(data: &[u8]) -> Result<Capture, CapError> {
    if is_pcapng(data) {
        read_pcapng(data)
    } else {
        crate::pcap::read_pcap(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcap::LINKTYPE_RAW;

    #[test]
    fn roundtrip_ns() {
        let recs = vec![
            (123_456_789_000u64, vec![0x45, 0, 0, 20]),
            (123_456_789_040, vec![]),
            (u64::from(u32::MAX) * 2_000_000_000, vec![7; 53]),
        ];
        let bytes = to_pcapng_bytes(LINKTYPE_RAW, &recs);
        let cap = read_pcapng(&bytes).unwrap();
        assert_eq!(cap.linktype, LINKTYPE_RAW);
        assert_eq!(cap.records, recs);
    }

    #[test]
    fn sniffs_both_formats() {
        let recs = vec![(40u64, vec![1, 2, 3])];
        let ng = to_pcapng_bytes(LINKTYPE_RAW, &recs);
        let classic = crate::pcap::to_pcap_bytes(LINKTYPE_RAW, &recs);
        assert!(is_pcapng(&ng));
        assert!(!is_pcapng(&classic));
        assert_eq!(read_any(&ng).unwrap().records, recs);
        assert_eq!(read_any(&classic).unwrap().records, recs);
    }

    #[test]
    fn default_tsresol_is_microseconds() {
        // Build an IDB without the if_tsresol option.
        let mut f = Vec::new();
        let mut shb = Vec::new();
        shb.extend_from_slice(&BYTE_ORDER_MAGIC.to_le_bytes());
        shb.extend_from_slice(&1u16.to_le_bytes());
        shb.extend_from_slice(&0u16.to_le_bytes());
        shb.extend_from_slice(&(-1i64).to_le_bytes());
        write_block(&mut f, SHB, &shb).unwrap();
        let mut idb = Vec::new();
        idb.extend_from_slice(&101u16.to_le_bytes());
        idb.extend_from_slice(&0u16.to_le_bytes());
        idb.extend_from_slice(&65535u32.to_le_bytes());
        write_block(&mut f, IDB, &idb).unwrap();
        let mut epb = Vec::new();
        epb.extend_from_slice(&0u32.to_le_bytes());
        epb.extend_from_slice(&0u32.to_le_bytes());
        epb.extend_from_slice(&7u32.to_le_bytes()); // 7 µs
        epb.extend_from_slice(&1u32.to_le_bytes());
        epb.extend_from_slice(&1u32.to_le_bytes());
        epb.extend_from_slice(&[0xcc, 0, 0, 0]);
        write_block(&mut f, EPB, &epb).unwrap();
        let cap = read_pcapng(&f).unwrap();
        assert_eq!(cap.records, vec![(7000u64, vec![0xcc])]);
    }
}
