//! Mergeable quantile sketch: HDR-histogram-style log-linear buckets.
//!
//! [`QuantileSketch`] trades exact sample retention for a fixed-size
//! bucket array: every nanosecond value lands in a bucket whose width
//! is at most `2^-SUB_BITS` of its magnitude, so any reported quantile
//! is within a documented relative error of the exact nearest-rank
//! value — while memory stays bounded (≤ [`MAX_MEMORY_BYTES`]) no
//! matter how many samples arrive.
//!
//! Determinism is load-bearing here (the sweep runner promises
//! byte-identical reports at any `--jobs`):
//!
//! - **No floats touch the merge path.** Observation maps a value to a
//!   bucket index with shifts and compares; merging adds `u64` counts
//!   element-wise and folds exact integer aggregates (count, min, max,
//!   `i128` sum, saturating `u128` sum of squares). Integer addition
//!   is associative and commutative, and saturating addition of
//!   non-negative integers is too (`min(total, MAX)` regardless of
//!   grouping), so *any* merge order yields the same sketch.
//! - **Queries are a pure function of the sketch.** Two sketches with
//!   equal buckets and aggregates answer every quantile identically.
//!
//! Together: per-shard sketches merged in deterministic grid order
//! (what `sweep::pool::run_ordered` provides) produce byte-identical
//! output at `--jobs 1` and `--jobs N` — and, stronger, at any order.

/// Sub-bucket resolution: each power-of-two range is split into
/// `2^SUB_BITS` linear sub-buckets, so bucket width ≤ `2^-SUB_BITS`
/// of the value's magnitude.
pub const SUB_BITS: u32 = 8;

/// Number of exact unit-width buckets at the bottom of the scale
/// (values `0..SUB_COUNT` are recorded exactly).
pub const SUB_COUNT: u64 = 1 << SUB_BITS;

const HALF: u64 = SUB_COUNT / 2;

/// Worst-case sub-bucket count for the full `i64` magnitude range
/// (including `|i64::MIN| == 2^63` on the negative side): `SUB_COUNT`
/// exact buckets plus `HALF` per remaining octave.
const MAX_BUCKETS: usize = (SUB_COUNT + (64 - SUB_BITS as u64) * HALF) as usize;

/// Upper bound on one sketch's bucket storage (both signs fully
/// populated), excluding the struct header. The dense count vectors
/// grow on demand, so typical sketches are far smaller.
pub const MAX_MEMORY_BYTES: usize = 2 * MAX_BUCKETS * 8;

/// Documented relative-error bound of any reported quantile: the
/// bucket midpoint is within `±2^-SUB_BITS` of every sample the
/// bucket holds (see [`QuantileSketch::percentile_ns`]).
#[allow(clippy::cast_precision_loss)]
pub const RELATIVE_ERROR: f64 = 1.0 / SUB_COUNT as f64;

/// A mergeable log-linear quantile sketch over signed nanosecond
/// samples.
///
/// Positive magnitudes and negative magnitudes each get a dense,
/// grow-on-demand count vector; zero lives in the positive vector's
/// first bucket. Count, min, max, sum and sum-of-squares are tracked
/// exactly in integers, so `count`/`min_ns`/`max_ns`/`mean_us` are
/// exact and only interior quantiles are approximate.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QuantileSketch {
    /// Counts for samples ≥ 0, indexed by [`bucket_index`].
    pos: Vec<u64>,
    /// Counts for samples < 0, indexed by [`bucket_index`] of the
    /// magnitude.
    neg: Vec<u64>,
    count: u64,
    min: i64,
    max: i64,
    sum: i128,
    /// Saturating sum of squared samples (ns²); saturation is sticky
    /// and order-independent, and in practice unreachable (10⁹ samples
    /// of 10 s each stay below `u128::MAX`).
    sum_sq: u128,
}

/// Maps a magnitude to its bucket index: exact below [`SUB_COUNT`],
/// log-linear above (top `SUB_BITS` significant bits, i.e. `HALF`
/// sub-buckets per octave).
#[inline]
#[must_use]
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT {
        #[allow(clippy::cast_possible_truncation)]
        return v as usize;
    }
    let bits = 64 - v.leading_zeros(); // > SUB_BITS here
    let e = bits - SUB_BITS;
    let m = v >> e; // in [HALF*2 / 2, SUB_COUNT) == [HALF, SUB_COUNT)
    #[allow(clippy::cast_possible_truncation)]
    {
        (SUB_COUNT + (u64::from(e) - 1) * HALF + (m - HALF)) as usize
    }
}

/// Inverse of [`bucket_index`]: the inclusive `(lo, hi)` magnitude
/// range of a bucket.
#[must_use]
fn bucket_bounds(index: usize) -> (u64, u64) {
    let index = index as u64;
    if index < SUB_COUNT {
        return (index, index);
    }
    let e = (index - SUB_COUNT) / HALF + 1;
    let m = HALF + (index - SUB_COUNT) % HALF;
    let lo = m << e;
    let hi = ((m + 1) << e) - 1;
    (lo, hi)
}

/// The representative magnitude reported for a bucket: its midpoint.
/// Exact buckets report the value itself; log-linear buckets are off
/// by at most half the bucket width, i.e. `2^-SUB_BITS` of the
/// magnitude ([`RELATIVE_ERROR`]).
#[must_use]
fn bucket_rep(index: usize) -> u64 {
    let (lo, hi) = bucket_bounds(index);
    lo + (hi - lo) / 2
}

impl QuantileSketch {
    /// An empty sketch.
    #[must_use]
    pub fn new() -> Self {
        QuantileSketch::default()
    }

    /// Records one signed nanosecond sample.
    pub fn observe_ns(&mut self, ns: i64) {
        let idx = bucket_index(ns.unsigned_abs());
        let side = if ns < 0 { &mut self.neg } else { &mut self.pos };
        if side.len() <= idx {
            side.resize(idx + 1, 0);
        }
        side[idx] += 1;
        if self.count == 0 {
            self.min = ns;
            self.max = ns;
        } else {
            self.min = self.min.min(ns);
            self.max = self.max.max(ns);
        }
        self.count += 1;
        self.sum += i128::from(ns);
        self.sum_sq = self
            .sum_sq
            .saturating_add(u128::from(ns.unsigned_abs()) * u128::from(ns.unsigned_abs()));
    }

    /// Merges `other` into `self`. Pure integer arithmetic: the result
    /// is independent of merge order and grouping.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        if self.pos.len() < other.pos.len() {
            self.pos.resize(other.pos.len(), 0);
        }
        for (dst, src) in self.pos.iter_mut().zip(&other.pos) {
            *dst += *src;
        }
        if self.neg.len() < other.neg.len() {
            self.neg.resize(other.neg.len(), 0);
        }
        for (dst, src) in self.neg.iter_mut().zip(&other.neg) {
            *dst += *src;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq = self.sum_sq.saturating_add(other.sum_sq);
    }

    /// Number of samples recorded (exact).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample (exact), `None` when empty.
    #[must_use]
    pub fn min_ns(&self) -> Option<i64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (exact), `None` when empty.
    #[must_use]
    pub fn max_ns(&self) -> Option<i64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all samples in ns (exact).
    #[must_use]
    pub fn sum_ns(&self) -> i128 {
        self.sum
    }

    /// Mean in µs (exact integer sum, one float division at the end).
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.sum as f64 / self.count as f64 / 1000.0
        }
    }

    /// Population standard deviation in µs, from the exact integer
    /// sum and (saturating) sum of squares.
    #[must_use]
    pub fn stddev_us(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            let n = self.count as f64;
            let mean_ns = self.sum as f64 / n;
            let var = (self.sum_sq as f64 / n - mean_ns * mean_ns).max(0.0);
            var.sqrt() / 1000.0
        }
    }

    /// Nearest-rank percentile in ns, `None` when empty.
    ///
    /// Same rank convention as `LatencyDist::percentile_ns` (clamping
    /// and the 1e-9 guard band included); the returned value is the
    /// midpoint of the bucket holding the ranked sample, clamped into
    /// `[min, max]`, so it differs from the exact nearest-rank sample
    /// by at most [`RELATIVE_ERROR`] of its magnitude.
    #[must_use]
    pub fn percentile_ns(&self, p: f64) -> Option<i64> {
        if self.count == 0 {
            return None;
        }
        if p.is_nan() || p <= 0.0 {
            return Some(self.min);
        }
        if p >= 100.0 {
            return Some(self.max);
        }
        #[allow(
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss,
            clippy::cast_precision_loss
        )]
        let rank = (((p / 100.0 * self.count as f64 - 1e-9).ceil()) as u64).clamp(1, self.count);
        Some(self.value_at_rank(rank))
    }

    /// The representative value of the bucket holding the `rank`-th
    /// smallest sample (1-based), clamped to the exact `[min, max]`.
    fn value_at_rank(&self, rank: u64) -> i64 {
        debug_assert!(rank >= 1 && rank <= self.count);
        let mut seen = 0u64;
        // Negative magnitudes in descending magnitude order == ascending value.
        for idx in (0..self.neg.len()).rev() {
            let c = self.neg[idx];
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                #[allow(clippy::cast_possible_wrap)]
                let v = -(bucket_rep(idx).min(i64::MAX as u64) as i64);
                return v.clamp(self.min, self.max);
            }
        }
        for (idx, &c) in self.pos.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                #[allow(clippy::cast_possible_wrap)]
                let v = bucket_rep(idx).min(i64::MAX as u64) as i64;
                return v.clamp(self.min, self.max);
            }
        }
        // Counts always sum to `count`; unreachable for valid ranks.
        self.max
    }

    /// Bytes held by the bucket storage plus the struct header. The
    /// bound callers can rely on is `MAX_MEMORY_BYTES +
    /// size_of::<QuantileSketch>()`.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<QuantileSketch>() + (self.pos.capacity() + self.neg.capacity()) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_exact_below_sub_count() {
        for v in 0..SUB_COUNT {
            let idx = bucket_index(v);
            assert_eq!(bucket_bounds(idx), (v, v));
            assert_eq!(bucket_rep(idx), v);
        }
    }

    #[test]
    fn bucket_bounds_cover_and_order() {
        // Indexes are monotone in value and bounds tile the range.
        let mut prev_idx = 0;
        for v in [
            0u64,
            1,
            SUB_COUNT - 1,
            SUB_COUNT,
            SUB_COUNT + 1,
            1000,
            65_535,
            65_536,
            u64::from(u32::MAX),
            1 << 40,
            i64::MAX as u64,
        ] {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "v={v} idx={idx} lo={lo} hi={hi}");
            assert!(idx >= prev_idx, "indexes must be monotone");
            assert!(idx < MAX_BUCKETS);
            prev_idx = idx;
        }
    }

    #[test]
    fn relative_error_bound_holds_per_bucket() {
        for v in [300u64, 1_000, 123_456, 987_654_321, 1 << 50] {
            let rep = bucket_rep(bucket_index(v));
            let err = rep.abs_diff(v) as f64 / v as f64;
            assert!(err <= RELATIVE_ERROR, "v={v} rep={rep} err={err}");
        }
    }

    #[test]
    fn exact_aggregates_and_percentiles() {
        let mut s = QuantileSketch::new();
        for v in [10i64, 20, 30, 40, 50] {
            s.observe_ns(v);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.min_ns(), Some(10));
        assert_eq!(s.max_ns(), Some(50));
        assert_eq!(s.sum_ns(), 150);
        assert!((s.mean_us() - 0.030).abs() < 1e-12);
        // Values below SUB_COUNT are exact.
        assert_eq!(s.percentile_ns(50.0), Some(30));
        assert_eq!(s.percentile_ns(100.0), Some(50));
        assert_eq!(s.percentile_ns(0.0), Some(10));
        assert_eq!(QuantileSketch::new().percentile_ns(50.0), None);
    }

    #[test]
    fn negatives_sort_before_positives() {
        let mut s = QuantileSketch::new();
        for v in [-300i64, -5, 0, 7, 900] {
            s.observe_ns(v);
        }
        assert_eq!(s.min_ns(), Some(-300));
        assert_eq!(s.max_ns(), Some(900));
        // Rank 1 = most negative; small magnitudes exact.
        assert_eq!(s.percentile_ns(1.0), Some(-300));
        assert_eq!(s.percentile_ns(40.0), Some(-5));
        assert_eq!(s.percentile_ns(60.0), Some(0));
    }

    #[test]
    fn merge_matches_single_stream() {
        let mut all = QuantileSketch::new();
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for i in 0..1000i64 {
            let v = (i * 7919) % 100_000 - 50; // a few negatives
            all.observe_ns(v);
            if i % 2 == 0 {
                a.observe_ns(v);
            } else {
                b.observe_ns(v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, all);
        assert_eq!(ba, all);
    }

    #[test]
    fn memory_stays_bounded() {
        let mut s = QuantileSketch::new();
        let mut x = 1u64;
        for _ in 0..1_000_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            #[allow(clippy::cast_possible_wrap)]
            s.observe_ns((x >> 1) as i64);
        }
        assert_eq!(s.count(), 1_000_000);
        assert!(
            s.memory_bytes() <= MAX_MEMORY_BYTES + std::mem::size_of::<QuantileSketch>(),
            "memory {} over bound {}",
            s.memory_bytes(),
            MAX_MEMORY_BYTES
        );
    }
}
