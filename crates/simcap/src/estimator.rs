//! Streaming quantile estimation for online latency tracking.
//!
//! The tail-tolerance layer needs a running upper-quantile estimate
//! (hedge after "the p95 of completions so far") without retaining a
//! sample buffer per client. [`StreamingP95`] is a deterministic O(1)
//! asymmetric-step tracker in the spirit of the Frugal sketches
//! (Ma, Muthukrishnan & Sandler 2013), made RNG-free so that feeding
//! it never perturbs a simulation's random streams: moves toward a
//! larger sample are 16× the size of moves toward a smaller one, so
//! the estimate settles near the point that ~1 in 16 samples exceeds
//! (≈ p94), biased high on heavy-tailed inputs — exactly the side a
//! hedging trigger wants to err on.

use simkit::time::SimTime;

/// Deterministic streaming upper-quantile (≈ p95) tracker.
///
/// Integer arithmetic over nanoseconds; the first sample seeds the
/// estimate, then each sample nudges it: up by an eighth of the gap
/// when the sample is above, down by a 128th when below. The estimate
/// is a pure function of the observation sequence — no RNG, no
/// allocation — so it is byte-reproducible at any sweep worker count.
#[deprecated(
    since = "0.2.0",
    note = "use simcap::Recorder::upper_only() — the same update rule \
            behind the unified Recorder API (upper_estimate())"
)]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamingP95 {
    est_ns: Option<u64>,
    samples: u64,
}

#[allow(deprecated)]
impl StreamingP95 {
    /// An empty tracker.
    #[must_use]
    pub fn new() -> Self {
        StreamingP95::default()
    }

    /// Feeds one completion sample.
    pub fn observe(&mut self, sample: SimTime) {
        let t = sample.as_ns();
        self.samples += 1;
        match self.est_ns {
            None => self.est_ns = Some(t),
            Some(est) if t > est => {
                // Move up fast: overshoot only costs an early hedge.
                self.est_ns = Some(est + (t - est) / 8);
            }
            Some(est) => {
                // Decay slowly so one fast reply cannot collapse the
                // estimate below the bulk of the distribution.
                self.est_ns = Some(est - (est - t) / 128);
            }
        }
    }

    /// The current estimate, `None` until the first sample lands.
    #[must_use]
    pub fn estimate(&self) -> Option<SimTime> {
        self.est_ns.map(SimTime::from_ns)
    }

    /// Samples observed so far.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_has_no_estimate() {
        let t = StreamingP95::new();
        assert_eq!(t.estimate(), None);
        assert_eq!(t.samples(), 0);
    }

    #[test]
    fn first_sample_seeds_the_estimate() {
        let mut t = StreamingP95::new();
        t.observe(SimTime::from_us(100));
        assert_eq!(t.estimate(), Some(SimTime::from_us(100)));
    }

    #[test]
    fn estimate_settles_in_the_upper_tail() {
        // 19 of 20 samples at 100 µs, 1 of 20 at 1 ms, repeated: the
        // estimate must end up well above the median and below the
        // outlier.
        let mut t = StreamingP95::new();
        for _ in 0..200 {
            for _ in 0..19 {
                t.observe(SimTime::from_us(100));
            }
            t.observe(SimTime::from_us(1000));
        }
        let est = t.estimate().unwrap().as_us_f64();
        assert!(est > 150.0, "collapsed to the bulk: {est}");
        assert!(est < 1000.0, "stuck at the outlier: {est}");
        assert_eq!(t.samples(), 4000);
    }

    #[test]
    fn constant_input_is_a_fixed_point() {
        let mut t = StreamingP95::new();
        for _ in 0..100 {
            t.observe(SimTime::from_us(42));
        }
        assert_eq!(t.estimate(), Some(SimTime::from_us(42)));
    }

    #[test]
    fn tracker_is_deterministic() {
        let feed = |n: u64| {
            let mut t = StreamingP95::new();
            for i in 0..n {
                t.observe(SimTime::from_ns(100_000 + (i * 37) % 5000));
            }
            t
        };
        assert_eq!(feed(500), feed(500));
    }
}
