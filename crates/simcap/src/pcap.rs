//! Classic pcap writer/reader, no external dependencies.
//!
//! Writes the nanosecond-precision variant (magic `0xa1b23c4d`) by
//! default so the simulator's 40 ns clock survives; reads both the
//! nanosecond and classic microsecond variants in either byte order.
//! Files open in standard tools (tcpdump, Wireshark, tshark).

use std::io::{self, Write};

/// Raw IPv4 on the wire (no link framing) — our TCP/IP taps.
pub const LINKTYPE_RAW: u32 = 101;
/// Ethernet (used for `ether` wire and frame taps).
pub const LINKTYPE_EN10MB: u32 = 1;
/// User-defined: 53-byte ATM cells from the fiber tap.
pub const LINKTYPE_USER0: u32 = 147;

/// Nanosecond-precision pcap magic.
pub const MAGIC_NS: u32 = 0xa1b2_3c4d;
/// Classic microsecond pcap magic.
pub const MAGIC_US: u32 = 0xa1b2_c3d4;

/// Errors from parsing a capture file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CapError {
    /// The file ends mid-structure.
    Truncated,
    /// Unrecognized file magic.
    BadMagic(u32),
    /// Structurally invalid content.
    Format(&'static str),
}

impl std::fmt::Display for CapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CapError::Truncated => write!(f, "capture file truncated"),
            CapError::BadMagic(m) => write!(f, "unrecognized capture magic {m:#010x}"),
            CapError::Format(s) => write!(f, "malformed capture: {s}"),
        }
    }
}

impl std::error::Error for CapError {}

/// An in-memory capture: link type plus `(timestamp_ns, bytes)`
/// records in file order. Both the pcap and pcapng readers produce
/// this, normalizing timestamps to nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Capture {
    /// pcap link type of every record.
    pub linktype: u32,
    /// Records in file order: (nanoseconds, frame bytes).
    pub records: Vec<(u64, Vec<u8>)>,
}

/// Streaming pcap writer.
pub struct PcapWriter<W: Write> {
    w: W,
}

impl<W: Write> PcapWriter<W> {
    /// Writes the file header (nanosecond magic) and returns a writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(mut w: W, linktype: u32) -> io::Result<Self> {
        w.write_all(&MAGIC_NS.to_le_bytes())?;
        w.write_all(&2u16.to_le_bytes())?; // version major
        w.write_all(&4u16.to_le_bytes())?; // version minor
        w.write_all(&0i32.to_le_bytes())?; // thiszone
        w.write_all(&0u32.to_le_bytes())?; // sigfigs
        w.write_all(&65535u32.to_le_bytes())?; // snaplen
        w.write_all(&linktype.to_le_bytes())?;
        Ok(PcapWriter { w })
    }

    /// Appends one record stamped at `ns` nanoseconds of virtual time.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_record(&mut self, ns: u64, bytes: &[u8]) -> io::Result<()> {
        let (sec, nsec) = (ns / 1_000_000_000, ns % 1_000_000_000);
        let len =
            u32::try_from(bytes.len()).map_err(|_| io::Error::other("frame longer than u32"))?;
        #[allow(clippy::cast_possible_truncation)]
        self.w.write_all(&(sec as u32).to_le_bytes())?;
        #[allow(clippy::cast_possible_truncation)]
        self.w.write_all(&(nsec as u32).to_le_bytes())?;
        self.w.write_all(&len.to_le_bytes())?; // incl_len
        self.w.write_all(&len.to_le_bytes())?; // orig_len
        self.w.write_all(bytes)?;
        Ok(())
    }

    /// Unwraps the underlying writer.
    pub fn into_inner(self) -> W {
        self.w
    }
}

/// Serializes a whole capture to classic (nanosecond) pcap bytes.
///
/// # Panics
///
/// Never panics: writing to a `Vec` is infallible.
#[must_use]
pub fn to_pcap_bytes(linktype: u32, records: &[(u64, Vec<u8>)]) -> Vec<u8> {
    let mut w = PcapWriter::new(Vec::new(), linktype).expect("vec write");
    for (ns, bytes) in records {
        w.write_record(*ns, bytes).expect("vec write");
    }
    w.into_inner()
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    big_endian: bool,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], CapError> {
        if self.pos + n > self.buf.len() {
            return Err(CapError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, CapError> {
        let b: [u8; 2] = self.bytes(2)?.try_into().unwrap();
        Ok(if self.big_endian {
            u16::from_be_bytes(b)
        } else {
            u16::from_le_bytes(b)
        })
    }

    fn u32(&mut self) -> Result<u32, CapError> {
        let b: [u8; 4] = self.bytes(4)?.try_into().unwrap();
        Ok(if self.big_endian {
            u32::from_be_bytes(b)
        } else {
            u32::from_le_bytes(b)
        })
    }

    fn done(&self) -> bool {
        self.pos >= self.buf.len()
    }
}

/// Parses a classic pcap file (either precision, either byte order).
///
/// # Errors
///
/// Returns [`CapError`] on truncation or an unknown magic.
pub fn read_pcap(data: &[u8]) -> Result<Capture, CapError> {
    if data.len() < 24 {
        return Err(CapError::Truncated);
    }
    let magic_le = u32::from_le_bytes(data[0..4].try_into().unwrap());
    let magic_be = u32::from_be_bytes(data[0..4].try_into().unwrap());
    let (big_endian, ns_precision) = match (magic_le, magic_be) {
        (MAGIC_NS, _) => (false, true),
        (MAGIC_US, _) => (false, false),
        (_, MAGIC_NS) => (true, true),
        (_, MAGIC_US) => (true, false),
        _ => return Err(CapError::BadMagic(magic_le)),
    };
    let mut r = Reader {
        buf: data,
        pos: 4,
        big_endian,
    };
    let _major = r.u16()?;
    let _minor = r.u16()?;
    let _thiszone = r.u32()?;
    let _sigfigs = r.u32()?;
    let _snaplen = r.u32()?;
    let linktype = r.u32()?;
    let mut records = Vec::new();
    while !r.done() {
        let sec = u64::from(r.u32()?);
        let frac = u64::from(r.u32()?);
        let incl = r.u32()? as usize;
        let _orig = r.u32()?;
        let bytes = r.bytes(incl)?.to_vec();
        let ns = sec * 1_000_000_000 + if ns_precision { frac } else { frac * 1000 };
        records.push((ns, bytes));
    }
    Ok(Capture { linktype, records })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ns() {
        let recs = vec![
            (0u64, vec![1, 2, 3]),
            (40, vec![]),
            (3_000_000_123, vec![0xff; 60]),
        ];
        let bytes = to_pcap_bytes(LINKTYPE_RAW, &recs);
        let cap = read_pcap(&bytes).unwrap();
        assert_eq!(cap.linktype, LINKTYPE_RAW);
        assert_eq!(cap.records, recs);
    }

    #[test]
    fn reads_microsecond_variant() {
        // Hand-build a µs-precision file with one 2-byte record at 5 µs.
        let mut f = Vec::new();
        f.extend_from_slice(&MAGIC_US.to_le_bytes());
        f.extend_from_slice(&2u16.to_le_bytes());
        f.extend_from_slice(&4u16.to_le_bytes());
        f.extend_from_slice(&0u32.to_le_bytes());
        f.extend_from_slice(&0u32.to_le_bytes());
        f.extend_from_slice(&65535u32.to_le_bytes());
        f.extend_from_slice(&LINKTYPE_EN10MB.to_le_bytes());
        f.extend_from_slice(&0u32.to_le_bytes()); // sec
        f.extend_from_slice(&5u32.to_le_bytes()); // µs
        f.extend_from_slice(&2u32.to_le_bytes());
        f.extend_from_slice(&2u32.to_le_bytes());
        f.extend_from_slice(&[0xaa, 0xbb]);
        let cap = read_pcap(&f).unwrap();
        assert_eq!(cap.linktype, LINKTYPE_EN10MB);
        assert_eq!(cap.records, vec![(5000u64, vec![0xaa, 0xbb])]);
    }

    #[test]
    fn reads_big_endian() {
        let mut f = Vec::new();
        f.extend_from_slice(&MAGIC_NS.to_be_bytes());
        f.extend_from_slice(&2u16.to_be_bytes());
        f.extend_from_slice(&4u16.to_be_bytes());
        f.extend_from_slice(&0u32.to_be_bytes());
        f.extend_from_slice(&0u32.to_be_bytes());
        f.extend_from_slice(&65535u32.to_be_bytes());
        f.extend_from_slice(&LINKTYPE_RAW.to_be_bytes());
        f.extend_from_slice(&1u32.to_be_bytes()); // sec
        f.extend_from_slice(&7u32.to_be_bytes()); // ns
        f.extend_from_slice(&1u32.to_be_bytes());
        f.extend_from_slice(&1u32.to_be_bytes());
        f.push(0x42);
        let cap = read_pcap(&f).unwrap();
        assert_eq!(cap.records, vec![(1_000_000_007u64, vec![0x42])]);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(read_pcap(&[0; 10]), Err(CapError::Truncated));
        assert!(matches!(read_pcap(&[9; 40]), Err(CapError::BadMagic(_))));
    }
}
