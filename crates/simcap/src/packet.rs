//! TCP segment parsing for capture matching.
//!
//! Extracts the RFC 1242-style identity of a TCP segment — (src, dst,
//! sport, dport, seq, ack) — from raw-IP or Ethernet capture records,
//! so the analyzer can recognize "the same packet" at two taps.

use crate::pcap::{LINKTYPE_EN10MB, LINKTYPE_RAW};

/// The identity of one TCP segment as seen on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TcpKey {
    /// IPv4 source address.
    pub src: [u8; 4],
    /// IPv4 destination address.
    pub dst: [u8; 4],
    /// TCP source port.
    pub sport: u16,
    /// TCP destination port.
    pub dport: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// TCP flags (not part of the match identity; kept for filters).
    pub flags: u8,
    /// TCP payload length in bytes (not part of the match identity).
    pub payload_len: u16,
}

impl TcpKey {
    /// The match identity per RFC 1242-style same-packet correlation:
    /// (src, dst, sport, dport, seq, ack).
    #[must_use]
    pub fn match_id(&self) -> ([u8; 4], [u8; 4], u16, u16, u32, u32) {
        (
            self.src, self.dst, self.sport, self.dport, self.seq, self.ack,
        )
    }

    /// True when the segment carries payload bytes.
    #[must_use]
    pub fn has_payload(&self) -> bool {
        self.payload_len > 0
    }
}

fn be16(b: &[u8], at: usize) -> Option<u16> {
    Some(u16::from_be_bytes(b.get(at..at + 2)?.try_into().ok()?))
}

fn be32(b: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_be_bytes(b.get(at..at + 4)?.try_into().ok()?))
}

/// Parses a TCP segment from a raw IPv4 datagram. Trailing bytes past
/// the IP total length (Ethernet padding, FCS) are ignored.
#[must_use]
pub fn parse_raw_ip(b: &[u8]) -> Option<TcpKey> {
    if b.len() < 20 || b[0] >> 4 != 4 {
        return None;
    }
    let ihl = usize::from(b[0] & 0x0f) * 4;
    if ihl < 20 || b.len() < ihl {
        return None;
    }
    let ip_len = usize::from(be16(b, 2)?);
    if ip_len < ihl || ip_len > b.len() {
        return None;
    }
    if b[9] != 6 {
        return None; // not TCP
    }
    let src = b.get(12..16)?.try_into().ok()?;
    let dst = b.get(16..20)?.try_into().ok()?;
    let t = ihl; // TCP header offset
    let data_off = usize::from(*b.get(t + 12)? >> 4) * 4;
    if data_off < 20 || ip_len < ihl + data_off {
        return None;
    }
    Some(TcpKey {
        src,
        dst,
        sport: be16(b, t)?,
        dport: be16(b, t + 2)?,
        seq: be32(b, t + 4)?,
        ack: be32(b, t + 8)?,
        flags: *b.get(t + 13)?,
        payload_len: u16::try_from(ip_len - ihl - data_off).ok()?,
    })
}

/// Parses a TCP segment from an Ethernet II frame (FCS tolerated).
#[must_use]
pub fn parse_ethernet(b: &[u8]) -> Option<TcpKey> {
    if b.len() < 14 || be16(b, 12)? != 0x0800 {
        return None;
    }
    parse_raw_ip(&b[14..])
}

/// Parses according to the capture's link type.
#[must_use]
pub fn parse(linktype: u32, bytes: &[u8]) -> Option<TcpKey> {
    match linktype {
        LINKTYPE_RAW => parse_raw_ip(bytes),
        LINKTYPE_EN10MB => parse_ethernet(bytes),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal 20+20 TCP/IP datagram with the given identity.
    pub fn make_segment(
        src: [u8; 4],
        dst: [u8; 4],
        sport: u16,
        dport: u16,
        seq: u32,
        ack: u32,
        payload: &[u8],
    ) -> Vec<u8> {
        let total = 40 + payload.len();
        let mut b = vec![0u8; total];
        b[0] = 0x45;
        b[2..4].copy_from_slice(&u16::try_from(total).unwrap().to_be_bytes());
        b[8] = 64; // ttl
        b[9] = 6; // TCP
        b[12..16].copy_from_slice(&src);
        b[16..20].copy_from_slice(&dst);
        b[20..22].copy_from_slice(&sport.to_be_bytes());
        b[22..24].copy_from_slice(&dport.to_be_bytes());
        b[24..28].copy_from_slice(&seq.to_be_bytes());
        b[28..32].copy_from_slice(&ack.to_be_bytes());
        b[32] = 5 << 4; // data offset
        b[33] = 0x10; // ACK
        b[40..].copy_from_slice(payload);
        b
    }

    #[test]
    fn parses_raw_and_ethernet() {
        let seg = make_segment([10, 0, 0, 1], [10, 0, 0, 2], 1234, 80, 7, 9, b"abc");
        let k = parse(LINKTYPE_RAW, &seg).unwrap();
        assert_eq!(k.sport, 1234);
        assert_eq!(k.seq, 7);
        assert_eq!(k.payload_len, 3);
        assert!(k.has_payload());

        let mut eth = vec![0u8; 12];
        eth.extend_from_slice(&0x0800u16.to_be_bytes());
        eth.extend_from_slice(&seg);
        eth.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]); // FCS past ip_len
        let k2 = parse(LINKTYPE_EN10MB, &eth).unwrap();
        assert_eq!(k.match_id(), k2.match_id());
        assert_eq!(k2.payload_len, 3);
    }

    #[test]
    fn rejects_non_tcp() {
        let mut seg = make_segment([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, 3, 4, b"");
        seg[9] = 17; // UDP
        assert!(parse(LINKTYPE_RAW, &seg).is_none());
        assert!(parse(LINKTYPE_RAW, &[0u8; 8]).is_none());
        assert!(parse(999, &seg).is_none());
    }
}
