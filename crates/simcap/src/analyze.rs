//! Per-hop latency from pairs of captures.
//!
//! RFC 1242 defines latency via the same packet observed at two
//! measurement points. The analyzer parses both captures, matches
//! segments by (src, dst, sport, dport, seq, ack) with FIFO order for
//! duplicates (retransmissions), and reduces the timestamp deltas to
//! a distribution: min / median / p99 / p999 / max plus a log2
//! histogram — tails, not just the means the paper's tables report.
//! The p999 accessor is guarded: nearest-rank 99.9% needs at least
//! [`P999_MIN_SAMPLES`] samples before it reports anything other than
//! the maximum, so [`LatencyDist::p999_ns`] returns `None` below that.

use crate::packet::{parse, TcpKey};
use crate::pcap::Capture;
use std::collections::{HashMap, VecDeque};

/// Minimum sample count for a meaningful nearest-rank p999.
///
/// With `n < 1000` the nearest-rank formula `ceil(0.999 * n)` lands on
/// rank `n` — the maximum — so a "p999" on a smaller set is just `max`
/// wearing a percentile costume.
pub const P999_MIN_SAMPLES: usize = 1000;

/// An ordered latency sample set (nanoseconds; signed so a reversed
/// tap pair is visible instead of wrapping).
#[derive(Clone, Debug, Default)]
pub struct LatencyDist {
    samples: Vec<i64>,
}

impl LatencyDist {
    /// Builds a distribution (sorts the samples).
    #[must_use]
    pub fn from_samples(mut samples: Vec<i64>) -> Self {
        samples.sort_unstable();
        LatencyDist { samples }
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Smallest sample in ns, `None` when empty.
    ///
    /// (Earlier versions returned a silent `0` on an empty
    /// distribution — indistinguishable from a real zero-latency
    /// sample. The `Option` makes "no data" typed; tables render it
    /// as `-`.)
    #[must_use]
    pub fn min_ns(&self) -> Option<i64> {
        self.samples.first().copied()
    }

    /// Largest sample in ns, `None` when empty.
    #[must_use]
    pub fn max_ns(&self) -> Option<i64> {
        self.samples.last().copied()
    }

    /// Nearest-rank percentile in ns (0 when empty).
    ///
    /// `p` is interpreted on `(0, 100]`: anything at or below zero —
    /// including NaN — is clamped to the minimum sample, anything at
    /// or above 100 to the maximum, so out-of-range requests can never
    /// index past the sample vector (a one-sample distribution returns
    /// that sample for every `p`).
    ///
    /// The nearest rank is `ceil(p/100 * n)` computed with a 1e-9
    /// guard band: `p/100 * n` is not exact in binary floating point
    /// (e.g. `99.9/100 * 1000` evaluates to `999.0000000000001`), and
    /// without the guard the stray ulp pushes `ceil` one rank too
    /// high — p999 of exactly 1000 samples would silently report the
    /// maximum instead of rank 999.
    #[must_use]
    pub fn percentile_ns(&self, p: f64) -> i64 {
        if self.samples.is_empty() {
            return 0;
        }
        if p.is_nan() || p <= 0.0 {
            return self.samples[0];
        }
        if p >= 100.0 {
            return self.samples[self.samples.len() - 1];
        }
        #[allow(
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss,
            clippy::cast_precision_loss
        )]
        let rank = ((p / 100.0 * self.samples.len() as f64 - 1e-9).ceil() as usize)
            .clamp(1, self.samples.len());
        self.samples[rank - 1]
    }

    /// Median in ns.
    #[must_use]
    pub fn median_ns(&self) -> i64 {
        self.percentile_ns(50.0)
    }

    /// 99th percentile in ns.
    #[must_use]
    pub fn p99_ns(&self) -> i64 {
        self.percentile_ns(99.0)
    }

    /// 99.9th percentile in ns, or `None` when the distribution holds
    /// fewer than [`P999_MIN_SAMPLES`] samples.
    ///
    /// Below that floor, nearest-rank p999 collapses to [`max_ns`]
    /// (`ceil(0.999 * n) == n` for all `n < 1000`), which would let a
    /// single outlier masquerade as a tail estimate. Callers that want
    /// the clamped value anyway can still ask
    /// [`percentile_ns`]`(99.9)` explicitly.
    ///
    /// [`max_ns`]: LatencyDist::max_ns
    /// [`percentile_ns`]: LatencyDist::percentile_ns
    #[must_use]
    pub fn p999_ns(&self) -> Option<i64> {
        (self.count() >= P999_MIN_SAMPLES).then(|| self.percentile_ns(99.9))
    }

    /// Mean in µs.
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.samples.iter().map(|&s| s as f64).sum::<f64>() / self.samples.len() as f64 / 1000.0
        }
    }

    /// Log2 histogram: `(lo_ns, hi_ns, count)` per occupied power-of-
    /// two bucket, negatives pooled into a leading `(min, 0)` bucket.
    #[must_use]
    pub fn histogram(&self) -> Vec<(i64, i64, usize)> {
        if self.samples.is_empty() {
            return Vec::new();
        }
        let negatives = self.samples.iter().filter(|&&s| s < 0).count();
        let mut buckets: HashMap<u32, usize> = HashMap::new();
        for &s in &self.samples {
            if s >= 0 {
                let idx = 64 - u64::try_from(s).unwrap().leading_zeros(); // 0 for s==0
                *buckets.entry(idx).or_default() += 1;
            }
        }
        let mut out = Vec::new();
        if negatives > 0 {
            out.push((self.samples[0], 0, negatives));
        }
        let mut idxs: Vec<u32> = buckets.keys().copied().collect();
        idxs.sort_unstable();
        for idx in idxs {
            let lo = if idx == 0 { 0 } else { 1i64 << (idx - 1) };
            let hi = 1i64 << idx;
            out.push((lo, hi, buckets[&idx]));
        }
        out
    }

    /// The raw sorted samples.
    #[must_use]
    pub fn samples(&self) -> &[i64] {
        &self.samples
    }
}

/// The result of matching one capture pair.
#[derive(Clone, Debug, Default)]
pub struct HopReport {
    /// Segments observed at both taps.
    pub matched: usize,
    /// Parseable TCP segments in A with no partner in B.
    pub unmatched_a: usize,
    /// Parseable TCP segments in B with no partner in A.
    pub unmatched_b: usize,
    /// Frames in A that were not parseable TCP segments.
    pub skipped_a: usize,
    /// Frames in B that were not parseable TCP segments.
    pub skipped_b: usize,
    /// Latency distribution over matched pairs (`t_B - t_A`).
    pub dist: LatencyDist,
}

fn parse_all(cap: &Capture) -> (Vec<(u64, TcpKey)>, usize) {
    let mut parsed = Vec::new();
    let mut skipped = 0usize;
    for (ns, bytes) in &cap.records {
        match parse(cap.linktype, bytes) {
            Some(key) => parsed.push((*ns, key)),
            None => skipped += 1,
        }
    }
    (parsed, skipped)
}

/// Matches segments of `a` against `b` and reduces the deltas.
///
/// With `data_only`, segments without payload (pure ACKs) are ignored
/// on both sides — useful when the taps straddle a layer that emits
/// its own ACKs.
#[must_use]
pub fn hop_between(a: &Capture, b: &Capture, data_only: bool) -> HopReport {
    let (mut pa, skipped_a) = parse_all(a);
    let (mut pb, skipped_b) = parse_all(b);
    if data_only {
        pa.retain(|(_, k)| k.has_payload());
        pb.retain(|(_, k)| k.has_payload());
    }
    let mut by_id: HashMap<_, VecDeque<u64>> = HashMap::new();
    for (ns, key) in &pb {
        by_id.entry(key.match_id()).or_default().push_back(*ns);
    }
    let total_b = pb.len();
    let mut deltas = Vec::new();
    let mut unmatched_a = 0usize;
    for (ns_a, key) in &pa {
        match by_id.get_mut(&key.match_id()).and_then(VecDeque::pop_front) {
            #[allow(clippy::cast_possible_wrap)]
            Some(ns_b) => deltas.push(ns_b as i64 - *ns_a as i64),
            None => unmatched_a += 1,
        }
    }
    HopReport {
        matched: deltas.len(),
        unmatched_a,
        unmatched_b: total_b - deltas.len(),
        skipped_a,
        skipped_b,
        dist: LatencyDist::from_samples(deltas),
    }
}

/// Renders a one-line min/median/p99/max summary in µs. An empty
/// report (no matched segments) renders `-` for every statistic
/// instead of fake zeros.
#[must_use]
pub fn summary_line(r: &HopReport) -> String {
    #[allow(clippy::cast_precision_loss)]
    let us = |ns: Option<i64>| match ns {
        Some(ns) => format!("{:>9.3}", ns as f64 / 1000.0),
        None => format!("{:>9}", "-"),
    };
    let pct = |p: f64| (r.dist.count() > 0).then(|| r.dist.percentile_ns(p));
    format!(
        "n={:<6} min {} µs   median {} µs   p99 {} µs   max {} µs",
        r.matched,
        us(r.dist.min_ns()),
        us(pct(50.0)),
        us(pct(99.0)),
        us(r.dist.max_ns()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcap::LINKTYPE_RAW;

    fn seg(seq: u32, payload: &[u8]) -> Vec<u8> {
        let total = 40 + payload.len();
        let mut b = vec![0u8; total];
        b[0] = 0x45;
        b[2..4].copy_from_slice(&u16::try_from(total).unwrap().to_be_bytes());
        b[9] = 6;
        b[12..16].copy_from_slice(&[10, 0, 0, 1]);
        b[16..20].copy_from_slice(&[10, 0, 0, 2]);
        b[20..22].copy_from_slice(&1000u16.to_be_bytes());
        b[22..24].copy_from_slice(&2000u16.to_be_bytes());
        b[24..28].copy_from_slice(&seq.to_be_bytes());
        b[32] = 5 << 4;
        b[40..].copy_from_slice(payload);
        b
    }

    #[test]
    fn fifo_matching_and_percentiles() {
        // Two copies of seq=1 (a retransmission) plus one of seq=2.
        let a = Capture {
            linktype: LINKTYPE_RAW,
            records: vec![
                (100, seg(1, b"x")),
                (200, seg(1, b"x")),
                (300, seg(2, b"y")),
                (400, vec![0u8; 4]), // unparseable
            ],
        };
        let b = Capture {
            linktype: LINKTYPE_RAW,
            records: vec![
                (150, seg(1, b"x")),
                (290, seg(1, b"x")),
                (360, seg(2, b"y")),
            ],
        };
        let r = hop_between(&a, &b, false);
        assert_eq!(r.matched, 3);
        assert_eq!(r.unmatched_a, 0);
        assert_eq!(r.unmatched_b, 0);
        assert_eq!(r.skipped_a, 1);
        // FIFO pairs: 150-100=50, 290-200=90, 360-300=60.
        assert_eq!(r.dist.samples(), &[50, 60, 90]);
        assert_eq!(r.dist.min_ns(), Some(50));
        assert_eq!(r.dist.median_ns(), 60);
        assert_eq!(r.dist.p99_ns(), 90);
        assert_eq!(r.dist.max_ns(), Some(90));
        // Empty distributions have typed absence, not silent zeros.
        assert_eq!(LatencyDist::default().min_ns(), None);
        assert_eq!(LatencyDist::default().max_ns(), None);
    }

    #[test]
    fn data_only_filters_pure_acks() {
        let a = Capture {
            linktype: LINKTYPE_RAW,
            records: vec![(0, seg(5, b"")), (40, seg(6, b"d"))],
        };
        let b = Capture {
            linktype: LINKTYPE_RAW,
            records: vec![(90, seg(6, b"d"))],
        };
        let r = hop_between(&a, &b, true);
        assert_eq!(r.matched, 1);
        assert_eq!(r.unmatched_a, 0);
        assert_eq!(r.dist.samples(), &[50]);
    }

    #[test]
    fn percentile_boundaries() {
        let d = LatencyDist::from_samples(vec![30, 10, 20]);
        // p=100 is exactly the maximum; tiny p the minimum.
        assert_eq!(d.percentile_ns(100.0), 30);
        assert_eq!(d.percentile_ns(1e-9), 10);
        // Out-of-range and non-finite p clamp instead of indexing
        // outside the samples.
        assert_eq!(d.percentile_ns(0.0), 10);
        assert_eq!(d.percentile_ns(-5.0), 10);
        assert_eq!(d.percentile_ns(250.0), 30);
        assert_eq!(d.percentile_ns(f64::NAN), 10);
        assert_eq!(d.percentile_ns(f64::INFINITY), 30);
        assert_eq!(d.percentile_ns(f64::NEG_INFINITY), 10);
    }

    #[test]
    fn percentile_of_a_single_sample_never_indexes_out_of_bounds() {
        let d = LatencyDist::from_samples(vec![7]);
        for p in [-1.0, 0.0, 1e-12, 0.5, 50.0, 99.999, 100.0, 1e6, f64::NAN] {
            assert_eq!(d.percentile_ns(p), 7, "p = {p}");
        }
        assert_eq!(d.median_ns(), 7);
        assert_eq!(d.p99_ns(), 7);
        // Empty stays the documented 0.
        assert_eq!(LatencyDist::default().percentile_ns(50.0), 0);
    }

    #[test]
    fn nearest_rank_is_robust_to_float_noise() {
        // 0.99 * 100 evaluates to 99.00000000000001; without the guard
        // band, ceil would land on rank 100 (the max) instead of the
        // mathematically correct rank 99.
        let d = LatencyDist::from_samples((0..100).collect());
        assert_eq!(d.p99_ns(), 98);
        // 0.5 * 4 is exact; the guard must not pull it down a rank.
        let d = LatencyDist::from_samples(vec![1, 2, 3, 4]);
        assert_eq!(d.median_ns(), 2);
    }

    #[test]
    fn p999_refuses_undersampled_distributions() {
        // 999 samples: nearest-rank p999 would be rank 999 == max, a
        // fake tail. The guarded accessor refuses.
        let d = LatencyDist::from_samples((0..999).collect());
        assert_eq!(d.count(), P999_MIN_SAMPLES - 1);
        assert_eq!(d.p999_ns(), None);
        // But the raw percentile still answers (with the clamped max).
        assert_eq!(Some(d.percentile_ns(99.9)), d.max_ns());
        assert_eq!(LatencyDist::default().p999_ns(), None);
    }

    #[test]
    fn p999_at_and_above_the_sample_floor() {
        // Exactly 1000 samples 0..=999: ceil(0.999 * 1000) = 999, so
        // p999 is the 999th-ranked sample (value 998), NOT the max.
        let d = LatencyDist::from_samples((0..1000).collect());
        assert_eq!(d.p999_ns(), Some(998));
        assert!(d.p999_ns().unwrap() < d.max_ns().unwrap());
        // 2000 samples: rank ceil(1998.0) = 1998 -> value 1997.
        let d = LatencyDist::from_samples((0..2000).collect());
        assert_eq!(d.p999_ns(), Some(1997));
    }

    #[test]
    fn histogram_buckets() {
        let d = LatencyDist::from_samples(vec![-5, 0, 1, 3, 700]);
        let h = d.histogram();
        assert_eq!(h[0], (-5, 0, 1)); // negatives
        assert!(h.contains(&(0, 1, 1))); // 0
        assert!(h.contains(&(1, 2, 1))); // 1
        assert!(h.contains(&(2, 4, 1))); // 3
        assert!(h.contains(&(512, 1024, 1))); // 700
    }
}
