//! One unified measurement API: the [`Recorder`].
//!
//! The workspace grew three ad-hoc latency-measurement paths:
//! `LatencyDist::from_samples` (exact, buffer-everything),
//! `StreamingP95` (O(1) hedge-trigger estimate), and
//! `latency_core::recovery::rtt_dist_counted` (exact + overflow
//! accounting). [`Recorder`] subsumes all three behind one `observe`
//! loop with three retention modes:
//!
//! - [`RecorderMode::Exact`] retains every sample — identical numbers
//!   to `LatencyDist` (same sort, same nearest-rank formula, same
//!   float summation order), plus the saturation counting
//!   `rtt_dist_counted` did;
//! - [`RecorderMode::Sketch`] retains only a [`QuantileSketch`]:
//!   bounded memory, quantiles within [`RELATIVE_ERROR`], and a
//!   merge that is byte-deterministic in any order;
//! - [`RecorderMode::UpperOnly`] retains nothing but the O(1)
//!   streaming upper-quantile estimate (the hedge trigger).
//!
//! Every mode also maintains the streaming upper estimate, so a
//! recorder can both report a distribution *and* drive an online
//! trigger. The [`Quantiles`] trait is the common read side; it is
//! implemented by [`LatencyDist`], [`QuantileSketch`], and
//! [`Recorder`] itself, so reduction code can be written once.
//!
//! [`RELATIVE_ERROR`]: crate::sketch::RELATIVE_ERROR

use simkit::time::SimTime;

use crate::analyze::{LatencyDist, P999_MIN_SAMPLES};
use crate::sketch::QuantileSketch;

/// The common read side of every latency container: exact
/// distributions, sketches, and recorders all answer the same
/// questions, differing only in accuracy and memory.
///
/// Accessors return `None` on an empty container — the silent-zero
/// fallback the old `LatencyDist::min_ns` had is gone.
pub trait Quantiles {
    /// Number of samples observed.
    fn count(&self) -> usize;
    /// Smallest sample in ns, `None` when empty.
    fn min_ns(&self) -> Option<i64>;
    /// Largest sample in ns, `None` when empty.
    fn max_ns(&self) -> Option<i64>;
    /// Nearest-rank percentile in ns, `None` when empty. Same `p`
    /// clamping rules as [`LatencyDist::percentile_ns`].
    fn percentile_ns(&self, p: f64) -> Option<i64>;
    /// Mean in µs (0.0 when empty).
    fn mean_us(&self) -> f64;

    /// Median in ns, `None` when empty.
    fn median_ns(&self) -> Option<i64> {
        self.percentile_ns(50.0)
    }
    /// 99th percentile in ns, `None` when empty.
    fn p99_ns(&self) -> Option<i64> {
        self.percentile_ns(99.0)
    }
    /// 99.9th percentile in ns, `None` below the
    /// [`P999_MIN_SAMPLES`] floor (nearest-rank p999 on fewer samples
    /// is just the maximum wearing a percentile costume).
    fn p999_ns(&self) -> Option<i64> {
        if self.count() >= P999_MIN_SAMPLES {
            self.percentile_ns(99.9)
        } else {
            None
        }
    }
}

impl Quantiles for LatencyDist {
    fn count(&self) -> usize {
        LatencyDist::count(self)
    }
    fn min_ns(&self) -> Option<i64> {
        LatencyDist::min_ns(self)
    }
    fn max_ns(&self) -> Option<i64> {
        LatencyDist::max_ns(self)
    }
    fn percentile_ns(&self, p: f64) -> Option<i64> {
        (LatencyDist::count(self) > 0).then(|| LatencyDist::percentile_ns(self, p))
    }
    fn mean_us(&self) -> f64 {
        LatencyDist::mean_us(self)
    }
}

impl Quantiles for QuantileSketch {
    fn count(&self) -> usize {
        usize::try_from(QuantileSketch::count(self)).unwrap_or(usize::MAX)
    }
    fn min_ns(&self) -> Option<i64> {
        QuantileSketch::min_ns(self)
    }
    fn max_ns(&self) -> Option<i64> {
        QuantileSketch::max_ns(self)
    }
    fn percentile_ns(&self, p: f64) -> Option<i64> {
        QuantileSketch::percentile_ns(self, p)
    }
    fn mean_us(&self) -> f64 {
        QuantileSketch::mean_us(self)
    }
}

/// What a [`Recorder`] retains per sample.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecorderMode {
    /// Every sample, exactly (the `LatencyDist` numbers, byte for
    /// byte). Memory grows with the sample count.
    #[default]
    Exact,
    /// A [`QuantileSketch`] only: bounded memory, quantiles within
    /// the sketch's documented relative error.
    Sketch,
    /// Nothing but the O(1) streaming upper estimate — the hedge
    /// trigger without a distribution.
    UpperOnly,
}

/// The unified latency recorder (see the module docs).
///
/// Determinism: a recorder's state is a pure function of its
/// observation sequence and merge sequence — no RNG, no clocks. In
/// `Sketch` mode, merged results are additionally independent of
/// merge *order* (integer bucket addition); in `Exact` mode every
/// query sorts first, so merged results are also order-independent.
/// Only the stream-local upper estimate depends on order, and it is
/// never part of a canonical report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Recorder {
    mode: RecorderMode,
    exact: Vec<i64>,
    sketch: QuantileSketch,
    /// Samples that overflowed `i64` nanoseconds and were clamped to
    /// `i64::MAX` (still recorded; the count marks the tail a floor).
    saturated: u64,
    /// Frugal-style streaming upper-quantile estimate: first sample
    /// seeds it, then up by an eighth of the gap, down by a 128th —
    /// the exact `StreamingP95` rule, so migrated callers see
    /// identical estimates.
    upper_est: Option<u64>,
    observed: u64,
}

impl Recorder {
    /// An exact-mode recorder (the default).
    #[must_use]
    pub fn exact() -> Self {
        Recorder::with_mode(RecorderMode::Exact)
    }

    /// A sketch-mode recorder.
    #[must_use]
    pub fn sketched() -> Self {
        Recorder::with_mode(RecorderMode::Sketch)
    }

    /// An upper-estimate-only recorder (the hedge trigger).
    #[must_use]
    pub fn upper_only() -> Self {
        Recorder::with_mode(RecorderMode::UpperOnly)
    }

    /// A recorder in the given mode.
    #[must_use]
    pub fn with_mode(mode: RecorderMode) -> Self {
        Recorder {
            mode,
            ..Recorder::default()
        }
    }

    /// An exact-mode recorder pre-loaded with `times` (the
    /// `rtt_dist_counted` replacement: clamps samples above `i64::MAX`
    /// nanoseconds and counts them as [`saturated`](Recorder::saturated)).
    #[must_use]
    pub fn from_times(times: &[SimTime]) -> Self {
        let mut r = Recorder::exact();
        r.observe_times(times);
        r
    }

    /// This recorder's retention mode.
    #[must_use]
    pub fn mode(&self) -> RecorderMode {
        self.mode
    }

    /// Records one simulated-time sample. Samples above `i64::MAX`
    /// nanoseconds are clamped and counted as saturated.
    pub fn observe(&mut self, t: SimTime) {
        let ns = i64::try_from(t.as_ns()).unwrap_or_else(|_| {
            self.saturated += 1;
            i64::MAX
        });
        self.update_upper(t.as_ns());
        self.record_ns(ns);
    }

    /// Records every sample in `times` in order.
    pub fn observe_times(&mut self, times: &[SimTime]) {
        for &t in times {
            self.observe(t);
        }
    }

    /// Records one raw signed nanosecond sample (capture deltas can
    /// be negative when a tap pair is reversed). Negative samples do
    /// not move the upper estimate.
    pub fn observe_ns(&mut self, ns: i64) {
        #[allow(clippy::cast_sign_loss)]
        self.update_upper(ns.max(0) as u64);
        self.record_ns(ns);
    }

    fn record_ns(&mut self, ns: i64) {
        self.observed += 1;
        match self.mode {
            RecorderMode::Exact => self.exact.push(ns),
            RecorderMode::Sketch => self.sketch.observe_ns(ns),
            RecorderMode::UpperOnly => {}
        }
    }

    fn update_upper(&mut self, t: u64) {
        self.upper_est = Some(match self.upper_est {
            None => t,
            Some(est) if t > est => est + (t - est) / 8,
            Some(est) => est - (est - t) / 128,
        });
    }

    /// Samples clamped to `i64::MAX` ns because they overflowed. A
    /// non-zero count means the max (and any percentile landing on a
    /// clamped sample) is a floor, not a measurement.
    #[must_use]
    pub fn saturated(&self) -> u64 {
        self.saturated
    }

    /// The streaming upper-quantile estimate (≈ p95, biased high on
    /// heavy tails — the side a hedging trigger wants to err on).
    /// `None` until the first sample. Stream-local: a merge keeps the
    /// left operand's estimate.
    #[must_use]
    pub fn upper_estimate(&self) -> Option<SimTime> {
        self.upper_est.map(SimTime::from_ns)
    }

    /// Merges `other` into `self`. Both recorders must be in the same
    /// mode (merging an exact shard into a sketch would silently mix
    /// accuracies).
    ///
    /// # Panics
    /// If the modes differ.
    pub fn merge(&mut self, other: &Recorder) {
        assert_eq!(
            self.mode, other.mode,
            "cannot merge recorders of different modes"
        );
        match self.mode {
            RecorderMode::Exact => self.exact.extend_from_slice(&other.exact),
            RecorderMode::Sketch => self.sketch.merge(&other.sketch),
            RecorderMode::UpperOnly => {}
        }
        self.saturated += other.saturated;
        self.observed += other.observed;
        if self.upper_est.is_none() {
            self.upper_est = other.upper_est;
        }
    }

    /// The exact distribution (sorted), `None` unless in
    /// [`RecorderMode::Exact`].
    #[must_use]
    pub fn dist(&self) -> Option<LatencyDist> {
        matches!(self.mode, RecorderMode::Exact)
            .then(|| LatencyDist::from_samples(self.exact.clone()))
    }

    /// The sketch, `None` unless in [`RecorderMode::Sketch`].
    #[must_use]
    pub fn sketch(&self) -> Option<&QuantileSketch> {
        matches!(self.mode, RecorderMode::Sketch).then_some(&self.sketch)
    }

    /// Population standard deviation in µs (0.0 when empty or in
    /// [`RecorderMode::UpperOnly`]). Exact mode sums `f64` squares
    /// over the sorted samples; sketch mode uses the exact integer
    /// sum of squares.
    #[must_use]
    pub fn stddev_us(&self) -> f64 {
        match self.mode {
            RecorderMode::Exact => {
                if self.exact.is_empty() {
                    return 0.0;
                }
                let mut sorted = self.exact.clone();
                sorted.sort_unstable();
                #[allow(clippy::cast_precision_loss)]
                {
                    let n = sorted.len() as f64;
                    let mean = sorted.iter().map(|&s| s as f64).sum::<f64>() / n;
                    let var = sorted
                        .iter()
                        .map(|&s| {
                            let d = s as f64 - mean;
                            d * d
                        })
                        .sum::<f64>()
                        / n;
                    var.sqrt() / 1000.0
                }
            }
            RecorderMode::Sketch => self.sketch.stddev_us(),
            RecorderMode::UpperOnly => 0.0,
        }
    }

    /// Bytes retained by this recorder (sample buffer or sketch
    /// buckets plus the header) — what the `--sketch` memory gate
    /// measures.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Recorder>() + self.exact.capacity() * 8 + self.sketch.memory_bytes()
            - std::mem::size_of::<QuantileSketch>()
    }
}

impl Quantiles for Recorder {
    fn count(&self) -> usize {
        usize::try_from(self.observed).unwrap_or(usize::MAX)
    }
    fn min_ns(&self) -> Option<i64> {
        match self.mode {
            RecorderMode::Exact => self.exact.iter().copied().min(),
            RecorderMode::Sketch => self.sketch.min_ns(),
            RecorderMode::UpperOnly => None,
        }
    }
    fn max_ns(&self) -> Option<i64> {
        match self.mode {
            RecorderMode::Exact => self.exact.iter().copied().max(),
            RecorderMode::Sketch => self.sketch.max_ns(),
            RecorderMode::UpperOnly => None,
        }
    }
    fn percentile_ns(&self, p: f64) -> Option<i64> {
        match self.mode {
            RecorderMode::Exact => self.dist().and_then(|d| Quantiles::percentile_ns(&d, p)),
            RecorderMode::Sketch => self.sketch.percentile_ns(p),
            RecorderMode::UpperOnly => None,
        }
    }
    fn mean_us(&self) -> f64 {
        match self.mode {
            RecorderMode::Exact => self.dist().map_or(0.0, |d| LatencyDist::mean_us(&d)),
            RecorderMode::Sketch => self.sketch.mean_us(),
            RecorderMode::UpperOnly => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_mode_matches_latency_dist_numbers() {
        let times: Vec<SimTime> = (1..=100).map(|i| SimTime::from_ns(i * 40)).collect();
        let rec = Recorder::from_times(&times);
        #[allow(clippy::cast_possible_wrap)]
        let dist = LatencyDist::from_samples(times.iter().map(|t| t.as_ns() as i64).collect());
        assert_eq!(Quantiles::count(&rec), 100);
        assert_eq!(Quantiles::min_ns(&rec), LatencyDist::min_ns(&dist));
        assert_eq!(Quantiles::max_ns(&rec), LatencyDist::max_ns(&dist));
        for p in [1.0, 50.0, 99.0, 100.0] {
            assert_eq!(
                Quantiles::percentile_ns(&rec, p),
                Some(LatencyDist::percentile_ns(&dist, p)),
                "p = {p}"
            );
        }
        assert!((Quantiles::mean_us(&rec) - LatencyDist::mean_us(&dist)).abs() < 1e-12);
        assert_eq!(rec.saturated(), 0);
    }

    #[test]
    fn saturation_counts_and_clamps_like_rtt_dist_counted() {
        let times = [SimTime::from_ns(100), SimTime::from_ns(u64::MAX)];
        let rec = Recorder::from_times(&times);
        assert_eq!(rec.saturated(), 1);
        assert_eq!(Quantiles::count(&rec), 2);
        assert_eq!(Quantiles::max_ns(&rec), Some(i64::MAX));
    }

    #[test]
    fn upper_estimate_matches_streaming_p95_rule() {
        #[allow(deprecated)]
        let mut old = crate::StreamingP95::new();
        let mut rec = Recorder::upper_only();
        for i in 0..500u64 {
            let t = SimTime::from_ns(100_000 + (i * 37) % 5000);
            old.observe(t);
            rec.observe(t);
        }
        assert_eq!(rec.upper_estimate(), old.estimate());
        assert_eq!(Quantiles::count(&rec), 500);
        assert_eq!(Quantiles::percentile_ns(&rec, 50.0), None);
    }

    #[test]
    fn sketch_mode_merge_is_shard_order_independent() {
        let mut whole = Recorder::sketched();
        let mut shards: Vec<Recorder> = (0..4).map(|_| Recorder::sketched()).collect();
        for i in 0..4000u64 {
            let t = SimTime::from_ns((i * 7919) % 1_000_000);
            whole.observe(t);
            shards[(i % 4) as usize].observe(t);
        }
        let mut fwd = Recorder::sketched();
        for s in &shards {
            fwd.merge(s);
        }
        let mut rev = Recorder::sketched();
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd.sketch(), rev.sketch());
        assert_eq!(fwd.sketch(), whole.sketch());
        assert_eq!(Quantiles::p99_ns(&fwd), Quantiles::p99_ns(&whole));
    }

    #[test]
    #[should_panic(expected = "different modes")]
    fn merging_mixed_modes_panics() {
        let mut a = Recorder::exact();
        let b = Recorder::sketched();
        a.merge(&b);
    }

    #[test]
    fn sketch_mode_bounds_memory() {
        let mut exact = Recorder::exact();
        let mut sk = Recorder::sketched();
        for i in 0..100_000u64 {
            let t = SimTime::from_ns(i * 131);
            exact.observe(t);
            sk.observe(t);
        }
        assert!(exact.memory_bytes() >= 800_000);
        assert!(
            sk.memory_bytes() < crate::sketch::MAX_MEMORY_BYTES + 256,
            "sketch memory {}",
            sk.memory_bytes()
        );
    }

    #[test]
    fn p999_floor_applies_to_recorders() {
        let mut rec = Recorder::sketched();
        for i in 0..999u64 {
            rec.observe(SimTime::from_ns(i));
        }
        assert_eq!(Quantiles::p999_ns(&rec), None);
        rec.observe(SimTime::from_ns(999));
        assert!(Quantiles::p999_ns(&rec).is_some());
    }
}
