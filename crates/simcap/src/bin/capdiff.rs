//! `capdiff` — per-hop latency between two capture files.
//!
//! ```text
//! capdiff [--data-only] [--hist] A.pcap B.pcap
//! ```
//!
//! Reads two captures (pcap or pcapng, auto-detected), matches TCP
//! segments across them by (src, dst, sport, dport, seq, ack) with
//! FIFO ordering for duplicates (RFC 1242 same-packet latency), and
//! prints the distribution of `t_B − t_A`: min / median / p99 / max,
//! plus a log2 histogram with `--hist`. `--data-only` ignores pure
//! ACKs on both sides.

use simcap::analyze::{hop_between, summary_line};
use simcap::pcapng::read_any;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: capdiff [--data-only] [--hist] A.pcap B.pcap");
    eprintln!("  A, B: pcap or pcapng capture files (auto-detected)");
    eprintln!("  latency is reported as t_B - t_A per matched TCP segment");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut data_only = false;
    let mut hist = false;
    let mut files = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--data-only" => data_only = true,
            "--hist" => hist = true,
            "--help" | "-h" => return usage(),
            f if !f.starts_with('-') => files.push(f.to_string()),
            _ => return usage(),
        }
    }
    if files.len() != 2 {
        return usage();
    }
    let mut caps = Vec::new();
    for f in &files {
        let data = match std::fs::read(f) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("capdiff: {f}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match read_any(&data) {
            Ok(c) => caps.push(c),
            Err(e) => {
                eprintln!("capdiff: {f}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let r = hop_between(&caps[0], &caps[1], data_only);
    println!("A: {} ({} records)", files[0], caps[0].records.len());
    println!("B: {} ({} records)", files[1], caps[1].records.len());
    println!("{}", summary_line(&r));
    if r.unmatched_a + r.unmatched_b + r.skipped_a + r.skipped_b > 0 {
        println!(
            "unmatched: {} in A, {} in B; non-TCP records skipped: {} in A, {} in B",
            r.unmatched_a, r.unmatched_b, r.skipped_a, r.skipped_b
        );
    }
    if hist {
        for (lo, hi, count) in r.dist.histogram() {
            #[allow(clippy::cast_precision_loss)]
            let bar = "#".repeat(1 + count * 40 / r.matched.max(1));
            println!("{:>10} – {:<10} ns  {count:>6}  {bar}", lo, hi);
        }
    }
    if r.matched == 0 {
        eprintln!("capdiff: no segments matched between the captures");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
