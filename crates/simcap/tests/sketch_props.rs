//! Property tests for the mergeable quantile sketch and the
//! [`simcap::Recorder`] built on it: merging is associative and
//! order-independent (the foundation of byte-identical reports at any
//! `--jobs`), sharding a stream never changes the merged answer, and
//! the sketch's percentiles stay within the documented
//! [`simcap::RELATIVE_ERROR`] of the exact nearest-rank reference.

use proptest::prelude::*;
use proptest::TestRng;
use simcap::{LatencyDist, QuantileSketch, Quantiles, Recorder, P999_MIN_SAMPLES, RELATIVE_ERROR};

/// A latency sample in ns: spans sub-µs to tens of seconds, hitting
/// both the exact sub-bucket range (one bucket per value below 256)
/// and many log-linear octaves above it.
struct SampleNs;

impl Strategy for SampleNs {
    type Value = i64;
    #[allow(clippy::cast_possible_wrap)]
    fn generate(&self, rng: &mut TestRng) -> i64 {
        match rng.below(3) {
            0 => rng.below(256) as i64,
            1 => 256 + rng.below(1_000_000 - 256) as i64,
            _ => 1_000_000 + rng.below(50_000_000_000 - 1_000_000) as i64,
        }
    }
}

fn sample_ns() -> SampleNs {
    SampleNs
}

fn sketch_of(samples: &[i64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &v in samples {
        s.observe_ns(v);
    }
    s
}

/// Sketch state probe: count, sum, extremes, and a dense percentile
/// ladder. Two sketches that agree here produce byte-identical
/// canonical JSON downstream.
fn probe(s: &QuantileSketch) -> (u64, i128, Option<i64>, Option<i64>, Vec<Option<i64>>) {
    let ladder = (0..=1000)
        .map(|i| s.percentile_ns(f64::from(i) / 10.0))
        .collect();
    (s.count(), s.sum_ns(), s.min_ns(), s.max_ns(), ladder)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c): merge is associative, so a grid
    /// can be merged shard by shard in any grouping.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(sample_ns(), 0..200),
        b in proptest::collection::vec(sample_ns(), 0..200),
        c in proptest::collection::vec(sample_ns(), 0..200),
    ) {
        let (sa, sb, sc) = (sketch_of(&a), sketch_of(&b), sketch_of(&c));

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);

        prop_assert_eq!(probe(&left), probe(&right));
    }

    /// a ⊔ b == b ⊔ a: merge order never matters, so only the final
    /// grid order (not worker scheduling) shapes the merged sketch.
    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(sample_ns(), 0..300),
        b in proptest::collection::vec(sample_ns(), 0..300),
    ) {
        let (sa, sb) = (sketch_of(&a), sketch_of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(probe(&ab), probe(&ba));
    }

    /// Splitting one stream into shards and merging the shard
    /// sketches gives exactly the single-sketch answer — the jobs
    /// 1-vs-N identity, minus the thread pool.
    #[test]
    fn sharded_merge_equals_single_pass(
        samples in proptest::collection::vec(sample_ns(), 1..600),
        shards in 1usize..8,
    ) {
        let single = sketch_of(&samples);
        let mut merged = QuantileSketch::new();
        for chunk in samples.chunks(samples.len().div_ceil(shards)) {
            merged.merge(&sketch_of(chunk));
        }
        prop_assert_eq!(probe(&single), probe(&merged));
    }

    /// Every sketch percentile lands within RELATIVE_ERROR of the
    /// exact nearest-rank percentile over the same samples.
    #[test]
    fn percentiles_match_exact_within_documented_error(
        samples in proptest::collection::vec(sample_ns(), 1..500),
    ) {
        let sketch = sketch_of(&samples);
        let exact = LatencyDist::from_samples(samples);
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let e = LatencyDist::percentile_ns(&exact, p);
            let s = sketch.percentile_ns(p).expect("non-empty sketch");
            let tol = (e.abs() as f64 * RELATIVE_ERROR).ceil() as i64 + 1;
            prop_assert!(
                (s - e).abs() <= tol,
                "p{p}: sketch {s} vs exact {e} (tol {tol})"
            );
        }
    }

    /// The Recorder's p999 floor holds in both modes: below
    /// P999_MIN_SAMPLES the p999 is None, at or above it is Some.
    #[test]
    fn p999_floor_is_mode_independent(
        n in 1usize..2000,
        seed in any::<u64>(),
    ) {
        let mut exact = Recorder::exact();
        let mut sketched = Recorder::sketched();
        let mut x = seed | 1;
        for _ in 0..n {
            // xorshift: arbitrary positive ns values.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = (x % 1_000_000_000) as i64;
            exact.observe_ns(v);
            sketched.observe_ns(v);
        }
        prop_assert_eq!(exact.p999_ns().is_some(), n >= P999_MIN_SAMPLES);
        prop_assert_eq!(sketched.p999_ns().is_some(), n >= P999_MIN_SAMPLES);
    }
}

/// Recorder::merge matches sketch merge semantics and keeps the
/// saturated-sample tally additive across shards.
#[test]
fn recorder_merge_is_shard_order_stable() {
    let shards: Vec<Vec<i64>> = (0..5u64)
        .map(|s| {
            (0..200u64)
                .map(|i| ((s * 7919 + i * 104_729) % 40_000_000) as i64)
                .collect()
        })
        .collect();
    let mut grid_order = Recorder::sketched();
    for shard in &shards {
        let mut r = Recorder::sketched();
        for &v in shard {
            r.observe_ns(v);
        }
        grid_order.merge(&r);
    }
    let mut single = Recorder::sketched();
    for shard in &shards {
        for &v in shard {
            single.observe_ns(v);
        }
    }
    assert_eq!(Quantiles::count(&grid_order), Quantiles::count(&single));
    for p in [50.0, 90.0, 99.0, 99.9] {
        assert_eq!(grid_order.percentile_ns(p), single.percentile_ns(p));
    }
    assert_eq!(grid_order.mean_us().to_bits(), single.mean_us().to_bits());
}
