//! Property: a sweep's serialized report is a function of the grid
//! alone — byte-identical at any worker count, for arbitrary grids
//! and (key-derived) seeds.

use latency_core::experiment::{Experiment, NetKind};
use proptest::prelude::*;
use sweep::Sweep;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn report_is_byte_identical_at_any_job_count(
        salt in any::<u32>(),
        sizes in proptest::collection::vec(1usize..2000, 1..4),
        reps in 1u64..3,
        jobs in 2usize..9,
    ) {
        let mut sw = Sweep::new("prop");
        for (i, &size) in sizes.iter().enumerate() {
            let mut e = Experiment::rpc(NetKind::Atm, size);
            e.iterations = 6;
            e.warmup = 1;
            // The salt perturbs the keys, and with them every derived
            // cell seed: determinism must hold across seeds, not for
            // one lucky grid.
            sw.ensure(format!("prop/{salt:08x}/{i}/{size}"), e, reps);
        }
        let seq = sw.run(1).canonical_json();
        prop_assert_eq!(&seq, &sw.run(jobs).canonical_json());
        // And sequential re-runs reproduce themselves.
        prop_assert_eq!(&seq, &sw.run(1).canonical_json());
    }
}
