//! Every cell in the Tables 1–7 and loss-recovery grids derives its
//! RNG seed from an FNV-1a hash of the grid key folded to 32 bits
//! ([`sweep::cell_seed`]). Two cells colliding would silently share a
//! random stream, correlating results the sweep treats as
//! independent — so the full production grid must be collision-free,
//! at every scale the harness actually runs.

use std::collections::BTreeMap;

use latency_core::NetKind;
use proptest::prelude::*;
use sweep::cell_seed;
use sweep::grid::{fault_cell_key, rpc_cell_key, Variant};

/// Scenario names from `latency_core::recovery::scenarios`, spelled
/// out so a renamed scenario shows up here as a review question
/// rather than a silent re-seed.
fn fault_scenarios() -> Vec<&'static str> {
    latency_core::recovery::scenarios()
        .into_iter()
        .map(|s| s.name)
        .collect()
}

/// Every key the `repro` harness can declare: all four variants over
/// the paper's size axis on both substrates, plus the fault study, at
/// the quick (200×1), default (1500×1) and full (40000×3) scales.
fn production_grid_keys() -> Vec<String> {
    let mut keys = Vec::new();
    for &(iters, reps) in &[(200u64, 1u64), (1500, 1), (4000, 1), (40_000, 3)] {
        for net in [NetKind::Atm, NetKind::Ether] {
            for &size in &latency_core::paper::SIZES {
                for v in Variant::ALL {
                    keys.push(rpc_cell_key(net, size, v, iters, reps));
                }
            }
        }
        for sc in fault_scenarios() {
            for &size in &[1400usize, 8000] {
                keys.push(fault_cell_key(sc, size, iters.min(400), reps));
            }
        }
    }
    keys.sort();
    keys.dedup();
    keys
}

#[test]
fn full_grid_has_no_folded_seed_collisions() {
    let keys = production_grid_keys();
    assert!(keys.len() > 250, "grid unexpectedly small: {}", keys.len());
    let mut by_seed: BTreeMap<u64, &str> = BTreeMap::new();
    for key in &keys {
        let seed = cell_seed(key);
        assert!(seed <= u64::from(u32::MAX), "seed must fold to 32 bits");
        if let Some(prev) = by_seed.insert(seed, key) {
            panic!("seed collision: '{prev}' and '{key}' both fold to {seed:#010x}");
        }
    }
}

const KEY_CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789/._-";

proptest! {
    /// The seed is a pure function of the key and always fits the
    /// folded 32-bit range, whatever the key's shape.
    #[test]
    fn seed_is_stable_and_folded(
        bytes in proptest::collection::vec(0usize..KEY_CHARSET.len(), 0..80),
    ) {
        let key: String = bytes.iter().map(|&b| KEY_CHARSET[b] as char).collect();
        let s = cell_seed(&key);
        prop_assert!(s <= u64::from(u32::MAX));
        prop_assert_eq!(s, cell_seed(&key));
    }

    /// Scale is part of the cell identity: changing iterations or
    /// reps must re-seed the cell.
    #[test]
    fn scale_perturbations_reseed(
        size in 1usize..16_000,
        iters in 1u64..100_000,
        reps in 1u64..8,
    ) {
        let base = rpc_cell_key(NetKind::Atm, size, Variant::Base, iters, reps);
        let more_iters = rpc_cell_key(NetKind::Atm, size, Variant::Base, iters + 1, reps);
        let more_reps = rpc_cell_key(NetKind::Atm, size, Variant::Base, iters, reps + 1);
        prop_assert!(cell_seed(&base) != cell_seed(&more_iters));
        prop_assert!(cell_seed(&base) != cell_seed(&more_reps));
    }
}
