//! `sweep` — the deterministic parallel sweep runner.
//!
//! The paper's tables are products of a *grid* of runs: network ×
//! message size × kernel variant × repetitions. A [`Sweep`] declares
//! that grid as a list of keyed [`Cell`]s; [`Sweep::run`] fans the
//! cells out across N worker threads and merges the results back in
//! grid order. Three properties make the parallel run a drop-in
//! replacement for the sequential one:
//!
//! 1. **Per-cell seeding by identity.** Every cell's RNG seed is
//!    derived from its stable grid key ([`cell_seed`], FNV-1a over the
//!    key, folded to 32 bits so derived per-host seeds can never
//!    overflow), not from execution order. A cell computes the same
//!    result whether it runs first, last, or concurrently with the
//!    whole grid.
//! 2. **Thread-confined simulation.** Each worker builds, runs and
//!    tears down its own [`simkit::Sim`] — event closures never cross
//!    threads; only the (plain-data, `Send`) experiment in and the
//!    result out do. `simkit::assert_world_send` pins that contract at
//!    compile time next to the world type.
//! 3. **Grid-order merge.** Workers pull cells from an atomic work
//!    queue but results are written back into each cell's original
//!    slot ([`pool::run_ordered`]), so the report is byte-identical to
//!    the `jobs = 1` run and to itself at any `--jobs` value.
//!
//! Host wall-clock per cell is recorded alongside the simulated
//! results, but lives outside the deterministic
//! [`SweepResults::canonical_json`] artifact (see [`report`]).
//!
//! ```
//! use latency_core::experiment::{Experiment, NetKind};
//! use sweep::{grid::Variant, Sweep};
//!
//! let mut sw = Sweep::new("demo");
//! for &size in &[4usize, 200] {
//!     let mut e = Experiment::rpc(NetKind::Atm, size);
//!     e.iterations = 10;
//!     e.warmup = 2;
//!     sw.ensure(
//!         sweep::grid::rpc_cell_key(NetKind::Atm, size, Variant::Base, 10, 1),
//!         e,
//!         1,
//!     );
//! }
//! let seq = sw.run(1);
//! let par = sw.run(4);
//! assert_eq!(seq.canonical_json(), par.canonical_json());
//! ```

#![warn(missing_docs)]

pub mod grid;
pub mod pool;
pub mod report;

use std::collections::BTreeMap;
use std::time::Instant;

use latency_core::{Experiment, RunResult};

/// One cell of the grid: a stable key plus the experiment it runs.
pub struct Cell {
    /// The cell's identity (see [`grid`]): seed source, dedup handle,
    /// and name in `sweep.json`.
    pub key: String,
    /// The configured experiment.
    pub exp: Experiment,
    /// Repetitions pooled into this cell's result.
    pub reps: u64,
}

/// Everything one cell produced.
pub struct CellOutcome {
    /// The cell's grid key.
    pub key: String,
    /// Base seed derived from the key.
    pub seed: u64,
    /// Repetitions pooled.
    pub reps: u64,
    /// Pooled simulation results (RTT samples, breakdowns, counters).
    pub result: RunResult,
    /// Host wall-clock spent computing the cell, in nanoseconds.
    /// Excluded from the canonical report: it varies run to run.
    pub wall_ns: u64,
}

/// The merged outcome of a sweep, in grid order.
pub struct SweepResults {
    /// Sweep name (from [`Sweep::new`]).
    pub name: String,
    /// Worker count the sweep ran with.
    pub jobs: usize,
    /// Host wall-clock for the whole sweep, in nanoseconds.
    pub wall_ns: u64,
    /// Per-cell outcomes, in the order the cells were declared.
    pub outcomes: Vec<CellOutcome>,
    index: BTreeMap<String, usize>,
}

impl SweepResults {
    /// The outcome for `key`, if the grid contained it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&CellOutcome> {
        self.index.get(key).map(|&i| &self.outcomes[i])
    }

    /// The outcome for `key`.
    ///
    /// # Panics
    ///
    /// Panics (with the key) when the grid did not contain it — a
    /// declaration/rendering mismatch in the caller.
    #[must_use]
    pub fn expect(&self, key: &str) -> &CellOutcome {
        self.get(key)
            .unwrap_or_else(|| panic!("sweep has no cell '{key}'"))
    }

    /// Mean RTT of the cell `key`, in microseconds.
    #[must_use]
    pub fn mean_us(&self, key: &str) -> f64 {
        self.expect(key).result.mean_rtt_us()
    }
}

/// Derives a cell's base RNG seed from its stable grid key: FNV-1a
/// over the key bytes, folded to 32 bits.
///
/// The fold keeps every derived per-host seed (`seed * 3 + 2` is the
/// largest multiplier a world builder applies) far from `u64`
/// overflow, while leaving 4 billion distinct streams — plenty for
/// any grid.
#[must_use]
pub fn cell_seed(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h >> 32) ^ (h & 0xffff_ffff)
}

/// A declarative grid of experiment cells.
pub struct Sweep {
    /// Sweep name, carried into the report.
    pub name: String,
    cells: Vec<Cell>,
    keys: BTreeMap<String, usize>,
}

impl Sweep {
    /// An empty sweep.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Sweep {
            name: name.to_string(),
            cells: Vec::new(),
            keys: BTreeMap::new(),
        }
    }

    /// Number of cells declared.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Whether `key` is already declared.
    #[must_use]
    pub fn contains(&self, key: &str) -> bool {
        self.keys.contains_key(key)
    }

    /// Declares a cell unless its key already exists (tables share
    /// baseline cells; the first declaration wins). Returns whether
    /// the cell was inserted.
    pub fn ensure(&mut self, key: String, exp: Experiment, reps: u64) -> bool {
        assert!(reps >= 1, "a cell needs at least one repetition");
        if self.contains(&key) {
            return false;
        }
        self.keys.insert(key.clone(), self.cells.len());
        self.cells.push(Cell { key, exp, reps });
        true
    }

    /// Runs every cell on up to `jobs` workers and merges the results
    /// in grid order.
    ///
    /// The returned report is byte-identical (see
    /// [`SweepResults::canonical_json`]) for any `jobs >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `jobs == 0` or a cell's simulation panics.
    #[must_use]
    pub fn run(&self, jobs: usize) -> SweepResults {
        let t0 = Instant::now();
        let outcomes = pool::run_ordered(&self.cells, jobs, |_, cell| {
            let started = Instant::now();
            let seed = cell_seed(&cell.key);
            let result = cell
                .exp
                .plan()
                .seed(seed.wrapping_add(1))
                .reps(cell.reps)
                .execute();
            CellOutcome {
                key: cell.key.clone(),
                seed,
                reps: cell.reps,
                result,
                wall_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            }
        });
        SweepResults {
            name: self.name.clone(),
            jobs,
            wall_ns: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            outcomes,
            index: self.keys.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latency_core::experiment::NetKind;

    fn tiny(size: usize) -> Experiment {
        let mut e = Experiment::rpc(NetKind::Atm, size);
        e.iterations = 8;
        e.warmup = 2;
        e
    }

    #[test]
    fn seeds_depend_only_on_the_key() {
        let a = cell_seed("rpc/atm/4/base/i400r1");
        assert_eq!(a, cell_seed("rpc/atm/4/base/i400r1"));
        assert_ne!(a, cell_seed("rpc/atm/8/base/i400r1"));
        // Folded to 32 bits: derived per-host seeds cannot overflow.
        assert!(a <= u64::from(u32::MAX));
    }

    #[test]
    fn ensure_deduplicates_shared_cells() {
        let mut sw = Sweep::new("dedup");
        assert!(sw.ensure("k".into(), tiny(4), 1));
        assert!(!sw.ensure("k".into(), tiny(8000), 3));
        assert_eq!(sw.len(), 1);
        // The first declaration won.
        let r = sw.run(1);
        assert_eq!(r.expect("k").reps, 1);
        assert_eq!(r.expect("k").result.rtts.len(), 8);
    }

    #[test]
    fn results_merge_in_grid_order_and_index_by_key() {
        let mut sw = Sweep::new("order");
        sw.ensure("z-first".into(), tiny(4), 1);
        sw.ensure("a-second".into(), tiny(80), 1);
        let r = sw.run(2);
        // Declaration order, not key order and not completion order.
        assert_eq!(r.outcomes[0].key, "z-first");
        assert_eq!(r.outcomes[1].key, "a-second");
        assert!(r.get("a-second").is_some());
        assert!(r.get("missing").is_none());
        assert!(r.mean_us("a-second") > 0.0);
    }

    #[test]
    fn parallel_run_is_byte_identical_to_sequential() {
        let mut sw = Sweep::new("ident");
        for &size in &[4usize, 200, 1400] {
            sw.ensure(format!("cell/{size}"), tiny(size), 2);
        }
        let seq = sw.run(1).canonical_json();
        for jobs in [2, 3, 8] {
            assert_eq!(seq, sw.run(jobs).canonical_json(), "jobs = {jobs}");
        }
    }

    #[test]
    fn full_report_carries_timing_the_canonical_report_omits() {
        let mut sw = Sweep::new("t");
        sw.ensure("only".into(), tiny(4), 1);
        let r = sw.run(1);
        assert!(r.to_json().contains("\"timing\""));
        assert!(r.to_json().contains("\"jobs\": 1,"));
        let canon = r.canonical_json();
        assert!(!canon.contains("\"timing\""));
        assert!(!canon.contains("\"jobs\""));
        assert!(canon.contains("\"mean_us\""));
    }

    #[test]
    #[should_panic(expected = "no cell 'nope'")]
    fn expect_names_the_missing_key() {
        let sw = Sweep::new("e");
        let _ = sw.run(1).expect("nope");
    }
}
