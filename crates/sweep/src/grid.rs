//! Declarative grid axes and stable cell keys.
//!
//! A cell key is the *identity* of one experiment configuration:
//! network × message size × kernel variant × scale. The key does three
//! jobs at once — it deduplicates cells shared between tables (the ATM
//! baseline appears in Tables 1, 2/3, 4, 6 and 7 but runs once), it
//! derives the cell's RNG seed (see [`crate::cell_seed`]), and it
//! names the cell in `sweep.json`. Keys must therefore be functions of
//! configuration only, never of execution order.

use latency_core::experiment::{Experiment, NetKind};

/// The paper's kernel variants, as a grid axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// The baseline BSD 4.4 alpha kernel.
    Base,
    /// Header prediction disabled (§3, Table 4).
    NoPrediction,
    /// Integrated copy-and-checksum (§4.1.1, Table 6).
    IntegratedChecksum,
    /// TCP checksum eliminated (§4.2, Table 7).
    NoChecksum,
}

impl Variant {
    /// Every variant, in table order.
    pub const ALL: [Variant; 4] = [
        Variant::Base,
        Variant::NoPrediction,
        Variant::IntegratedChecksum,
        Variant::NoChecksum,
    ];

    /// The key fragment naming this variant.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Variant::Base => "base",
            Variant::NoPrediction => "nopred",
            Variant::IntegratedChecksum => "integrated",
            Variant::NoChecksum => "nocksum",
        }
    }

    /// Applies the variant to a baseline experiment.
    #[must_use]
    pub fn apply(self, e: Experiment) -> Experiment {
        match self {
            Variant::Base => e,
            Variant::NoPrediction => e.without_prediction(),
            Variant::IntegratedChecksum => e.with_integrated_checksum(),
            Variant::NoChecksum => e.without_checksum(),
        }
    }
}

/// The key fragment naming a network substrate.
#[must_use]
pub fn net_tag(net: NetKind) -> &'static str {
    match net {
        NetKind::Atm => "atm",
        NetKind::Ether => "ether",
    }
}

/// The stable key of an RPC grid cell.
///
/// Includes the scale (`iterations` × `reps`) because changing either
/// changes the measured distribution; two cells differing only in
/// scale are different cells.
#[must_use]
pub fn rpc_cell_key(
    net: NetKind,
    size: usize,
    variant: Variant,
    iterations: u64,
    reps: u64,
) -> String {
    format!(
        "rpc/{}/{size}/{}/i{iterations}r{reps}",
        net_tag(net),
        variant.tag()
    )
}

/// The stable key of a loss-recovery study cell
/// ([`latency_core::recovery`]): fault scenario × message size ×
/// scale. The scenario *name* is the configuration axis — renaming a
/// scenario or changing its schedule changes what the cell measures,
/// and the name is the stable proxy for that identity.
#[must_use]
pub fn fault_cell_key(scenario: &str, size: usize, iterations: u64, reps: u64) -> String {
    format!("faults/{scenario}/{size}/i{iterations}r{reps}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_distinct_across_the_grid() {
        let mut seen = std::collections::BTreeSet::new();
        for net in [NetKind::Atm, NetKind::Ether] {
            for size in [4usize, 1400, 8000] {
                for v in Variant::ALL {
                    assert!(seen.insert(rpc_cell_key(net, size, v, 400, 1)));
                }
            }
        }
        assert_eq!(seen.len(), 2 * 3 * 4);
        // Scale is part of the identity.
        assert_ne!(
            rpc_cell_key(NetKind::Atm, 4, Variant::Base, 400, 1),
            rpc_cell_key(NetKind::Atm, 4, Variant::Base, 400, 3),
        );
        // And the format itself is part of the sweep.json contract.
        assert_eq!(
            rpc_cell_key(NetKind::Atm, 1400, Variant::NoChecksum, 1500, 3),
            "rpc/atm/1400/nocksum/i1500r3"
        );
    }

    #[test]
    fn fault_keys_are_stable_and_scenario_scoped() {
        assert_eq!(
            fault_cell_key("light-bursts", 1400, 200, 2),
            "faults/light-bursts/1400/i200r2"
        );
        let mut seen = std::collections::BTreeSet::new();
        for sc in latency_core::recovery::scenarios() {
            assert!(seen.insert(fault_cell_key(sc.name, 1400, 200, 1)));
        }
        // A fault cell can never collide with an RPC cell.
        assert!(!fault_cell_key("clean", 1400, 200, 1).starts_with("rpc/"));
    }

    #[test]
    fn variants_apply_the_matching_kernel_config() {
        use tcpip::ChecksumMode;
        let base = Experiment::rpc(NetKind::Atm, 200);
        assert!(
            !Variant::NoPrediction
                .apply(base.clone())
                .cfg
                .header_prediction
        );
        assert_eq!(
            Variant::IntegratedChecksum.apply(base.clone()).cfg.checksum,
            ChecksumMode::Integrated
        );
        assert_eq!(
            Variant::NoChecksum.apply(base.clone()).cfg.checksum,
            ChecksumMode::None
        );
        assert_eq!(
            Variant::Base.apply(base.clone()).cfg.checksum,
            base.cfg.checksum
        );
    }
}
