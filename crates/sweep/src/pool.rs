//! A tiny dependency-free fork/join pool over `std::thread::scope`.
//!
//! The paper's tables are products of a *grid* of independent runs, so
//! the unit of parallelism is one grid cell. Workers pull cell indices
//! from a shared atomic counter (a work queue with no allocation and
//! no channel), compute locally, and hand `(index, result)` pairs back
//! through their join handles; the caller then writes every result
//! into its original slot. Scheduling therefore affects only *when* a
//! cell runs, never *what* it computes or where its result lands —
//! which is what lets [`crate::Sweep::run`] promise byte-identical
//! output at any worker count.
//!
//! No registry access is available to this build, so there is no
//! rayon; this is the whole pool, matching the `vendor/` philosophy.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f` over every item on up to `jobs` worker threads and
/// returns the results **in item order**, regardless of which worker
/// ran which item or in what interleaving.
///
/// `f` receives `(index, &item)`. With `jobs == 1` (or one item) no
/// thread is spawned at all: the items run inline on the caller's
/// thread, which doubles as the reference sequential execution that
/// parallel runs must reproduce.
///
/// # Panics
///
/// Panics if `jobs == 0`, or propagates a panic from `f` (the
/// remaining workers finish their current item first).
pub fn run_ordered<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    assert!(jobs >= 1, "a sweep needs at least one worker");
    let jobs = jobs.min(items.len().max(1));
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        out.push((i, f(i, item)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    // Merge back into item order: each index was claimed exactly once.
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for chunk in per_worker {
        for (i, r) in chunk {
            debug_assert!(slots[i].is_none(), "cell {i} computed twice");
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|r| r.expect("every cell claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order_at_any_job_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for jobs in [1, 2, 3, 8, 64, 200] {
            let got = run_ordered(&items, jobs, |_, &x| x * x + 1);
            assert_eq!(got, expect, "jobs = {jobs}");
        }
    }

    #[test]
    fn empty_and_single_item_grids() {
        let none: Vec<u32> = Vec::new();
        assert!(run_ordered(&none, 4, |_, &x| x).is_empty());
        assert_eq!(run_ordered(&[41u32], 4, |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn index_matches_item() {
        let items: Vec<usize> = (0..40).collect();
        let got = run_ordered(&items, 7, |i, &x| {
            assert_eq!(i, x);
            i
        });
        assert_eq!(got, items);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_jobs_panics() {
        let _ = run_ordered(&[1], 0, |_, &x: &i32| x);
    }
}
