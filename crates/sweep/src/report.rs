//! `sweep.json`: the machine-readable sweep report.
//!
//! Two renderings share one cell section:
//!
//! - [`SweepResults::canonical_json`] is the **deterministic
//!   artifact**: per-cell seed, sample count, mean/stddev/min/max RTT,
//!   events executed and final simulated time, in grid order. It is
//!   byte-identical across runs and across `--jobs` values, and is
//!   what the determinism property test compares.
//! - [`SweepResults::to_json`] is the canonical section plus the
//!   things that legitimately vary run to run: the worker count and
//!   per-cell host wall-clock (how long the cell took to *compute*,
//!   which is how the speedup claim in the acceptance criteria is
//!   checked). Tooling that diffs sweep reports must diff the
//!   canonical form.
//!
//! Emitted by hand, no serde: the build works with no registry access.

use std::fmt::Write as _;

use crate::SweepResults;

/// Finite-number JSON rendering; NaN/inf become null (like
/// serde_json). Public so sibling report emitters (the datacenter
/// study) stay byte-compatible with this one.
#[must_use]
pub fn json_num(x: f64) -> String {
    if x.is_finite() {
        // Shortest representation that round-trips.
        let s = format!("{x}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping, shared with sibling emitters.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The shared `"cells"` object, in grid order.
fn emit_cells(r: &SweepResults, out: &mut String) {
    out.push_str("  \"cells\": {");
    let mut first = true;
    for c in &r.outcomes {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    {}: {{ ", json_string(&c.key));
        let _ = write!(out, "\"seed\": {}, ", c.seed);
        let _ = write!(out, "\"reps\": {}, ", c.reps);
        let _ = write!(out, "\"samples\": {}, ", c.result.rtts.len());
        let _ = write!(out, "\"mean_us\": {}, ", json_num(c.result.mean_rtt_us()));
        let _ = write!(
            out,
            "\"stddev_us\": {}, ",
            json_num(c.result.stddev_rtt_us())
        );
        let _ = write!(
            out,
            "\"min_us\": {}, ",
            json_num(latency_core::stats::min_us(&c.result.rtts))
        );
        let _ = write!(
            out,
            "\"max_us\": {}, ",
            json_num(latency_core::stats::max_us(&c.result.rtts))
        );
        let _ = write!(out, "\"events\": {}, ", c.result.events);
        let _ = write!(
            out,
            "\"sim_time_us\": {}, ",
            json_num(c.result.sim_time.as_us_f64())
        );
        let _ = write!(out, "\"verify_failures\": {} }}", c.result.verify_failures);
    }
    if r.outcomes.is_empty() {
        out.push('}');
    } else {
        out.push_str("\n  }");
    }
}

impl SweepResults {
    /// The deterministic report: byte-identical for a given grid at
    /// any `--jobs` value (and across repeated runs).
    #[must_use]
    pub fn canonical_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"name\": {},", json_string(&self.name));
        emit_cells(self, &mut out);
        out.push_str("\n}\n");
        out
    }

    /// The full report: the canonical cells plus per-cell host
    /// wall-clock nanoseconds and the worker count — the fields that
    /// may differ between runs.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"name\": {},", json_string(&self.name));
        let _ = writeln!(out, "  \"jobs\": {},", self.jobs);
        emit_cells(self, &mut out);
        out.push_str(",\n  \"timing\": {");
        let mut first = true;
        let mut total = 0u64;
        for c in &self.outcomes {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    {}: {}", json_string(&c.key), c.wall_ns);
            total += c.wall_ns;
        }
        if !self.outcomes.is_empty() {
            out.push_str(",\n    ");
        }
        let _ = write!(out, "\"total_cell_wall_ns\": {total}, ");
        let _ = write!(out, "\"sweep_wall_ns\": {}", self.wall_ns);
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_num_matches_serde_conventions() {
        assert_eq!(json_num(1.5), "1.5");
        assert_eq!(json_num(3.0), "3.0");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
