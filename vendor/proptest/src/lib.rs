//! Offline stand-in for the `proptest` property-testing crate.
//!
//! Implements exactly the API subset this workspace uses (see
//! `vendor/README.md`): the `proptest!` macro, `prop_assert!` /
//! `prop_assert_eq!`, `ProptestConfig::with_cases`, `any::<T>()`,
//! integer and float range strategies, `collection::vec`,
//! `option::of`, `array::uniform32`, and tuple strategies.
//!
//! Inputs come from a deterministic splitmix64 stream seeded from the
//! test name and case index, so every run explores the same cases and
//! any failure reproduces exactly. There is no shrinking: the failing
//! case prints its inputs via the normal assertion message.

/// Test-runner plumbing: configuration and the deterministic RNG.
pub mod test_runner {
    /// Per-test configuration (subset: case count only).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Deterministic splitmix64 generator.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name and case index (FNV-1a over the name).
        #[must_use]
        pub fn deterministic(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub use test_runner::{Config as ProptestConfig, TestRng};

/// A value generator. The shim generates directly (no value trees, no
/// shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T` (`any::<u8>()`, `any::<bool>()`, ...).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    #[allow(clippy::cast_precision_loss)]
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + frac * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Collection strategies (`collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for a `Vec` with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>`.
    pub struct OptionStrategy<S>(S);

    /// `None` roughly one time in four, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Fixed-size array strategies (`array::uniform32`).
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for `[T; 32]`.
    pub struct Uniform32<S>(S);

    /// An array of 32 values drawn from `inner`.
    pub fn uniform32<S: Strategy>(inner: S) -> Uniform32<S> {
        Uniform32(inner)
    }

    impl<S: Strategy> Strategy for Uniform32<S> {
        type Value = [S::Value; 32];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }
}

/// Asserts a condition inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; mut $var:ident in $strat:expr) => {
        let mut $var = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; mut $var:ident in $strat:expr, $($rest:tt)*) => {
        let mut $var = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $var:ident in $strat:expr) => {
        let $var = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $var:ident in $strat:expr, $($rest:tt)*) => {
        let $var = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                #[allow(unused_mut)]
                let mut __rng =
                    $crate::TestRng::deterministic(stringify!($name), __case);
                $crate::__proptest_bind!(__rng; $($params)*);
                $body
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Declares property tests: each `fn name(x in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// The usual glob import: strategies, config, and the macros.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Arbitrary, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_stream() {
        let mut a = crate::TestRng::deterministic("t", 3);
        let mut b = crate::TestRng::deterministic("t", 3);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_in_bounds(x in 3u8..9, y in 10usize..2000, f in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((10..2000).contains(&y));
            prop_assert!((0.0..1.0).contains(&f), "f = {f}");
        }

        #[test]
        fn vec_len_respected(mut v in crate::collection::vec(any::<u8>(), 1..20)) {
            v.push(0);
            prop_assert!(v.len() >= 2 && v.len() <= 20);
        }

        #[test]
        fn tuples_and_options(
            pair in (0u64..1000, 1u64..200),
            opt in crate::option::of(0usize..424),
            arr in crate::array::uniform32(any::<u8>()),
            raw in any::<[u8; 4]>(),
        ) {
            prop_assert!(pair.0 < 1000 && pair.1 >= 1);
            if let Some(v) = opt {
                prop_assert!(v < 424);
            }
            prop_assert_eq!(arr.len(), 32);
            prop_assert_eq!(raw.len(), 4);
        }
    }
}
