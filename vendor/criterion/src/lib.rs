//! Offline stand-in for the `criterion` benchmark crate.
//!
//! Implements the API subset the `repro-bench` benches use (see
//! `vendor/README.md`): `criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group` / `bench_function`, `BenchmarkGroup`
//! with `sample_size` / `throughput` / `bench_with_input` /
//! `bench_function` / `finish`, `Bencher::iter`, `BenchmarkId`, and
//! `Throughput`.
//!
//! Each benchmark runs a short warmup, then a fixed number of timed
//! samples, and prints the mean wall-clock ns per iteration (plus
//! MB/s when a byte throughput was declared). There is no outlier
//! analysis, HTML report, or statistical machinery — the point is
//! that `cargo bench` compiles and produces comparable numbers with
//! no network access.

use std::fmt;
use std::time::Instant;

/// Declared throughput for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A parameterised benchmark name, printed as `function/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{function}/{parameter}"),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: u64,
    /// Mean ns/iter over the timed samples, set by [`Bencher::iter`].
    mean_ns: f64,
}

impl Bencher {
    /// Runs `routine` through warmup plus `samples` timed batches and
    /// records the mean ns per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            std::hint::black_box(routine());
        }
        // Batch until a sample takes >= ~1ms so Instant overhead is
        // amortised for nanosecond-scale routines.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed.as_micros() >= 1000 || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let mut total_ns: u128 = 0;
        let mut iters: u128 = 0;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            total_ns += t.elapsed().as_nanos();
            iters += u128::from(batch);
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.mean_ns = total_ns as f64 / iters as f64;
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = (n as u64).max(1);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            mean_ns: 0.0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.mean_ns, self.throughput);
        self
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<I: fmt::Display, D: ?Sized, F: FnMut(&mut Bencher, &D)>(
        &mut self,
        id: I,
        input: &D,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            mean_ns: 0.0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.mean_ns, self.throughput);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Benchmark runner handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 20,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: 20,
            mean_ns: 0.0,
        };
        f(&mut b);
        report(name, b.mean_ns, None);
        self
    }
}

fn report(name: &str, mean_ns: f64, throughput: Option<Throughput>) {
    match throughput {
        #[allow(clippy::cast_precision_loss)]
        Some(Throughput::Bytes(bytes)) if mean_ns > 0.0 => {
            let mb_s = bytes as f64 / mean_ns * 1000.0;
            println!("{name:<44} {mean_ns:>12.1} ns/iter  {mb_s:>9.1} MB/s");
        }
        _ => println!("{name:<44} {mean_ns:>12.1} ns/iter"),
    }
}

/// Declares a group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Opaque value barrier, re-exported for compatibility.
pub use std::hint::black_box;
